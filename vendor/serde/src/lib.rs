//! Offline stand-in for the `serde` facade.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the minimal
//! surface it actually relies on: the `Serialize`/`Deserialize` trait names (as blanket
//! marker traits) and the matching derive macros (no-ops). This keeps every
//! `#[derive(Serialize, Deserialize)]` in the workspace compiling unchanged; actual
//! serialization (e.g. the benchmark JSON reports) is done with hand-written writers.
//!
//! If the real serde is ever restored as a dependency, deleting `vendor/serde` and pointing
//! the manifests back at crates.io is the only change required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`; blanket-implemented for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
