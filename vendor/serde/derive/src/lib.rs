//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The workspace vendors a minimal serde facade (see `vendor/serde`) because the build
//! environment has no network access to crates.io. Deriving either trait expands to nothing;
//! the facade's blanket impls make every type satisfy the trait bounds.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented for all types.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented for all types.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
