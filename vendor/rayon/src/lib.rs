//! Offline stand-in for the slice of `rayon` the workspace uses.
//!
//! The build environment cannot reach crates.io, so this vendor crate implements the
//! `into_par_iter().map(..).collect()` shape the Monte-Carlo campaign runners rely on. The
//! execution is genuinely parallel: items are split into one contiguous chunk per available
//! core and mapped on scoped threads, with output order preserved. It is not work-stealing —
//! for the workspace's embarrassingly parallel, similarly-sized trials, static chunking is
//! within noise of the real thing.

use std::ops::Range;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads used by the stand-in (one per available core).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Conversion into a parallel iterator, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type produced by the iterator.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize, i32, i64);

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Creates a parallel iterator over references into `self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialised parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every element through `f` on worker threads.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element (parallel for-each).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _: Vec<()> = ParMap {
            items: self.items,
            f: &f,
        }
        .collect();
    }
}

/// A mapped parallel iterator awaiting collection.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Executes the map on scoped threads and collects results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let ParMap { mut items, f } = self;
        let threads = current_num_threads().min(items.len().max(1));
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk_size = items.len().div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        while !items.is_empty() {
            let tail = items.split_off(items.len().saturating_sub(chunk_size));
            chunks.push(tail);
        }
        chunks.reverse(); // split_off took suffixes, so restore input order
        let f = &f;
        let mut outputs: Vec<Vec<O>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
                .collect();
            for handle in handles {
                outputs.push(handle.join().expect("rayon-stub worker panicked"));
            }
        });
        outputs.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_par_iter_borrows() {
        let data = vec![1i64, 2, 3, 4];
        let out: Vec<i64> = data.par_iter().map(|&v| v + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn work_actually_runs_on_all_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_input_collects_empty() {
        let out: Vec<u32> = (0..0u32).into_par_iter().map(|v| v).collect();
        assert!(out.is_empty());
    }
}
