//! Offline stand-in for the parts of `rand` the workspace uses.
//!
//! The build environment cannot reach crates.io, so this vendor crate reimplements the
//! small API surface the ReaLM workspace depends on: [`RngCore`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with `seed_from_u64`, and the
//! [`distributions`] module with [`distributions::Distribution`] and
//! [`distributions::Standard`].
//!
//! The generated streams are **not** bit-compatible with the real `rand` crate — they only
//! promise determinism (same seed, same stream) and reasonable uniformity, which is all the
//! workspace's reproducibility story requires.

/// A low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with a SplitMix64 stream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut sm).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&value[..len]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience extension trait over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! The distribution traits and implementations the workspace samples from.

    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution for primitive types (all bit patterns for
    /// integers, `[0, 1)` for floats, fair coin for `bool`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub mod uniform {
        //! Uniform range sampling (`Rng::gen_range` support).

        use super::super::Rng;
        use std::ops::{Range, RangeInclusive};

        /// A range from which a single value can be drawn uniformly.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Types that can be sampled uniformly from a half-open or inclusive range.
        pub trait SampleUniform: Sized {
            /// Uniform draw from `[low, high)`.
            fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

            /// Uniform draw from `[low, high]`.
            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty => $wide:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                        assert!(low < high, "gen_range called with an empty range");
                        let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                        let offset = uniform_u128(span, rng);
                        ((low as $wide).wrapping_add(offset as $wide)) as $t
                    }

                    fn sample_inclusive<R: Rng + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                        assert!(low <= high, "gen_range called with an empty range");
                        let span = ((high as $wide).wrapping_sub(low as $wide) as u128) + 1;
                        let offset = uniform_u128(span, rng);
                        ((low as $wide).wrapping_add(offset as $wide)) as $t
                    }
                }
            )*};
        }

        impl_sample_uniform_int!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
        );

        /// Uniform draw from `[0, span)`; `span == 0` means the full 128-bit span is never
        /// needed here (integer ranges above are at most 64 bits wide).
        fn uniform_u128<R: Rng + ?Sized>(span: u128, rng: &mut R) -> u128 {
            debug_assert!(span > 0);
            // Multiply-shift (Lemire) reduction over a 64-bit draw: unbiased enough for the
            // small spans the workspace uses, deterministic, and branch-free.
            let x = rng.next_u64() as u128;
            (x * span) >> 64
        }

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                        assert!(low < high, "gen_range called with an empty range");
                        let unit = ((rng.next_u64() >> 11) as f64
                            * (1.0 / (1u64 << 53) as f64)) as $t;
                        low + (high - low) * unit
                    }

                    fn sample_inclusive<R: Rng + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                        Self::sample_half_open(low, high, rng)
                    }
                }
            )*};
        }

        impl_sample_uniform_float!(f32, f64);

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                T::sample_inclusive(*self.start(), *self.end(), rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: i8 = rng.gen_range(-40..=40);
            assert!((-40..=40).contains(&v));
            let u: usize = rng.gen_range(0..24);
            assert!(u < 24);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn standard_floats_stay_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Counter(11);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "got {hits}");
    }

    #[test]
    fn standard_distribution_samples_all_requested_types() {
        let mut rng = Counter(1);
        let _: u32 = distributions::Standard.sample(&mut rng);
        let _: i8 = rng.gen();
        let _: bool = rng.gen();
        let _: u64 = rng.gen();
    }
}
