//! Offline stand-in for the slice of `criterion` the workspace's benches use.
//!
//! Implements `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!`/`criterion_main!` macros on top of
//! plain wall-clock timing: each benchmark is warmed up, then measured in batches until a
//! time budget is spent, reporting the fastest and median per-iteration times. Results are
//! printed as a table and appended to a JSON report (`REALM_BENCH_JSON` env var, defaulting
//! to `target/criterion-summary.json`) so baselines can be committed and compared across PRs.
//!
//! The statistical machinery of real criterion (bootstrapping, outlier classification,
//! regression detection) is intentionally absent — the workspace only needs stable relative
//! comparisons between GEMM backends and protection schemes.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/id` label.
    pub name: String,
    /// Fastest observed per-iteration time, nanoseconds.
    pub best_ns: f64,
    /// Median per-batch mean iteration time, nanoseconds.
    pub median_ns: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Entry point object handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches (clamped to at least 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; measurement is eager).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, mirroring criterion's type.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    batch_iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch_iters` calls of `f` and records the elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch_iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up and calibration: find an iteration count whose batch takes ~10 ms.
    let mut bencher = Bencher {
        batch_iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mut per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target_batch = Duration::from_millis(10);
    let batch_iters =
        (target_batch.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut batch_means = Vec::with_capacity(samples);
    let mut total_iters = 0u64;
    let budget = Instant::now();
    for _ in 0..samples {
        let mut bencher = Bencher {
            batch_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter = bencher.elapsed / batch_iters.max(1) as u32;
        batch_means.push(per_iter.as_nanos() as f64);
        total_iters += batch_iters;
        // Hard cap so pathological benches cannot stall the suite.
        if budget.elapsed() > Duration::from_secs(5) {
            break;
        }
    }
    batch_means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let best_ns = batch_means[0];
    let median_ns = batch_means[batch_means.len() / 2];
    println!(
        "bench {label:<48} best {:>12}  median {:>12}  ({total_iters} iters)",
        format_ns(best_ns),
        format_ns(median_ns)
    );
    RESULTS.lock().expect("results lock").push(BenchResult {
        name: label.to_string(),
        best_ns,
        median_ns,
        iterations: total_iters,
    });
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Writes the JSON report of all benchmarks run by this process and clears the registry.
///
/// Called automatically by `criterion_main!`; the output path is `$REALM_BENCH_JSON` or
/// `target/criterion-summary.json`.
pub fn finalize() {
    let results = std::mem::take(&mut *RESULTS.lock().expect("results lock"));
    if results.is_empty() {
        return;
    }
    let path = std::env::var("REALM_BENCH_JSON")
        .unwrap_or_else(|_| "target/criterion-summary.json".to_string());
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"best_ns\": {:.1}, \"median_ns\": {:.1}, \"iterations\": {}}}{}\n",
            r.name.replace('"', "'"),
            r.best_ns,
            r.median_ns,
            r.iterations,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote benchmark report to {path}"),
        Err(e) => eprintln!("\ncould not write benchmark report to {path}: {e}"),
    }
}

/// Declares a group function running each listed benchmark, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares a `main` running the listed groups and writing the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        let results = RESULTS.lock().unwrap();
        let r = results
            .iter()
            .find(|r| r.name == "t/noop")
            .expect("recorded");
        assert!(r.best_ns >= 0.0);
        assert!(r.iterations > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
