//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! Unlike the other vendored stubs this one implements the real ChaCha8 stream cipher core
//! (IETF variant, 8 double-rounds), because the workspace leans on its statistical quality
//! for Monte-Carlo fault-injection campaigns. Stream positions are **not** bit-compatible
//! with the real `rand_chacha` crate (`seed_from_u64` expansion differs); the workspace only
//! relies on determinism per seed.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A deterministic ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..256).map(|_| rng.next_u64().count_ones()).sum();
        let total = 256 * 64;
        // Within 3% of half the bits set.
        assert!((ones as f64 - total as f64 / 2.0).abs() < total as f64 * 0.03);
    }
}
