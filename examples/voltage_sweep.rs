//! Voltage sweep and sweet-spot search: a miniature version of Fig. 9 / Table II.
//!
//! Sweeps the operating voltage for several protection schemes, prints task quality,
//! recovery rate and total energy at each point, and reports the minimum-energy voltage that
//! still satisfies the acceptable-degradation budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example voltage_sweep
//! ```

use realm::core::pipeline::{PipelineConfig, ProtectedPipeline};
use realm::core::report::render_voltage_sweep;
use realm::core::sweep::{scheme_comparison, voltage_sweep};
use realm::eval::wikitext::WikitextTask;
use realm::llm::{config::ModelConfig, model::Model, Component};
use realm::systolic::ProtectionScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = Model::new(&ModelConfig::opt_1_3b_proxy(), 11)?;
    let task = WikitextTask::quick(model.language(), 11);

    // Protect (and attack) the K projection, as in the paper's OPT-1.3B evaluation.
    let pipeline = ProtectedPipeline::new(&model, PipelineConfig::for_component(Component::K));
    let clean = pipeline.clean_value(&task)?;
    println!("clean perplexity: {clean:.2}\n");

    let voltages: Vec<f64> = (0..8).map(|i| 0.60 + 0.04 * i as f64).collect();
    let schemes = [
        ProtectionScheme::None,
        ProtectionScheme::ClassicalAbft,
        ProtectionScheme::ApproxAbft,
        ProtectionScheme::StatisticalAbft,
    ];
    let sweeps = scheme_comparison(&pipeline, &task, &schemes, &voltages, 3)?;
    for sweep in &sweeps {
        println!("{}", render_voltage_sweep(sweep));
    }

    // Sweet spot: lowest-energy voltage whose perplexity stays within +0.3 of clean.
    let budget = 0.3;
    println!("sweet spots under a +{budget} perplexity budget:");
    for scheme in schemes {
        let sweep = voltage_sweep(&pipeline, &task, scheme, &voltages, 3)?;
        match sweep.sweet_spot(clean, false, budget) {
            Some(spot) => println!(
                "  {:<28} {:.2} V   {:.4e} J",
                scheme.to_string(),
                spot.voltage,
                spot.energy.total_j()
            ),
            None => println!(
                "  {:<28} no within-budget operating point",
                scheme.to_string()
            ),
        }
    }
    Ok(())
}
