//! Resilience characterization walkthrough: a miniature version of the paper's Sec. IV study.
//!
//! Answers three of the paper's research questions on a small synthetic model:
//!
//! * Q1.3 — which network components are sensitive? (errors in post-normalization components
//!   such as `O` and `FC2` hurt far more than softmax-bounded ones such as `QKᵀ`)
//! * Q1.4 — how do error magnitude and frequency trade off at a fixed MSD?
//! * Fig. 5 — why normalization is the culprit: one injected error skews µ/σ for the whole
//!   token.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example resilience_characterization
//! ```

use realm::core::characterize::{componentwise_study, magfreq_study, norm_skew_study, StudyConfig};
use realm::core::report::render_series_table;
use realm::eval::wikitext::WikitextTask;
use realm::llm::{config::ModelConfig, model::Model, Component, Stage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = Model::new(&ModelConfig::opt_1_3b_proxy(), 7)?;
    // Injection trials re-run GEMMs constantly; name the backend the default dispatch
    // picked so the campaign wall-clock is interpretable.
    println!(
        "gemm backend: {} (simd dispatch: {})\n",
        model.engine().name(),
        realm::tensor::simd::simd_dispatch_label()
    );
    let task = WikitextTask::quick(model.language(), 7);
    let config = StudyConfig {
        trials: 6,
        seed: 7,
        bit: 30,
    };

    // Q1.3: component-wise sensitivity during prefill.
    println!("== Q1.3: component-wise resilience (perplexity vs BER, bit-30 flips) ==\n");
    let components = [
        Component::Q,
        Component::K,
        Component::QkT,
        Component::Sv,
        Component::O,
        Component::Fc1,
        Component::Fc2,
    ];
    let bers = [1e-4, 1e-3, 1e-2];
    let series = componentwise_study(
        &model,
        &task,
        &components,
        &bers,
        Some(Stage::Prefill),
        &config,
    )?;
    println!("{}", render_series_table("BER", &series));
    let worst = series
        .iter()
        .max_by(|a, b| {
            a.points
                .last()
                .unwrap()
                .value
                .partial_cmp(&b.points.last().unwrap().value)
                .unwrap()
        })
        .unwrap();
    println!("most sensitive component at BER 1e-2: {}\n", worst.label);

    // Q1.4: magnitude/frequency trade-off on a resilient component.
    println!("== Q1.4: magnitude vs frequency at fixed MSD (component K) ==\n");
    let grid = magfreq_study(
        &model,
        &task,
        Component::K,
        &[22, 26, 30],
        &[0, 2, 4, 6, 8],
        &config,
    )?;
    println!("log2(MSD)  log2(freq)  log2(mag)  perplexity");
    for p in &grid {
        println!(
            "{:>9}  {:>10}  {:>9}  {:>10.2}",
            p.log2_msd, p.log2_freq, p.log2_mag, p.value
        );
    }

    // Fig. 5: normalization statistics under a single injected error.
    println!("\n== Fig. 5: one error before LayerNorm skews the whole token ==\n");
    let report = norm_skew_study(&model, 500.0, 3);
    println!(
        "clean   pre-norm stats: mu = {:>7.2}, sigma = {:>7.2}",
        report.clean_mean, report.clean_std
    );
    println!(
        "skewed  pre-norm stats: mu = {:>7.2}, sigma = {:>7.2}",
        report.skewed_mean, report.skewed_std
    );
    println!(
        "fraction of post-norm elements disturbed: {:.1}%",
        100.0 * report.post_norm_disturbed_fraction
    );
    Ok(())
}
