//! Fitting and deploying a custom statistical-ABFT detector.
//!
//! This example walks through the full ReaLM co-design loop on a single network component:
//!
//! 1. characterize the component with controlled magnitude/frequency injections (Q1.4),
//! 2. fit a critical region (`a`, `b`, `θ_freq`) under an acceptable-degradation budget,
//! 3. deploy the fitted region in a [`SchemeProtector`] and compare its recovery behaviour
//!    against classical ABFT on the same fault stream.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_detector
//! ```

use rand::Rng;
use realm::abft::detector::AbftDetector;
use realm::abft::{ClassicalAbft, StatisticalAbft};
use realm::core::characterize::StudyConfig;
use realm::core::fit::{fit_component_region, DegradationBudget};
use realm::eval::wikitext::WikitextTask;
use realm::llm::{config::ModelConfig, model::Model, Component};
use realm::tensor::{gemm, MatI8};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = Model::new(&ModelConfig::tiny_opt(), 5)?;
    let task = WikitextTask::quick(model.language(), 5);

    // Step 1 + 2: characterize the K projection and fit its critical region.
    let fit = fit_component_region(
        &model,
        &task,
        Component::K,
        &[18, 22, 26, 30],
        &[0, 2, 4, 6, 8],
        &DegradationBudget::paper_default(),
        &StudyConfig {
            trials: 4,
            seed: 5,
            bit: 30,
        },
    )?;
    println!(
        "fitted critical region for K: a = {:.2}, b = {:.2}, theta_freq = 2^{:.1}  (fitted: {})",
        fit.region.a, fit.region.b, fit.region.theta_freq_log2, fit.fitted
    );

    // Step 3: compare detectors on a synthetic fault stream.
    let statistical = StatisticalAbft::new(fit.region);
    let classical = ClassicalAbft::new();
    let mut rng = realm::tensor::rng::seeded(99);
    let mut classical_recoveries = 0usize;
    let mut statistical_recoveries = 0usize;
    let trials = 200;
    for _ in 0..trials {
        let w = MatI8::from_fn(16, 16, |_, _| rng.gen_range(-30..=30));
        let x = MatI8::from_fn(16, 16, |_, _| rng.gen_range(-30..=30));
        let mut acc = gemm::gemm_i8(&w, &x)?;
        // One or two random high-bit flips per GEMM: the typical low-voltage fault pattern.
        for _ in 0..rng.gen_range(1..=2) {
            let r = rng.gen_range(0..16);
            let c = rng.gen_range(0..16);
            let bit = rng.gen_range(20..31);
            acc[(r, c)] ^= 1 << bit;
        }
        if classical.inspect(&w, &x, &acc).trigger_recovery {
            classical_recoveries += 1;
        }
        if statistical.inspect(&w, &x, &acc).trigger_recovery {
            statistical_recoveries += 1;
        }
    }
    println!("\nrecoveries triggered over {trials} corrupted GEMMs:");
    println!("  classical ABFT:   {classical_recoveries}");
    println!("  statistical ABFT: {statistical_recoveries}");
    println!(
        "\nrecovery cost saved: {:.1}%",
        100.0 * (classical_recoveries - statistical_recoveries) as f64
            / classical_recoveries as f64
    );
    Ok(())
}
