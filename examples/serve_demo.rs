//! Serving demo: continuous batching under staggered arrivals with per-request
//! reliability telemetry.
//!
//! A 4-slot [`ServeEngine`] serves a burst of requests that arrive over time (not all at
//! once), mixing priorities, generation budgets and protection policies, while a bit-flip
//! injector emulates a low-voltage datapath. The demo prints the engine's operator
//! snapshot ([`EngineStats`]) as the queue drains, then a per-request table: wait time,
//! service time, and the ABFT detections/recoveries attributed to each request.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! Tensor parallelism is env-driven so CI can exercise the sharded datapath without a
//! separate binary: `REALM_TP_DEGREE=4` shards every weight matrix column-wise across 4
//! persistent ranks, and `REALM_SHARD_KILL=<shard>[:<steps>]` arms a whole-shard kill
//! (default 16 dispatches) that the engine must survive bit-exactly mid-service:
//!
//! ```text
//! REALM_TP_DEGREE=4 REALM_SHARD_KILL=2:24 cargo run --release --example serve_demo
//! ```
//!
//! With `REALM_LISTEN=<addr>` the demo becomes a network server instead: the same
//! engine (same injector) serves `POST /generate` over HTTP/1.1 with chunked token
//! streaming until `POST /admin/drain` gracefully drains it:
//!
//! ```text
//! REALM_LISTEN=127.0.0.1:8080 cargo run --release --example serve_demo
//! curl -N -d 'prompt=1,5,9&max_new_tokens=8&policy=classical' http://127.0.0.1:8080/generate
//! curl http://127.0.0.1:8080/stats
//! curl -X POST http://127.0.0.1:8080/admin/drain
//! ```

use realm::core::ProtectionPolicy;
use realm::inject::{error_model::FixedBitModel, injector::ErrorInjector, targeting::Target};
use realm::llm::{config::ModelConfig, model::Model};
use realm::net::{NetConfig, NetServer};
use realm::serve::{AdaptiveConfig, ServeConfig, ServeEngine, ServeRequest, TokenEvent};
use realm::systolic::ProtectionScheme;
use realm::tensor::ShardFault;

/// Parses `REALM_SHARD_KILL=<shard>[:<steps>]` (steps defaults to 16 GEMM dispatches).
fn shard_kill_from_env() -> Option<(usize, usize)> {
    let spec = std::env::var("REALM_SHARD_KILL").ok()?;
    let (shard, steps) = match spec.split_once(':') {
        Some((shard, steps)) => (
            shard.parse().expect("REALM_SHARD_KILL shard index"),
            steps.parse().expect("REALM_SHARD_KILL step count"),
        ),
        None => (spec.parse().expect("REALM_SHARD_KILL shard index"), 16),
    };
    Some((shard, steps))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tp_degree: usize = std::env::var("REALM_TP_DEGREE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&d| d > 0)
        .unwrap_or(1);
    let mut model = Model::new(&ModelConfig::tiny_opt(), 2025)?;
    model.set_tensor_parallel(tp_degree);
    let model = model;
    let config = ServeConfig {
        slots: 4,
        aging_steps: 8,
        step_token_budget: 8,
        // Runtime policy selection: detection bursts escalate protection per slot,
        // clean windows step it back down (see `realm_serve::adaptive`).
        adaptive: AdaptiveConfig::enabled(),
        ..ServeConfig::default()
    };
    println!(
        "serving {} on {} slots (queue aging: 1 priority level per {} steps, \
         {}-token step budget, adaptive protection on)",
        model.config().name,
        config.slots,
        config.aging_steps,
        config.step_token_budget
    );
    // Name the GEMM backend the default dispatch picked: throughput numbers from this
    // demo are uninterpretable without knowing which kernel actually ran.
    println!(
        "gemm backend: {} (simd dispatch: {})",
        model.engine().name(),
        realm::tensor::simd::simd_dispatch_label()
    );
    match model.tp_group() {
        Some(group) => println!("tensor parallel: degree {}\n", group.degree()),
        None => println!("tensor parallel: off\n"),
    }

    // A faulty datapath: transient bit-30 flips on ~0.5% of GEMMs. Protected requests
    // detect and repair these; the unprotected request takes its chances.
    let shard_kill = shard_kill_from_env();
    let target = match shard_kill {
        Some((shard, _)) => Target::new().shard(shard),
        None => Target::everything(),
    };
    let mut injector = ErrorInjector::new(FixedBitModel::bit30(0.005), target, 7);
    // Optionally kill a whole rank mid-service: its next `steps` sharded GEMM dispatches
    // go unanswered and the engine must recompute the dead shard's column stripes inline.
    if let Some((shard, steps)) = shard_kill {
        let group = model
            .tp_group()
            .expect("REALM_SHARD_KILL requires REALM_TP_DEGREE > 1");
        assert!(
            shard < group.degree(),
            "REALM_SHARD_KILL shard out of range"
        );
        let armed = injector.arm_shard_faults(group, ShardFault::Kill, steps);
        println!(
            "armed shard-kill: shard {shard} for {steps} dispatches ({armed} shard(s) armed)\n"
        );
    }
    // Network mode: hand the same engine configuration to the HTTP front end and serve
    // until an operator drains it (`POST /admin/drain`).
    if let Ok(listen) = std::env::var("REALM_LISTEN") {
        let server = NetServer::bind(NetConfig {
            addr: listen,
            serve: config,
            ..NetConfig::default()
        })?;
        let addr = server.local_addr();
        println!("listening on http://{addr}  (faulty datapath armed: bit-30 flips)");
        println!(
            "  curl -N -d 'prompt=1,5,9&max_new_tokens=8&policy=classical' http://{addr}/generate"
        );
        println!("  curl http://{addr}/stats");
        println!("  curl -X POST http://{addr}/admin/drain   # graceful shutdown\n");
        let report = server.serve_with_hook(&model, Some(Box::new(injector)))?;
        let e = report.engine;
        println!(
            "drained: {} connections, {} requests completed, {} cancelled, {} shed, \
             {} detections, {} recoveries",
            report.connections,
            e.requests_completed,
            e.requests_cancelled,
            e.requests_shed,
            e.detections,
            e.recoveries
        );
        return Ok(());
    }

    let mut engine = ServeEngine::new(&model, config).with_fault_hook(Box::new(injector));

    // The arrival schedule: (arrival step, priority, budget, policy). More requests than
    // slots, arriving in waves, so admissions happen mid-flight into recycled slots.
    let policies: [(&str, ProtectionPolicy); 3] = [
        ("statistical", ProtectionPolicy::statistical()),
        ("classical", ProtectionPolicy::classical()),
        ("unprotected", ProtectionPolicy::unprotected()),
    ];
    let schedule: Vec<(u64, u8, usize, usize)> = vec![
        // step, priority, budget, policy index
        (0, 0, 8, 0),
        (0, 0, 3, 1),
        (0, 0, 12, 0),
        (1, 2, 5, 1),
        (2, 0, 2, 2),
        (3, 5, 6, 0),
        (4, 0, 9, 1),
        (5, 1, 4, 0),
        (6, 0, 7, 2),
        (7, 3, 5, 0),
    ];

    let mut pending = schedule.into_iter().enumerate().collect::<Vec<_>>();
    let mut receivers = Vec::new();
    let mut step = 0u64;
    while engine.has_work() || !pending.is_empty() {
        // Submit everything scheduled to arrive at or before this step.
        pending.retain(|(i, (arrival, priority, budget, policy))| {
            if *arrival > step {
                return true;
            }
            let prompt: Vec<u32> = (0..3 + (*i as u32 % 4))
                .map(|t| (t * 5 + *i as u32) % 60)
                .collect();
            let request = ServeRequest::new(prompt, *budget)
                .with_priority(*priority)
                .with_policy(policies[*policy].1);
            let (id, rx) = engine.submit(request).expect("schedule is valid");
            receivers.push((id, *budget, policies[*policy].0, rx));
            false
        });
        engine.step()?;
        step += 1;
        if step.is_multiple_of(5) || !engine.has_work() {
            let s = engine.stats();
            println!(
                "step {:>3}: queue {:>2}  slots {}/{}  tokens {:>3}  completed {:>2}/{:<2}  \
                 detections {:>2}",
                s.steps,
                s.queue_depth,
                s.active_slots,
                s.total_slots,
                s.tokens_generated,
                s.requests_completed,
                s.requests_submitted,
                s.detections
            );
        }
    }

    let stats = engine.stats();
    println!(
        "\nfinal: {} tokens over {} lockstep steps ({:.0} tokens/s wall-clock), \
         {} admissions into {} slots",
        stats.tokens_generated,
        stats.steps,
        stats.tokens_per_second,
        stats.requests_admitted,
        stats.total_slots
    );
    println!(
        "reliability: {} detections, {} recoveries ({:.2} detections/request)",
        stats.detections,
        stats.recoveries,
        stats.detections_per_request()
    );
    let scheme_mix: Vec<String> = ProtectionScheme::ALL
        .iter()
        .map(|s| (s, stats.steps_at_scheme[s.strictness() as usize]))
        .filter(|&(_, steps)| steps > 0)
        .map(|(s, steps)| format!("{} x{steps}", s.label()))
        .collect();
    println!(
        "adaptive protection: {} escalations, {} de-escalations, {} protection-shed steps; \
         steps per batch scheme: {}",
        stats.policy_escalations,
        stats.policy_deescalations,
        stats.protection_shed_steps,
        scheme_mix.join(", ")
    );
    println!(
        "latency: decode p50 {:.0} us / p99 {:.0} us per lockstep step; \
         scratch workspace high-water {:.1} KiB (steady-state, allocation-free)",
        stats.decode_p50_us,
        stats.decode_p99_us,
        stats.workspace_high_water_bytes as f64 / 1024.0
    );
    println!(
        "chunked prefill: {} chunks under the {}-token step budget \
         (budget utilization {:.2}, decode stall p99 {:.0} us)",
        stats.prefill_chunks,
        config.step_token_budget,
        stats.step_budget_utilization,
        stats.decode_stall_p99_us
    );
    if stats.is_sharded() {
        println!(
            "tensor parallel: {} shard kills survived, {} shard checksum detections, \
             {} stripe failovers",
            stats.shard_kills, stats.shard_detections, stats.shard_failovers
        );
        for (shard, s) in engine.shard_stats().iter().enumerate() {
            println!(
                "  shard {shard}: jobs {:>6}  kills {:>3}  detections {:>3}  failovers {:>3}",
                s.jobs, s.kills, s.detections, s.failovers
            );
        }
        if shard_kill.is_some() {
            assert!(stats.shard_kills > 0, "the armed shard kill fired");
            assert_eq!(
                stats.shard_failovers, stats.shard_kills,
                "every kill was survived by an inline stripe recompute"
            );
        }
    }
    println!();

    println!(
        "{:<4} {:<13} {:>6} {:>8} {:>8} {:>11} {:>11} {:>11}",
        "id", "policy", "tokens", "queued", "service", "detections", "recoveries", "escalations"
    );
    for (id, budget, policy_name, rx) in &receivers {
        let events: Vec<TokenEvent> = rx.try_iter().collect();
        let Some(TokenEvent::Done(summary)) = events.last() else {
            panic!("request {id} did not complete");
        };
        assert_eq!(summary.tokens.len(), *budget, "budget honoured");
        println!(
            "{:<4} {:<13} {:>6} {:>8} {:>8} {:>11} {:>11} {:>11}",
            id,
            policy_name,
            summary.tokens.len(),
            summary.queued_steps,
            summary.service_steps,
            summary.attribution.detections,
            summary.attribution.recoveries,
            summary.escalations
        );
    }
    println!("\nall requests served; every budget met.");
    Ok(())
}
