//! Quickstart: build a synthetic quantized LLM, break it with low-voltage bit flips, and fix
//! it with statistical ABFT.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use realm::core::pipeline::{PipelineConfig, ProtectedPipeline};
use realm::eval::task::Task;
use realm::eval::wikitext::WikitextTask;
use realm::inject::VoltageBerCurve;
use realm::llm::{config::ModelConfig, model::Model};
use realm::systolic::ProtectionScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down OPT-1.3B-style model with synthetic weights. The seed makes every run of
    // this example print the same numbers.
    let config = ModelConfig::opt_1_3b_proxy();
    let model = Model::new(&config, 2025)?;
    println!(
        "model: {} ({} layers, hidden {}, vocab {})",
        config.name, config.num_layers, config.hidden_size, config.vocab_size
    );

    // A synthetic WikiText-style perplexity task over the model's own language.
    let task = WikitextTask::standard(model.language(), 2025);
    let clean = task.evaluate(&model, &mut realm::llm::NoopHook)?;
    println!("clean perplexity at nominal voltage: {clean:.2}");

    // How bad do things get when the supply voltage is scaled down without protection, and
    // how well do the ABFT schemes hold up?
    let voltage = 0.70;
    let curve = VoltageBerCurve::default_14nm();
    println!(
        "\noperating point: {voltage:.2} V  (BER {:.2e})",
        curve.ber_at(voltage)
    );

    let pipeline = ProtectedPipeline::new(&model, PipelineConfig::default());
    println!(
        "{:<28} {:>12} {:>16} {:>14}",
        "scheme", "perplexity", "recovery rate", "energy [J]"
    );
    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::ClassicalAbft,
        ProtectionScheme::ApproxAbft,
        ProtectionScheme::StatisticalAbft,
    ] {
        let outcome = pipeline.run(&task, scheme, voltage, 7)?;
        println!(
            "{:<28} {:>12.2} {:>16.3} {:>14.4e}",
            scheme.to_string(),
            outcome.task_value,
            outcome.recovery_rate(),
            outcome.energy.total_j()
        );
    }

    println!(
        "\nStatistical ABFT keeps perplexity near the clean {clean:.2} while triggering far \
         fewer recoveries than classical ABFT — the paper's headline effect."
    );
    Ok(())
}
