//! Quickstart: build a synthetic quantized LLM, break it with low-voltage bit flips, and fix
//! it with statistical ABFT.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! # optionally pin the GEMM backend (reference | blocked | parallel | simd | simd_parallel):
//! cargo run --release --example quickstart -- blocked
//! ```

use realm::core::pipeline::{PipelineConfig, ProtectedPipeline};
use realm::eval::task::Task;
use realm::eval::wikitext::WikitextTask;
use realm::inject::VoltageBerCurve;
use realm::llm::{config::ModelConfig, model::Model};
use realm::systolic::ProtectionScheme;
use realm::tensor::EngineKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The GEMM execution backend is selectable from the command line; every backend is
    // bit-exact, so this changes the run's speed and nothing else.
    let engine: EngineKind = match std::env::args().nth(1) {
        Some(arg) => arg.parse()?,
        None => EngineKind::default(),
    };

    // A scaled-down OPT-1.3B-style model with synthetic weights. The seed makes every run of
    // this example print the same numbers.
    let mut config = ModelConfig::opt_1_3b_proxy();
    config.engine = engine;
    let model = Model::new(&config, 2025)?;
    println!(
        "model: {} ({} layers, hidden {}, vocab {})  gemm backend: {engine}",
        config.name, config.num_layers, config.hidden_size, config.vocab_size
    );

    // A synthetic WikiText-style perplexity task over the model's own language.
    let task = WikitextTask::standard(model.language(), 2025);
    let clean = task.evaluate(&model, &mut realm::llm::NoopHook)?;
    println!("clean perplexity at nominal voltage: {clean:.2}");

    // How bad do things get when the supply voltage is scaled down without protection, and
    // how well do the ABFT schemes hold up?
    let voltage = 0.70;
    let curve = VoltageBerCurve::default_14nm();
    println!(
        "\noperating point: {voltage:.2} V  (BER {:.2e})",
        curve.ber_at(voltage)
    );

    let pipeline_config = PipelineConfig {
        engine,
        ..PipelineConfig::default()
    };
    let pipeline = ProtectedPipeline::new(&model, pipeline_config);
    println!(
        "{:<28} {:>12} {:>16} {:>14}",
        "scheme", "perplexity", "recovery rate", "energy [J]"
    );
    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::ClassicalAbft,
        ProtectionScheme::ApproxAbft,
        ProtectionScheme::StatisticalAbft,
    ] {
        let outcome = pipeline.run(&task, scheme, voltage, 7)?;
        println!(
            "{:<28} {:>12.2} {:>16.3} {:>14.4e}",
            scheme.to_string(),
            outcome.task_value,
            outcome.recovery_rate(),
            outcome.energy.total_j()
        );
    }

    println!(
        "\nStatistical ABFT recovers most of the quality lost at this operating point while \
         triggering a fraction of classical ABFT's recoveries (and energy) — the paper's \
         headline trade-off. Re-run with a backend argument (reference|blocked|parallel|simd|simd_parallel) to \
         see that the numbers are bit-identical on every GEMM engine."
    );
    Ok(())
}
