//! Differential tests for the workspace-planned (`_into` / `_ws`) execution paths.
//!
//! The allocation-free decode loop is only admissible if it is *bit-identical* to the
//! allocating paths it replaces — on every backend, on ragged batches, on batch-of-1, and
//! critically when the same destination buffers are **reused** across calls of different
//! shapes (a stale-scratch bug shows up exactly there, and the workspace's debug poisoning
//! turns it into loud garbage instead of a silent parity pass).

use rand::Rng;
use realm::llm::batch::{BatchRequest, BatchScheduler};
use realm::llm::{config::ModelConfig, model::Model, NoopHook};
use realm::tensor::engine::{ChecksummedGemm, EngineKind};
use realm::tensor::{rng, MatI8, Workspace};

fn random_operands(seed: u64, m: usize, k: usize, n: usize) -> (MatI8, MatI8) {
    let mut r = rng::seeded(seed);
    let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
    let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
    (a, b)
}

/// `gemm_i8_into` and `gemm_i8_checksummed_into` reproduce the allocating paths bit for
/// bit on every selectable backend, with ONE destination reused across shrinking and
/// growing shapes — exactly the reuse pattern the workspace pools create.
#[test]
fn into_paths_match_allocating_paths_across_reused_destinations() {
    let shapes = [
        (7, 9, 11),
        (1, 300, 5), // decode-like GEMV row
        (33, 17, 3), // shrinks the reused buffers
        (16, 64, 32),
        (1, 1, 1),
        (70, 65, 130),
    ];
    for kind in EngineKind::ALL {
        let engine = kind.build();
        let mut out = realm::tensor::MatI32::zeros(0, 0);
        let mut dest = ChecksummedGemm::empty();
        let mut etw = Vec::new();
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            let (a, b) = random_operands(1000 + i as u64, m, k, n);
            let oracle = engine.gemm_i8(&a, &b).unwrap();
            engine.gemm_i8_into(&a, &b, &mut out).unwrap();
            assert_eq!(out, oracle, "{kind} gemm_i8_into diverged on {m}x{k}x{n}");

            let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
            engine
                .gemm_i8_checksummed_into(&a, &b, &mut dest, &mut etw)
                .unwrap();
            assert_eq!(dest.acc(), fused.acc(), "{kind} acc {m}x{k}x{n}");
            assert_eq!(
                dest.expected(),
                fused.expected(),
                "{kind} expected {m}x{k}x{n}"
            );
            assert_eq!(
                dest.observed(),
                fused.observed(),
                "{kind} observed {m}x{k}x{n}"
            );
            assert!(dest.column_deviations().iter().all(|&d| d == 0));
        }
    }
}

/// Shape errors leave the `_into` destinations usable (next valid call still matches).
#[test]
fn into_paths_reject_shape_mismatch_and_recover() {
    let engine = EngineKind::Reference.build();
    let mut out = realm::tensor::MatI32::zeros(0, 0);
    let mut dest = ChecksummedGemm::empty();
    let mut etw = Vec::new();
    let bad_a = MatI8::zeros(2, 3);
    let bad_b = MatI8::zeros(4, 2);
    assert!(engine.gemm_i8_into(&bad_a, &bad_b, &mut out).is_err());
    assert!(engine
        .gemm_i8_checksummed_into(&bad_a, &bad_b, &mut dest, &mut etw)
        .is_err());
    let (a, b) = random_operands(7, 4, 5, 6);
    engine.gemm_i8_into(&a, &b, &mut out).unwrap();
    assert_eq!(out, engine.gemm_i8(&a, &b).unwrap());
}

/// A persistent workspace across a whole generation produces bit-identical tokens, margins
/// and logits to the allocating entry points, on every backend and both architectures.
#[test]
fn persistent_workspace_generation_matches_allocating_path() {
    for config_fn in [ModelConfig::tiny_opt, ModelConfig::tiny_llama] {
        for kind in EngineKind::ALL {
            let mut config = config_fn();
            config.engine = kind;
            let model = Model::new(&config, 11).unwrap();
            let prompt = [1u32, 5, 9, 2];

            let allocating = model.generate(&prompt, 6, &mut NoopHook).unwrap();

            // Hand-rolled generation over the `_ws` entry points with one long-lived
            // workspace, recycling and resetting per token like the serving engine does.
            let mut ws = Workspace::new();
            let (logits, mut cache) = model.prefill_ws(&prompt, &mut NoopHook, &mut ws).unwrap();
            let (mut next, _) =
                realm::llm::model::argmax_with_margin(logits.row(logits.rows() - 1));
            ws.recycle_mat_f32(logits);
            let mut tokens = vec![next];
            for _ in 1..6 {
                let step = model
                    .decode_step_ws(next, &mut cache, &mut NoopHook, &mut ws)
                    .unwrap();
                let (n, _) = realm::llm::model::argmax_with_margin(&step);
                ws.recycle_vec_f32(step);
                ws.reset();
                next = n;
                tokens.push(next);
            }
            assert_eq!(
                tokens, allocating.tokens,
                "{} on {kind}: workspace decode diverged",
                config.name
            );
            assert_eq!(ws.outstanding_buffers(), 0, "every checkout was recycled");
            assert!(ws.high_water_mark_bytes() > 0);
        }
    }
}

/// Ragged batches (including batch-of-1 and an early-completing sequence) through the
/// batched `_ws` path are bit-identical to the allocating batched path and to solo runs.
#[test]
fn batched_workspace_paths_are_bit_identical_on_all_backends() {
    for kind in EngineKind::ALL {
        let mut config = ModelConfig::tiny_opt();
        config.engine = kind;
        let model = Model::new(&config, 23).unwrap();
        let ragged: Vec<Vec<u32>> = vec![vec![1, 2, 3, 4, 5], vec![7], vec![9, 10, 11]];

        // prefill_batch (wrapper) vs prefill_batch_ws with a reused workspace, twice over
        // to exercise pool reuse across calls.
        let (oracle_logits, _) = model.prefill_batch(&ragged, &mut NoopHook).unwrap();
        let mut ws = Workspace::new();
        for round in 0..2 {
            let (ws_logits, _) = model
                .prefill_batch_ws(&ragged, &mut NoopHook, &mut ws)
                .unwrap();
            assert_eq!(ws_logits, oracle_logits, "{kind} round {round}");
            ws.reset();
        }

        // Batch-of-1 equals the solo path.
        let solo_prompt = vec![3u32, 1, 4];
        let (solo_logits, _) = model.prefill(&solo_prompt, &mut NoopHook).unwrap();
        let (batch1_logits, _) = model
            .prefill_batch_ws(std::slice::from_ref(&solo_prompt), &mut NoopHook, &mut ws)
            .unwrap();
        assert_eq!(batch1_logits[0], solo_logits, "{kind} batch-of-1");

        // Full scheduler runs (which now thread one workspace per run, with a sequence
        // completing mid-run) still match per-request solo generation.
        let requests = vec![
            BatchRequest::new(vec![1, 2, 3], 5),
            BatchRequest::new(vec![4, 5], 2),
            BatchRequest::new(vec![6], 4),
        ];
        let batched = BatchScheduler::new(&model)
            .run(&requests, &mut NoopHook)
            .unwrap();
        for (request, output) in requests.iter().zip(&batched) {
            let solo = model
                .generate(&request.prompt, request.max_new_tokens, &mut NoopHook)
                .unwrap();
            assert_eq!(output, &solo, "{kind} scheduler diverged from solo");
        }
    }
}

/// The workspace high-water mark stabilises under slot churn: after a first wave of
/// requests warms the pools, a second identical wave (100+ decode steps total, slots
/// released and re-admitted throughout) must not grow it — the no-leak property of the
/// steady-state serving loop.
#[test]
fn workspace_high_water_mark_stabilises_across_slot_churn() {
    use realm::serve::{ServeConfig, ServeEngine, ServeRequest};

    let mut config = ModelConfig::tiny_opt();
    config.engine = EngineKind::Reference;
    let model = Model::new(&config, 5).unwrap();
    let mut engine = ServeEngine::new(&model, ServeConfig::with_slots(2));

    let wave = |engine: &mut ServeEngine<'_>| {
        let receivers: Vec<_> = (0..16)
            .map(|i| {
                let prompt: Vec<u32> = (0..2 + i % 4).map(|t| ((i * 5 + t) % 60) as u32).collect();
                engine
                    .submit(ServeRequest::new(prompt, 5 + i % 6))
                    .unwrap()
                    .1
            })
            .collect();
        engine.run_until_idle().unwrap();
        receivers
    };

    // Warmup waves: the pools (and the best-fit buffer assignment) converge within a few
    // identical workloads. A real leak never converges and fails below.
    let mut receivers = Vec::new();
    let mut warmed = 0;
    for _ in 0..5 {
        receivers.push(wave(&mut engine));
        let mark = engine.stats().workspace_high_water_bytes;
        if mark == warmed {
            break;
        }
        warmed = mark;
    }
    assert!(warmed > 0);
    // Steady state: two more full waves of slot churn must not move the mark at all.
    receivers.push(wave(&mut engine));
    receivers.push(wave(&mut engine));
    let after = engine.stats();
    assert!(
        after.steps >= 100,
        "churn workload should cover 100+ decode steps, got {}",
        after.steps
    );
    assert_eq!(
        after.workspace_high_water_bytes, warmed,
        "steady-state slot churn must not grow the workspace (leak)"
    );
    assert!(after.decode_p50_us > 0.0);
    assert!(after.decode_p99_us >= after.decode_p50_us);
    drop(receivers);
}
