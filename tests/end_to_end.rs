//! End-to-end integration tests spanning the whole workspace: model + injection + ABFT +
//! systolic-array energy accounting, exercised through the public facade crate.

use realm::core::characterize::{componentwise_study, stagewise_study, StudyConfig};
use realm::core::pipeline::{PipelineConfig, ProtectedPipeline};
use realm::core::protection::SchemeProtector;
use realm::core::sweep::{component_sweet_spots, voltage_sweep};
use realm::eval::{lambada::LambadaTask, wikitext::WikitextTask};
use realm::inject::{error_model::FixedBitModel, injector::ErrorInjector};
use realm::llm::hooks::HookChain;
use realm::llm::{config::ModelConfig, model::Model, Component, NoopHook, Stage};
use realm::systolic::{Dataflow, ProtectionScheme, SystolicArray};

fn small_pipeline_config() -> PipelineConfig {
    PipelineConfig {
        array: SystolicArray::small(Dataflow::WeightStationary),
        ..PipelineConfig::default()
    }
}

#[test]
fn protected_inference_restores_clean_quality_at_aggressive_voltage() {
    let model = Model::new(&ModelConfig::tiny_opt(), 41).unwrap();
    let task = WikitextTask::quick(model.language(), 41);
    let pipeline = ProtectedPipeline::new(&model, small_pipeline_config());
    let clean = pipeline.clean_value(&task).unwrap();

    let unprotected = pipeline
        .run(&task, ProtectionScheme::None, 0.58, 5)
        .unwrap();
    let protected = pipeline
        .run(&task, ProtectionScheme::ClassicalAbft, 0.58, 5)
        .unwrap();

    assert!(
        unprotected.task_value > clean + 1.0,
        "without protection the low-voltage run must degrade (clean {clean}, got {})",
        unprotected.task_value
    );
    assert!(
        (protected.task_value - clean).abs() < 0.5,
        "classical ABFT restores quality (clean {clean}, got {})",
        protected.task_value
    );
}

#[test]
fn statistical_abft_saves_energy_without_losing_quality() {
    let model = Model::new(&ModelConfig::tiny_opt(), 43).unwrap();
    let task = WikitextTask::quick(model.language(), 43);
    let pipeline = ProtectedPipeline::new(&model, small_pipeline_config());
    let clean = pipeline.clean_value(&task).unwrap();

    let unprotected = pipeline
        .run(&task, ProtectionScheme::None, 0.62, 9)
        .unwrap();
    let classical = pipeline
        .run(&task, ProtectionScheme::ClassicalAbft, 0.62, 9)
        .unwrap();
    let statistical = pipeline
        .run(&task, ProtectionScheme::StatisticalAbft, 0.62, 9)
        .unwrap();

    assert!(statistical.recoveries < classical.recoveries);
    assert!(statistical.energy.total_j() <= classical.energy.total_j());
    let unprotected_degradation = unprotected.task_value - clean;
    let statistical_degradation = statistical.task_value - clean;
    assert!(
        unprotected_degradation > 1.0,
        "the operating point must actually be harmful without protection"
    );
    assert!(
        statistical_degradation < unprotected_degradation * 0.5,
        "statistical ABFT keeps degradation well below the unprotected run \
         (clean {clean}, statistical {}, unprotected {})",
        statistical.task_value,
        unprotected.task_value
    );
}

#[test]
fn sensitivity_ordering_matches_the_paper() {
    // The paper's headline characterization insight: post-normalization components (O, FC2)
    // degrade the model far more than softmax-bounded or re-quantized components (QK^T, K).
    let model = Model::new(&ModelConfig::tiny_opt(), 47).unwrap();
    let task = WikitextTask::quick(model.language(), 47);
    let config = StudyConfig {
        trials: 6,
        seed: 47,
        bit: 30,
    };
    let series = componentwise_study(
        &model,
        &task,
        &[Component::K, Component::QkT, Component::O, Component::Fc2],
        &[5e-3],
        Some(Stage::Prefill),
        &config,
    )
    .unwrap();
    let value = |label: &str| series.iter().find(|s| s.label == label).unwrap().points[0].value;
    let sensitive_worst = value("O").max(value("FC2"));
    let resilient_worst = value("K").max(value("QK^T"));
    assert!(
        sensitive_worst > resilient_worst,
        "sensitive components (O {:.1}, FC2 {:.1}) must degrade more than resilient ones \
         (K {:.1}, QK^T {:.1})",
        value("O"),
        value("FC2"),
        value("K"),
        value("QK^T")
    );
}

#[test]
fn prefill_stage_is_no_less_sensitive_than_decode_stage() {
    let model = Model::new(&ModelConfig::tiny_llama(), 53).unwrap();
    let task = LambadaTask::quick(model.language(), 53);
    let config = StudyConfig {
        trials: 6,
        seed: 53,
        bit: 30,
    };
    let series = stagewise_study(&model, &task, &[5e-3], &config).unwrap();
    let accuracy = |label: &str| series.iter().find(|s| s.label == label).unwrap().points[0].value;
    // LAMBADA evaluation only runs prefill, so decode-targeted errors cannot hurt it; the
    // meaningful check is that prefill-targeted degradation is at least as bad as decode.
    assert!(accuracy("prefill_stage") <= accuracy("decode_stage") + 1e-9);
    assert!(accuracy("two_stage") <= accuracy("decode_stage") + 1e-9);
}

#[test]
fn hook_chain_composes_injection_and_protection_across_crates() {
    let model = Model::new(&ModelConfig::tiny_llama(), 59).unwrap();
    let (clean_logits, _) = model.prefill(&[1, 2, 3, 4, 5], &mut NoopHook).unwrap();

    let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.1), 3);
    let mut protector = SchemeProtector::with_default_regions(
        ProtectionScheme::ClassicalAbft,
        SystolicArray::small(Dataflow::OutputStationary),
    );
    let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
    let (logits, _) = model.prefill(&[1, 2, 3, 4, 5], &mut chain).unwrap();

    assert!(injector.stats().errors_injected > 0, "faults were injected");
    assert!(
        protector.stats().recoveries_triggered > 0,
        "faults were recovered"
    );
    assert_eq!(logits, clean_logits, "recovered inference is bit-exact");
}

#[test]
fn voltage_sweep_finds_lower_energy_sweet_spot_for_statistical_abft() {
    let model = Model::new(&ModelConfig::tiny_opt(), 61).unwrap();
    let task = WikitextTask::quick(model.language(), 61);
    let pipeline = ProtectedPipeline::new(&model, small_pipeline_config());
    let clean = pipeline.clean_value(&task).unwrap();
    let voltages = [0.62, 0.68, 0.74, 0.80, 0.86, 0.90];

    // Injection seed pinned to an operating point where classical ABFT's
    // recover-everything policy visibly forces it to a higher (costlier) voltage than the
    // statistical scheme needs. Re-pinned when prefill moved to per-row activation
    // quantization (chunked prefill), which shifted which GEMMs each injected fault lands
    // in and therefore the per-seed recovery counts.
    let inject_seed = 9;
    let classical = voltage_sweep(
        &pipeline,
        &task,
        ProtectionScheme::ClassicalAbft,
        &voltages,
        inject_seed,
    )
    .unwrap();
    let statistical = voltage_sweep(
        &pipeline,
        &task,
        ProtectionScheme::StatisticalAbft,
        &voltages,
        inject_seed,
    )
    .unwrap();

    let budget = 0.5;
    let classical_spot = classical.sweet_spot(clean, false, budget).unwrap();
    let statistical_spot = statistical.sweet_spot(clean, false, budget).unwrap();
    assert!(
        statistical_spot.energy.total_j() <= classical_spot.energy.total_j(),
        "ReaLM's sweet spot ({:.3e} J) must not cost more than classical ABFT's ({:.3e} J)",
        statistical_spot.energy.total_j(),
        classical_spot.energy.total_j()
    );
}

#[test]
fn component_sweet_spots_cover_requested_components() {
    let model = Model::new(&ModelConfig::tiny_opt(), 67).unwrap();
    let task = WikitextTask::quick(model.language(), 67);
    let rows = component_sweet_spots(
        &model,
        &small_pipeline_config(),
        &task,
        &[Component::K, Component::V],
        ProtectionScheme::ClassicalAbft,
        &[0.64, 0.72, 0.80, 0.88],
        1.0,
        7,
    )
    .unwrap();
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(row.optimal_voltage >= 0.64 && row.optimal_voltage <= 0.88);
        assert!(row.optimal_energy_j > 0.0);
        assert!(
            row.energy_saving_percent >= -1.0,
            "{}: statistical ABFT should not cost meaningfully more than the baseline",
            row.component
        );
    }
}

#[test]
fn both_architectures_run_the_full_pipeline() {
    for (config, seed) in [
        (ModelConfig::tiny_opt(), 71u64),
        (ModelConfig::tiny_llama(), 73),
    ] {
        let model = Model::new(&config, seed).unwrap();
        let task = WikitextTask::quick(model.language(), seed);
        let pipeline = ProtectedPipeline::new(&model, small_pipeline_config());
        let outcome = pipeline
            .run(&task, ProtectionScheme::StatisticalAbft, 0.70, seed)
            .unwrap();
        assert!(outcome.task_value.is_finite(), "{}", config.name);
        assert!(outcome.energy.total_j() > 0.0);
        assert!(outcome.compute_macs > 0);
    }
}
