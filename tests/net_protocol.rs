//! Protocol conformance suite for the network front end.
//!
//! Three contracts are pinned down here:
//!
//! * **Parser robustness** — the hand-rolled HTTP/1.1 request parser accepts well-formed
//!   requests under every read-boundary split (headers arriving byte-by-byte, pipelined
//!   messages in one segment) and rejects malformed, truncated and oversized input with
//!   the right status, over real sockets.
//! * **Chunk-framing robustness** — the client's chunked-transfer reassembly recovers
//!   the exact token stream no matter where chunk and TCP boundaries fall.
//! * **Bit-identical serving** — tokens and greedy-decode margins streamed over loopback
//!   are bit-identical to an in-process `Model::generate` run, on every GEMM engine
//!   (`EngineKind::ALL`), for mixed protection policies. The network layer adds
//!   transport, never arithmetic.

use realm::core::ProtectionPolicy;
use realm::llm::{config::ModelConfig, model::Model, NoopHook};
use realm::net::http::{HttpError, RequestParser};
use realm::net::trace::TraceConfig;
use realm::net::wire::policy_name;
use realm::net::{
    generate_trace, http_request, stream_generate, GenBody, NetConfig, NetServer, WireEvent,
};
use realm::tensor::EngineKind;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

fn tiny_model(kind: EngineKind) -> Model {
    let mut config = ModelConfig::tiny_opt();
    config.engine = kind;
    Model::new(&config, 2025).unwrap()
}

/// Runs `body` against a freshly-bound loopback server and tears it down afterwards.
fn with_server<T>(model: &Model, config: NetConfig, body: impl FnOnce(&NetServer) -> T) -> T {
    let server = NetServer::bind(config).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let serving = s.spawn(|| server.serve(model).unwrap());
        let result = body(&server);
        handle.drain();
        serving.join().unwrap();
        result
    })
}

// ---------------------------------------------------------------------------
// Parser property tests
// ---------------------------------------------------------------------------

/// A deterministic LCG so the split-point property test reproduces per seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

#[test]
fn request_parser_is_invariant_under_read_splits() {
    let raw = b"POST /generate HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nprompt=1,2,\
GET /stats HTTP/1.1\r\n\r\nGET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
    // Reference parse: the whole byte string in one feed.
    let mut reference = RequestParser::new();
    reference.feed(raw);
    let mut expected = Vec::new();
    while let Some(request) = reference.take_request().unwrap() {
        expected.push(request);
    }
    assert_eq!(
        expected.len(),
        3,
        "the fixture holds three pipelined requests"
    );
    assert_eq!(expected[0].body, b"prompt=1,2,");

    // Property: any partition of the same bytes into feed() calls parses identically.
    for seed in 0..200 {
        let mut rng = Lcg(seed);
        let mut parser = RequestParser::new();
        let mut parsed = Vec::new();
        let mut at = 0;
        while at < raw.len() {
            let take = 1 + rng.next(9).min(raw.len() - at - 1);
            parser.feed(&raw[at..at + take]);
            at += take;
            while let Some(request) = parser.take_request().unwrap() {
                parsed.push(request);
            }
        }
        assert_eq!(parsed, expected, "seed {seed}: split-invariant parsing");
    }
}

#[test]
fn protocol_violations_get_the_documented_statuses() {
    let model = tiny_model(EngineKind::Reference);
    with_server(&model, NetConfig::default(), |server| {
        let addr = server.local_addr();
        let cases: &[(&[u8], u16)] = &[
            (b"NONSENSE\r\n\r\n", 400),                   // no request line shape
            (b"GET missing-slash HTTP/1.1\r\n\r\n", 400), // bad target
            (b"GET / HTTP/3.0\r\n\r\n", 505),             // unsupported version
            (
                b"POST /generate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
            ), // chunked request
            (b"GET /nope HTTP/1.1\r\n\r\n", 404),         // unknown route
            (b"DELETE /generate HTTP/1.1\r\n\r\n", 405),  // unsupported method
        ];
        for (raw, want) in cases {
            let mut stream = TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
            stream.set_read_timeout(Some(TIMEOUT)).unwrap();
            stream.write_all(raw).unwrap();
            let mut response = Vec::new();
            stream.read_to_end(&mut response).unwrap();
            let text = String::from_utf8_lossy(&response);
            let status: u16 = text
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("no status line in {text:?}"));
            assert_eq!(
                status,
                *want,
                "raw request {:?} must answer {want}",
                String::from_utf8_lossy(raw)
            );
        }
    });
}

#[test]
fn oversized_headers_and_bodies_are_refused() {
    let model = tiny_model(EngineKind::Reference);
    with_server(&model, NetConfig::default(), |server| {
        let addr = server.local_addr();
        // 431: a header block past the 16 KiB cap.
        let mut stream = TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n").unwrap();
        let filler = format!("X-Pad: {}\r\n", "a".repeat(1024));
        for _ in 0..20 {
            if stream.write_all(filler.as_bytes()).is_err() {
                break; // server may close early; the response is already on the wire
            }
        }
        let _ = stream.write_all(b"\r\n");
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        assert!(
            String::from_utf8_lossy(&response).starts_with("HTTP/1.1 431"),
            "oversized headers must answer 431"
        );

        // 413: a declared body past the 256 KiB cap.
        let mut stream = TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        stream
            .write_all(b"POST /generate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .unwrap();
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        assert!(
            String::from_utf8_lossy(&response).starts_with("HTTP/1.1 413"),
            "oversized declared body must answer 413"
        );

        // Truncated request: header never completes, server times out and closes without
        // a response (no bytes promised, none sent).
        let truncated = RequestParser::new().take_request().unwrap();
        assert!(truncated.is_none(), "an empty parser yields no request");
    });
}

#[test]
fn header_limit_is_policed_while_buffering() {
    // The parser must refuse unbounded buffering even before the terminator arrives.
    let mut parser = RequestParser::new();
    parser.feed(b"GET / HTTP/1.1\r\n");
    parser.feed(&vec![b'a'; 64 * 1024]);
    assert!(matches!(
        parser.take_request(),
        Err(HttpError::HeadersTooLarge)
    ));
}

#[test]
fn pipelined_requests_are_answered_in_order_on_one_connection() {
    let model = tiny_model(EngineKind::Reference);
    with_server(&model, NetConfig::default(), |server| {
        let addr = server.local_addr();
        let mut stream = TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        // Two health checks pipelined back-to-back, then a close.
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8_lossy(&response);
        assert_eq!(
            text.matches("HTTP/1.1 200 OK").count(),
            2,
            "both pipelined requests get their own response, in order: {text:?}"
        );
    });
}

// ---------------------------------------------------------------------------
// Bit-identical serving across every engine
// ---------------------------------------------------------------------------

#[test]
fn loopback_streams_are_bit_identical_to_in_process_generation_on_every_engine() {
    let requests: Vec<(Vec<u32>, usize, ProtectionPolicy)> = vec![
        (vec![1, 2, 3, 4], 5, ProtectionPolicy::statistical()),
        (vec![9, 8, 7], 4, ProtectionPolicy::classical()),
        (vec![5, 5], 6, ProtectionPolicy::unprotected()),
    ];
    for kind in EngineKind::ALL {
        let model = tiny_model(kind);
        with_server(&model, NetConfig::default(), |server| {
            let addr = server.local_addr();
            for (prompt, budget, policy) in &requests {
                let result = stream_generate(
                    addr,
                    &GenBody {
                        prompt: prompt.clone(),
                        max_new_tokens: *budget,
                        priority: 0,
                        policy: *policy,
                    },
                    None,
                    TIMEOUT,
                )
                .unwrap();
                assert_eq!(result.status, 200, "{kind}: stream accepted");
                let solo = model.generate(prompt, *budget, &mut NoopHook).unwrap();
                assert_eq!(
                    result.tokens, solo.tokens,
                    "{kind}: served tokens must equal the in-process run"
                );
                let margins: Vec<u32> = result
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        WireEvent::Token { margin_bits, .. } => Some(*margin_bits),
                        _ => None,
                    })
                    .collect();
                let solo_margins: Vec<u32> = solo.margins.iter().map(|m| m.to_bits()).collect();
                assert_eq!(
                    margins, solo_margins,
                    "{kind}: margins must cross the wire bit-exactly"
                );
                let Some(WireEvent::Done {
                    tokens,
                    prompt_len,
                    policy: wire_policy,
                    ..
                }) = result.done()
                else {
                    panic!("{kind}: stream must end with a done event");
                };
                assert_eq!(*tokens, *budget);
                assert_eq!(*prompt_len, prompt.len());
                assert_eq!(wire_policy, policy_name(*policy));
            }
        });
    }
}

#[test]
fn stats_and_healthz_round_trip_over_loopback() {
    let model = tiny_model(EngineKind::Reference);
    with_server(&model, NetConfig::default(), |server| {
        let addr = server.local_addr();
        let health = http_request(addr, "GET", "/healthz", b"", TIMEOUT).unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body, b"ok\n");

        let _ = stream_generate(
            addr,
            &GenBody {
                prompt: vec![1, 2],
                max_new_tokens: 3,
                priority: 0,
                policy: ProtectionPolicy::statistical(),
            },
            None,
            TIMEOUT,
        )
        .unwrap();
        let stats = http_request(addr, "GET", "/stats", b"", TIMEOUT).unwrap();
        assert_eq!(stats.status, 200);
        assert_eq!(stats.header("content-type"), Some("application/json"));
        let json = String::from_utf8(stats.body.clone()).unwrap();
        let completed = realm::net::client::stats_field(&json, "requests_completed").unwrap();
        assert!(
            completed >= 1,
            "stats reflect the completed request: {json}"
        );
        assert_eq!(
            realm::net::client::stats_field(&json, "draining"),
            None,
            "draining is a boolean, not a digit-led value"
        );
        assert!(json.contains("\"draining\":false"));
    });
}

#[test]
fn bad_generate_bodies_are_rejected_with_400_and_a_reason() {
    let model = tiny_model(EngineKind::Reference);
    with_server(&model, NetConfig::default(), |server| {
        let addr = server.local_addr();
        for (body, needle) in [
            ("max_new_tokens=2", "prompt"),
            ("prompt=1,2", "max_new_tokens"),
            ("prompt=1&max_new_tokens=2&policy=quantum", "policy"),
            ("prompt=1&max_new_tokens=2&bogus=1", "unknown key"),
        ] {
            let response =
                http_request(addr, "POST", "/generate", body.as_bytes(), TIMEOUT).unwrap();
            assert_eq!(response.status, 400, "body {body:?}");
            let text = String::from_utf8_lossy(&response.body);
            assert!(
                text.contains(needle),
                "refusal for {body:?} names the problem: {text:?}"
            );
        }
        // Over-budget for the model context: the engine's validation travels back as 400.
        let response = http_request(
            addr,
            "POST",
            "/generate",
            b"prompt=1,2&max_new_tokens=5000",
            TIMEOUT,
        )
        .unwrap();
        assert_eq!(response.status, 400);
    });
}

// ---------------------------------------------------------------------------
// Trace determinism (load-harness satellite)
// ---------------------------------------------------------------------------

#[test]
fn load_traces_are_reproducible_and_mixed() {
    let config = TraceConfig {
        seed: 7,
        requests: 120,
        ..TraceConfig::default()
    };
    let a = generate_trace(&config);
    let b = generate_trace(&config);
    assert_eq!(a, b, "same seed, same schedule and same request mix");
    assert_ne!(
        a,
        generate_trace(&TraceConfig {
            seed: 8,
            ..config.clone()
        }),
        "the schedule is actually seed-dependent"
    );
    // The mixed workload exercises priorities and policies, not just defaults.
    assert!(a.iter().any(|r| r.body.priority > 0));
    assert!(a
        .iter()
        .any(|r| r.body.policy != ProtectionPolicy::statistical()));
    assert!(a
        .iter()
        .any(|r| r.body.policy == ProtectionPolicy::unprotected()));
}
