//! Proof that the workspace-planned decode hot loop is allocation-free after warmup.
//!
//! A counting global allocator wraps the system allocator; after a prefill plus enough
//! decode steps to warm every workspace pool past the window's power-of-two capacity
//! ceilings, a measured window of further decode steps must perform **zero** heap
//! allocations — unprotected and under an always-on statistical-ABFT protector alike (the
//! fault-free detection path reuses the protector's scratch buffers).
//!
//! The test pins two backends: `Reference` (its `_into` kernels are the oracle every other
//! backend is differentially tested against) and `Simd` (the microkernel keeps its tile in
//! stack registers and must not allocate packing scratch per call). Neither spawns worker
//! threads whose stacks would muddy the count. Under `REALM_FORCE_SCALAR=1` the Simd tests
//! prove the same contract for the portable fallback kernel.
//!
//! Since the decode-shape speed tier landed, `QuantLinear` pre-packs every weight matrix
//! into a [`realm::tensor::PackedMatI8`] replica at **model load**. That packing is a
//! one-time construction cost outside the measured window; the decode-path packed kernels
//! consume the resident tiles read-only, so the steady-state zero-allocation contract below
//! now covers the packed path by default (and the unpacked path via
//! `Model::set_weight_packing(false)`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use realm::core::SchemeProtector;
use realm::llm::model::argmax_with_margin;
use realm::llm::{config::ModelConfig, model::Model, GemmHook, NoopHook};
use realm::systolic::{Dataflow, ProtectionScheme, SystolicArray};
use realm::tensor::{EngineKind, Workspace};

/// Counts every allocation and reallocation routed through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A model on the given backend with a context window large enough that the measured
/// decode window never crosses a workspace capacity ceiling mid-measurement.
fn model_on(engine: EngineKind) -> Model {
    let mut config = ModelConfig::tiny_opt();
    config.engine = engine;
    config.max_seq_len = 256;
    Model::new(&config, 42).unwrap()
}

fn reference_model() -> Model {
    model_on(EngineKind::Reference)
}

/// Runs `steps` greedy decode steps through one long-lived workspace and returns the
/// number of heap allocations the steps performed.
fn count_decode_allocations(
    model: &Model,
    hook: &mut dyn GemmHook,
    warmup: usize,
    steps: usize,
) -> u64 {
    let mut ws = Workspace::new();
    let (logits, mut cache) = model.prefill_ws(&[1, 2, 3, 4], hook, &mut ws).unwrap();
    let (mut next, _) = argmax_with_margin(logits.row(logits.rows() - 1));
    ws.recycle_mat_f32(logits);
    let mut decode = |next: &mut u32, cache: &mut _, ws: &mut Workspace| {
        let step_logits = model.decode_step_ws(*next, cache, hook, ws).unwrap();
        let (n, _) = argmax_with_margin(&step_logits);
        ws.recycle_vec_f32(step_logits);
        ws.reset();
        *next = n;
    };
    // Warmup: grows every pool to (power-of-two rounded) steady-state capacity. The
    // window below stays under the next ceiling, so any allocation inside it is a bug.
    for _ in 0..warmup {
        decode(&mut next, &mut cache, &mut ws);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..steps {
        decode(&mut next, &mut cache, &mut ws);
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn decode_steps_after_warmup_allocate_nothing() {
    let model = reference_model();
    let sanity = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(sanity > 0, "the counting allocator is installed");
    // Warmup to KV length 4 + 64 = 68: every length-dependent scratch buffer has crossed
    // the 64-element ceiling and sits at a power-of-two capacity ≥ its demand through the
    // whole 40-step window (length ≤ 108 < 128).
    let allocations = count_decode_allocations(&model, &mut NoopHook, 64, 40);
    assert_eq!(
        allocations, 0,
        "steady-state decode must perform zero heap allocations per step"
    );
}

#[test]
fn simd_decode_steps_after_warmup_allocate_nothing() {
    // The SIMD backend's `_into` kernels keep their register tile on the stack; the packed
    // weight replicas they stream were allocated once at `Model::new` and are read-only
    // here, so the allocation-free contract extends to the packed decode path verbatim —
    // on every dispatch tier (AVX-512 or AVX2 here; the portable fallback under the CI leg
    // that sets REALM_FORCE_SCALAR=1).
    let model = model_on(EngineKind::Simd);
    let allocations = count_decode_allocations(&model, &mut NoopHook, 64, 40);
    assert_eq!(
        allocations, 0,
        "steady-state SIMD decode must perform zero heap allocations per step"
    );
}

#[test]
fn simd_unpacked_decode_steps_after_warmup_allocate_nothing() {
    // `set_weight_packing(false)` reroutes every weight GEMM through the legacy unpacked
    // kernels without repacking or dropping buffers, so the A/B switch the packed-vs-
    // unpacked benchmarks rely on preserves the zero-allocation contract on both sides.
    let mut model = model_on(EngineKind::Simd);
    model.set_weight_packing(false);
    let allocations = count_decode_allocations(&model, &mut NoopHook, 64, 40);
    assert_eq!(
        allocations, 0,
        "steady-state unpacked SIMD decode must perform zero heap allocations per step"
    );
}

#[test]
fn packed_checksummed_gemv_reuses_buffers_without_allocating() {
    // Engine-level statement of the same contract: once the packed replica exists and the
    // destination/scratch buffers have been sized by a first call, repeated checksummed
    // packed GEMVs (the per-layer decode workload) perform zero heap allocations.
    use realm::tensor::engine::{ChecksummedGemm, GemmEngine, ReferenceEngine};
    use realm::tensor::{rng, MatI32, MatI8, PackedMatI8, SimdEngine};

    let mut r = rng::seeded(7);
    use rand::Rng;
    let w = MatI8::from_fn(96, 80, |_, _| r.gen_range(-128i16..=127) as i8);
    let pb = PackedMatI8::from_mat(w);
    let a = MatI8::from_fn(1, 96, |_, _| r.gen_range(-128i16..=127) as i8);
    let engine = SimdEngine::new();

    let mut dest = ChecksummedGemm::from_parts(MatI32::zeros(0, 0), Vec::new(), Vec::new());
    let mut etw = Vec::new();
    // Warmup sizes the accumulator and the three checksum buffers.
    engine
        .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
        .unwrap();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..32 {
        engine
            .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
            .unwrap();
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "repeated packed checksummed GEMVs must reuse the caller's buffers"
    );

    // The loop above really did compute the decode GEMM: cross-check the last result.
    let oracle = ReferenceEngine
        .gemm_i8_checksummed_two_pass(&a, pb.unpacked())
        .unwrap();
    assert_eq!(dest.acc(), oracle.acc());
    assert_eq!(dest.expected(), oracle.expected());
    assert_eq!(dest.observed(), oracle.observed());
}

#[test]
fn simd_protected_decode_steps_after_warmup_allocate_nothing() {
    let model = model_on(EngineKind::Simd);
    let mut protector = SchemeProtector::with_default_regions(
        ProtectionScheme::StatisticalAbft,
        SystolicArray::small(Dataflow::WeightStationary),
    );
    let allocations = count_decode_allocations(&model, &mut protector, 64, 40);
    assert_eq!(
        allocations, 0,
        "fault-free protected SIMD decode must perform zero heap allocations per step"
    );
}

#[test]
fn protected_decode_steps_after_warmup_allocate_nothing() {
    // Always-on detection must stay cheap enough to leave on: the fault-free statistical
    // ABFT inspection path (fused checksums + protector-owned scratch) is also
    // allocation-free after warmup.
    let model = reference_model();
    let mut protector = SchemeProtector::with_default_regions(
        ProtectionScheme::StatisticalAbft,
        SystolicArray::small(Dataflow::WeightStationary),
    );
    let allocations = count_decode_allocations(&model, &mut protector, 64, 40);
    assert_eq!(
        allocations, 0,
        "fault-free protected decode must perform zero heap allocations per step"
    );
}

/// A tensor-parallel model on `engine`: every weight GEMM is scattered across `degree`
/// persistent rank threads and the stripes merged back on the caller's thread.
fn sharded_model_on(engine: EngineKind, degree: usize) -> Model {
    let mut config = ModelConfig::tiny_opt();
    config.engine = engine;
    config.max_seq_len = 256;
    config.tp_degree = degree;
    Model::new(&config, 42).unwrap()
}

#[test]
fn sharded_decode_steps_after_warmup_allocate_nothing() {
    // The counting allocator is global, so it also sees the rank threads: the zero budget
    // covers the whole TP machinery — mailbox dispatch, each rank's resident accumulator
    // and checksum segments, and the caller-side stripe merge. Everything was sized during
    // warmup; the steady-state sharded decode loop must not touch the heap anywhere.
    let model = sharded_model_on(EngineKind::Simd, 2);
    let allocations = count_decode_allocations(&model, &mut NoopHook, 64, 40);
    assert_eq!(
        allocations, 0,
        "steady-state sharded decode must perform zero heap allocations per step"
    );
}

#[test]
fn sharded_protected_decode_steps_after_warmup_allocate_nothing() {
    // The checksummed sharded path adds the per-shard expected/observed segment merge and
    // the protector's fused inspection on top — still zero allocations after warmup, with
    // a ragged shard count (3 does not divide tiny-opt's projection widths).
    let model = sharded_model_on(EngineKind::Simd, 3);
    let mut protector = SchemeProtector::with_default_regions(
        ProtectionScheme::StatisticalAbft,
        SystolicArray::small(Dataflow::WeightStationary),
    );
    let allocations = count_decode_allocations(&model, &mut protector, 64, 40);
    assert_eq!(
        allocations, 0,
        "fault-free protected sharded decode must perform zero heap allocations per step"
    );
}
