//! Differential tests proving every `GemmEngine` backend bit-exact against the scalar
//! reference — on accumulators *and* on fused ABFT checksums — across ragged shapes,
//! saturated INT8 inputs and corrupted accumulators.
//!
//! These are the guarantees that make the backend pluggable: because `Blocked` and
//! `Parallel` reproduce `Reference` to the bit, swapping the engine of a model, pipeline or
//! recovery path can never change an experiment's numbers, only its wall-clock time.

use rand::Rng;
use realm::abft::detector::AbftDetector;
use realm::abft::{checksum, ApproxAbft, ClassicalAbft, StatisticalAbft};
use realm::llm::{config::ModelConfig, model::Model, NoopHook};
use realm::tensor::engine::{
    BlockedEngine, EngineKind, GemmEngine, ParallelEngine, ReferenceEngine,
};
use realm::tensor::{rng, MatI8, SimdEngine, SimdParallelEngine};
use std::sync::Arc;

fn all_engines() -> Vec<Arc<dyn GemmEngine>> {
    vec![
        Arc::new(ReferenceEngine),
        Arc::new(BlockedEngine::new()),
        // Deliberately awkward tile sizes so panel edges land mid-matrix.
        Arc::new(BlockedEngine::with_tiles(7, 13)),
        Arc::new(ParallelEngine::new()),
        Arc::new(ParallelEngine::with_threads(5)),
        // Host-detected SIMD dispatch plus the pinned portable fallback, so both kernel
        // paths are differentially tested on every machine.
        Arc::new(SimdEngine::new()),
        Arc::new(SimdEngine::portable()),
        Arc::new(SimdParallelEngine::new()),
        Arc::new(SimdParallelEngine::with_threads(5)),
    ]
}

fn random_operands(seed: u64, m: usize, k: usize, n: usize) -> (MatI8, MatI8) {
    let mut r = rng::seeded(seed);
    let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
    let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
    (a, b)
}

/// Ragged and degenerate shapes: single rows/columns/depth, sizes that are not multiples of
/// any tile dimension (including the SIMD kernel's depth-pair width and 16-column tile),
/// and shapes crossing the parallel-dispatch threshold.
const SHAPES: [(usize, usize, usize); 12] = [
    (1, 1, 1),
    (1, 37, 1),
    (9, 1, 11),
    (1, 200, 300),
    (301, 5, 1),
    (17, 23, 31),
    (64, 64, 64),
    (65, 129, 257),
    (128, 67, 255),
    (96, 512, 96),
    (5, 3, 16),
    (4, 16, 48),
];

#[test]
fn accumulators_bit_exact_across_backends_and_shapes() {
    for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
        let (a, b) = random_operands(1000 + i as u64, m, k, n);
        let oracle = ReferenceEngine.gemm_i8(&a, &b).unwrap();
        for engine in all_engines() {
            let out = engine.gemm_i8(&a, &b).unwrap();
            assert_eq!(out, oracle, "{} diverged on {m}x{k}x{n}", engine.name());
        }
    }
}

#[test]
fn fused_checksums_bit_exact_across_backends_and_shapes() {
    for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
        let (a, b) = random_operands(2000 + i as u64, m, k, n);
        let oracle = ReferenceEngine
            .gemm_i8_checksummed_two_pass(&a, &b)
            .unwrap();
        for engine in all_engines() {
            let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
            assert_eq!(
                fused.acc(),
                oracle.acc(),
                "{} acc {m}x{k}x{n}",
                engine.name()
            );
            assert_eq!(
                fused.expected(),
                oracle.expected(),
                "{} expected checksum {m}x{k}x{n}",
                engine.name()
            );
            assert_eq!(
                fused.observed(),
                oracle.observed(),
                "{} observed checksum {m}x{k}x{n}",
                engine.name()
            );
        }
    }
}

#[test]
fn saturated_int8_inputs_stay_bit_exact() {
    // Worst-case magnitudes: every element at an INT8 rail. Accumulators reach
    // ±127·128·k and checksums reach ~2^31 per column — exercising the full i32/i64 range
    // the kernels are specified over, with no overflow.
    for &(m, k, n) in &[(64, 64, 64), (33, 257, 65), (1, 511, 3)] {
        for fill in [(127i8, 127i8), (-128, -128), (127, -128), (-128, 127)] {
            let a = MatI8::filled(m, k, fill.0);
            let b = MatI8::filled(k, n, fill.1);
            let oracle = ReferenceEngine
                .gemm_i8_checksummed_two_pass(&a, &b)
                .unwrap();
            for engine in all_engines() {
                let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
                assert_eq!(fused.acc(), oracle.acc(), "{} fill {fill:?}", engine.name());
                assert_eq!(fused.expected(), oracle.expected(), "{}", engine.name());
                assert_eq!(fused.observed(), oracle.observed(), "{}", engine.name());
            }
        }
    }
}

#[test]
fn fused_path_matches_two_pass_checksum_functions_under_corruption() {
    // The acceptance contract of the fused engine path: identical column deviations and MSD
    // to the original `checksum.rs` free-function path, for clean and corrupted results.
    let mut r = rng::seeded(0xDEC0DE);
    for trial in 0..32 {
        let m = r.gen_range(2usize..24);
        let k = r.gen_range(2usize..48);
        let n = r.gen_range(2usize..24);
        let (w, x) = random_operands(3000 + trial, m, k, n);
        for engine in all_engines() {
            let mut fused = engine.gemm_i8_checksummed(&w, &x).unwrap();
            // Corrupt a handful of accumulator entries through the staleness-tracking path.
            for _ in 0..r.gen_range(0..4) {
                let row = r.gen_range(0..m);
                let col = r.gen_range(0..n);
                let bit = r.gen_range(0u8..31);
                fused.acc_mut()[(row, col)] ^= 1 << bit;
            }
            let old_dev = checksum::column_deviations(&w, &x, fused.acc());
            assert_eq!(fused.column_deviations(), old_dev, "{}", engine.name());
            assert_eq!(fused.msd(), checksum::msd(&old_dev), "{}", engine.name());
        }
    }
}

#[test]
fn detectors_agree_between_two_pass_and_checksummed_inspection() {
    let mut r = rng::seeded(0xAB_F7);
    let detectors: Vec<Box<dyn AbftDetector>> = vec![
        Box::new(ClassicalAbft::new()),
        Box::new(ApproxAbft::paper_default()),
        Box::new(StatisticalAbft::resilient()),
        Box::new(StatisticalAbft::sensitive()),
    ];
    for trial in 0..24 {
        let (w, x) = random_operands(4000 + trial, 16, 24, 16);
        for engine in all_engines() {
            let mut fused = engine.gemm_i8_checksummed(&w, &x).unwrap();
            for _ in 0..r.gen_range(1..6) {
                let row = r.gen_range(0..16);
                let col = r.gen_range(0..16);
                let bit = r.gen_range(8u8..31);
                fused.acc_mut()[(row, col)] ^= 1 << bit;
            }
            for detector in &detectors {
                let via_two_pass = detector.inspect(&w, &x, fused.acc());
                let via_fused = detector.inspect_checksummed(&fused);
                assert_eq!(
                    via_two_pass,
                    via_fused,
                    "{} under {}",
                    detector.name(),
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn whole_forward_pass_is_backend_invariant() {
    // The end-to-end statement of the tentpole: a model forward pass produces identical
    // logits on every backend, so backend choice can never perturb an experiment.
    let prompt = [1u32, 5, 9, 3, 7, 2];
    let mut reference_logits = None;
    for kind in EngineKind::ALL {
        let mut config = ModelConfig::tiny_llama();
        config.engine = kind;
        let model = Model::new(&config, 77).unwrap();
        let (logits, _) = model.prefill(&prompt, &mut NoopHook).unwrap();
        match &reference_logits {
            None => reference_logits = Some(logits),
            Some(reference) => {
                assert_eq!(
                    &logits, reference,
                    "backend {kind} changed the forward pass"
                )
            }
        }
    }
}
