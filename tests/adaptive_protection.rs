//! End-to-end contracts for the adaptive protection controller.
//!
//! Five behaviours are pinned down here, all deterministic (seeded injectors, fixed
//! schedules):
//!
//! * **Escalation repairs** — a detection burst escalates a slot from statistical to
//!   classical ABFT, after which faults on a *resilient* component (tolerated, and
//!   therefore corrupting, under statistical) are repaired bit-exactly; the same fault
//!   schedule with adaptation disabled corrupts the stream.
//! * **De-escalation** — a clean window steps protection back down, one stage at a time.
//! * **Hysteresis** — an alternating fault pattern cannot make the policy flap: total
//!   transitions are bounded by one per hysteresis window.
//! * **Protection-first shedding** — queue pressure sheds resilient-component protection
//!   and restores it when the backlog clears, without ever changing clean output.
//! * **Clean-traffic parity** — on fault-free traffic the adaptive engine is
//!   bit-identical to the static one on every GEMM backend.

use realm::inject::{error_model::FixedBitModel, injector::ErrorInjector, targeting::Target};
use realm::llm::hooks::GemmContext;
use realm::llm::{config::ModelConfig, model::Model, Component, GemmHook, NoopHook};
use realm::serve::{
    AdaptiveConfig, ProtectionStage, ServeConfig, ServeEngine, ServeRequest, TokenEvent,
};
use realm::tensor::{ChecksummedGemm, EngineKind, MatI32, MatI8, RowPartition};

/// A two-phase fault schedule: the *signal* injector runs until `damage_from` (exclusive),
/// the *damage* injector from then on. Used to first feed the controller a detection burst
/// on a sensitive component (recovered bit-exactly even under statistical ABFT) and only
/// then strike a resilient component — so whether the damage corrupts the stream depends
/// purely on whether the controller escalated in time.
struct PhasedHook {
    signal: ErrorInjector<FixedBitModel>,
    damage: ErrorInjector<FixedBitModel>,
    damage_from: u64,
}

impl GemmHook for PhasedHook {
    fn on_gemm(&mut self, ctx: &GemmContext, w: &MatI8, x: &MatI8, acc: &mut MatI32) {
        self.signal.on_gemm(ctx, w, x, acc);
        self.damage.on_gemm(ctx, w, x, acc);
    }

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        w: &MatI8,
        x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        self.signal.on_gemm_checksummed(ctx, w, x, result);
        self.damage.on_gemm_checksummed(ctx, w, x, result);
    }

    fn wants_checksums(&self) -> bool {
        false
    }

    fn on_batch_begin(&mut self, partition: &RowPartition) {
        self.signal.on_batch_begin(partition);
        self.damage.on_batch_begin(partition);
    }

    fn on_step_begin(&mut self, step: u64) {
        self.signal.set_enabled(step < self.damage_from);
        self.damage.set_enabled(step >= self.damage_from);
        self.signal.on_step_begin(step);
        self.damage.on_step_begin(step);
    }
}

/// A burst on the attention output projection (sensitive: statistical ABFT recovers every
/// counted error bit-exactly) followed by sporadic faults on FC1 (resilient: statistical
/// ABFT counts but tolerates them, so they corrupt output unless protection escalated).
fn two_phase_hook(damage_from: u64) -> Box<PhasedHook> {
    Box::new(PhasedHook {
        signal: ErrorInjector::new(
            FixedBitModel::bit30(1.0),
            Target::new().components([Component::O]),
            5,
        ),
        damage: ErrorInjector::new(
            FixedBitModel::bit30(0.25),
            Target::new().components([Component::Fc1]),
            11,
        ),
        damage_from,
    })
}

/// A fast-reacting controller: one detection elevates, two escalate, transitions gate
/// after a single step, and de-escalation is effectively disabled.
fn fast_escalation() -> AdaptiveConfig {
    AdaptiveConfig {
        window_steps: 8,
        elevate_detections: 1,
        escalate_detections: 2,
        clean_window_steps: 1_000,
        hysteresis_steps: 1,
        ..AdaptiveConfig::enabled()
    }
}

fn done_summary(rx: &std::sync::mpsc::Receiver<TokenEvent>) -> realm::serve::RequestSummary {
    let events: Vec<TokenEvent> = rx.try_iter().collect();
    let Some(TokenEvent::Done(summary)) = events.last() else {
        panic!("request completes");
    };
    summary.clone()
}

#[test]
fn detection_burst_escalates_and_recovers_bit_exact() {
    let model = Model::new(&ModelConfig::tiny_opt(), 7).unwrap();
    let prompt = vec![1u32, 5, 9];
    let budget = 24;
    let clean = model.generate(&prompt, budget, &mut NoopHook).unwrap();

    // Adaptive engine: the O-burst of steps 1–3 drives Calm → Elevated → Escalated, so by
    // the time the FC1 faults start (step 4) the slot's GEMMs run classical ABFT and every
    // deviation is repaired.
    let config = ServeConfig::with_slots(1).with_adaptive(fast_escalation());
    let mut engine = ServeEngine::new(&model, config).with_fault_hook(two_phase_hook(4));
    let (_, rx) = engine
        .submit(ServeRequest::new(prompt.clone(), budget))
        .unwrap();
    engine.run_until_idle().unwrap();
    let summary = done_summary(&rx);
    let stats = engine.stats();
    assert_eq!(
        summary.tokens, clean.tokens,
        "escalated classical ABFT repairs the resilient-component faults bit-exactly"
    );
    assert_eq!(summary.margins, clean.margins);
    assert!(
        stats.policy_escalations >= 2,
        "the burst climbed both stages (got {})",
        stats.policy_escalations
    );
    assert_eq!(
        summary.escalations, stats.policy_escalations,
        "the only request is charged every escalation"
    );
    assert!(
        summary.attribution.recoveries > 0,
        "detections triggered recoveries"
    );
    assert!(
        stats.steps_at_scheme
            [realm::systolic::ProtectionScheme::ClassicalAbft.strictness() as usize]
            > 0,
        "escalated steps ran under classical ABFT"
    );

    // Static contrast: the identical fault schedule with adaptation disabled. Statistical
    // ABFT counts the FC1 deviations but tolerates them — the stream corrupts.
    let mut static_engine =
        ServeEngine::new(&model, ServeConfig::with_slots(1)).with_fault_hook(two_phase_hook(4));
    let (_, rx) = static_engine
        .submit(ServeRequest::new(prompt, budget))
        .unwrap();
    static_engine.run_until_idle().unwrap();
    let static_summary = done_summary(&rx);
    assert_eq!(static_engine.stats().policy_escalations, 0);
    assert!(
        static_summary.attribution.detections > 0,
        "statistical ABFT saw the faults"
    );
    assert_ne!(
        static_summary.tokens, clean.tokens,
        "without escalation the tolerated resilient-component faults corrupt the stream"
    );
}

#[test]
fn clean_window_deescalates_one_stage_at_a_time() {
    let model = Model::new(&ModelConfig::tiny_opt(), 7).unwrap();
    let prompt = vec![2u32, 4, 6];
    let budget = 20;
    let clean = model.generate(&prompt, budget, &mut NoopHook).unwrap();

    // The burst covers steps 1–2 only (burst length 3 of period 1000 on the 1-based step
    // clock); every later step is clean, so a 4-step clean window de-escalates.
    let injector = ErrorInjector::new(
        FixedBitModel::bit30(1.0),
        Target::new().components([Component::O]),
        3,
    )
    .with_burst(3, 997);
    let adaptive = AdaptiveConfig {
        window_steps: 4,
        elevate_detections: 1,
        escalate_detections: u64::MAX,
        clean_window_steps: 4,
        hysteresis_steps: 1,
        ..AdaptiveConfig::enabled()
    };
    let config = ServeConfig::with_slots(1).with_adaptive(adaptive);
    let mut engine = ServeEngine::new(&model, config).with_fault_hook(Box::new(injector));
    let (_, rx) = engine.submit(ServeRequest::new(prompt, budget)).unwrap();
    let mut stages = Vec::new();
    while engine.step().unwrap() {
        stages.push(engine.adaptive().stage(0));
    }
    let summary = done_summary(&rx);
    assert_eq!(
        summary.tokens, clean.tokens,
        "sensitive-component faults recover bit-exactly even before escalation"
    );
    assert!(
        stages.contains(&ProtectionStage::Elevated),
        "the burst elevated the slot"
    );
    let stats = engine.stats();
    assert_eq!(stats.policy_escalations, 1);
    assert_eq!(
        stats.policy_deescalations, 1,
        "the clean window stepped protection back down"
    );
    // After the de-escalation the slot decodes Calm again.
    assert_eq!(*stages.last().unwrap(), ProtectionStage::Calm);
}

#[test]
fn hysteresis_bounds_transitions_under_an_alternating_injector() {
    let model = Model::new(&ModelConfig::tiny_opt(), 7).unwrap();
    let prompt = vec![3u32, 1, 4, 1];
    let budget = 26;
    let clean = model.generate(&prompt, budget, &mut NoopHook).unwrap();

    // Fault on even steps, clean on odd steps: with window and clean-window of 1 this
    // pattern asks for a transition every single step. The hysteresis gate must bound it.
    let injector = ErrorInjector::new(
        FixedBitModel::bit30(1.0),
        Target::new().components([Component::O]),
        17,
    )
    .with_burst(1, 1);
    let hysteresis = 6;
    let adaptive = AdaptiveConfig {
        window_steps: 1,
        elevate_detections: 1,
        escalate_detections: u64::MAX,
        clean_window_steps: 1,
        hysteresis_steps: hysteresis,
        ..AdaptiveConfig::enabled()
    };
    let config = ServeConfig::with_slots(1).with_adaptive(adaptive);
    let mut engine = ServeEngine::new(&model, config).with_fault_hook(Box::new(injector));
    let (_, rx) = engine.submit(ServeRequest::new(prompt, budget)).unwrap();
    engine.run_until_idle().unwrap();
    let summary = done_summary(&rx);
    assert_eq!(summary.tokens, clean.tokens, "O faults always recover");
    let stats = engine.stats();
    let transitions = stats.policy_escalations + stats.policy_deescalations;
    assert!(
        transitions <= 1 + stats.steps / hysteresis,
        "at most one transition per hysteresis window ({} transitions in {} steps)",
        transitions,
        stats.steps
    );
    assert!(
        stats.policy_escalations >= 1 && stats.policy_deescalations >= 1,
        "the controller still adapts in both directions under the alternating pattern"
    );
}

#[test]
fn protection_sheds_under_queue_pressure_and_restores() {
    let model = Model::new(&ModelConfig::tiny_opt(), 7).unwrap();
    let requests: Vec<Vec<u32>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11, 12]];
    let budget = 6;
    let clean: Vec<Vec<u32>> = requests
        .iter()
        .map(|p| model.generate(p, budget, &mut NoopHook).unwrap().tokens)
        .collect();

    // One slot and a tight token budget: the queued requests' token-age crosses the shed
    // pressure threshold while they wait, and clears once the queue drains.
    let adaptive = AdaptiveConfig::enabled().with_shed(8, realm::systolic::ProtectionScheme::None);
    let config = ServeConfig::with_slots(1)
        .with_step_token_budget(4)
        .with_adaptive(adaptive);
    let mut engine = ServeEngine::new(&model, config);
    let receivers: Vec<_> = requests
        .iter()
        .map(|p| {
            engine
                .submit(ServeRequest::new(p.clone(), budget))
                .unwrap()
                .1
        })
        .collect();
    let mut shed_seen = false;
    while engine.step().unwrap() {
        if engine.adaptive().shed_active() {
            shed_seen = true;
            assert!(
                !engine.adaptive().component_overlay().is_empty(),
                "shedding installs the resilient-component overlay"
            );
            assert!(
                engine.stats().queue_depth > 0,
                "protection only sheds while a backlog exists"
            );
        }
    }
    assert!(shed_seen, "queue pressure armed the shed overlay");
    assert!(
        !engine.adaptive().shed_active(),
        "the overlay lifts once pressure clears"
    );
    assert!(engine.adaptive().component_overlay().is_empty());
    let stats = engine.stats();
    assert!(stats.protection_shed_steps > 0);
    assert_eq!(
        stats.requests_shed, 0,
        "protection was shed instead of traffic: no request was refused"
    );
    for (rx, expected) in receivers.iter().zip(&clean) {
        assert_eq!(
            done_summary(rx).tokens,
            *expected,
            "shedding protection never changes fault-free output"
        );
    }
}

#[test]
fn adaptive_engine_matches_static_on_clean_traffic_on_every_backend() {
    let requests: Vec<(Vec<u32>, usize)> = vec![
        (vec![1, 2, 3, 4, 5], 7),
        (vec![9, 8], 1),
        (vec![3, 3, 3, 3], 4),
        (vec![7, 11, 2], 5),
        (vec![6, 1], 3),
    ];
    for kind in EngineKind::ALL {
        let mut model_config = ModelConfig::tiny_opt();
        model_config.engine = kind;
        let model = Model::new(&model_config, 7).unwrap();
        let serve = |adaptive: AdaptiveConfig| {
            let config = ServeConfig::with_slots(2)
                .with_step_token_budget(4)
                .with_adaptive(adaptive);
            let mut engine = ServeEngine::new(&model, config);
            let receivers: Vec<_> = requests
                .iter()
                .map(|(p, n)| engine.submit(ServeRequest::new(p.clone(), *n)).unwrap().1)
                .collect();
            engine.run_until_idle().unwrap();
            let stats = engine.stats();
            let outputs: Vec<(Vec<u32>, Vec<f32>)> = receivers
                .iter()
                .map(|rx| {
                    let s = done_summary(rx);
                    (s.tokens, s.margins)
                })
                .collect();
            (outputs, stats)
        };
        let (static_out, static_stats) = serve(AdaptiveConfig::default());
        let (adaptive_out, adaptive_stats) = serve(AdaptiveConfig::enabled());
        assert_eq!(
            adaptive_out, static_out,
            "{kind}: with no detections the controller never moves, so adaptive serving \
             is bit-identical to static"
        );
        assert_eq!(adaptive_stats.policy_escalations, 0);
        assert_eq!(adaptive_stats.policy_deescalations, 0);
        assert_eq!(adaptive_stats.protection_shed_steps, 0);
        for stats in [&static_stats, &adaptive_stats] {
            assert_eq!(
                stats.steps_at_scheme.iter().sum::<u64>(),
                stats.steps,
                "{kind}: every step is charged to exactly one scheme"
            );
        }
    }
}
