//! Differential and scheduling tests for the continuous-batching serving layer.
//!
//! Two contracts are pinned down here:
//!
//! * **Slot-reuse parity** — a request admitted mid-flight into a recycled batch slot
//!   produces bit-identical tokens to a solo `Model::generate` run, on every `GemmEngine`
//!   backend and through both the `BatchScheduler::run_with_slots` window and the full
//!   `ServeEngine` queue → prefill → continuous-decode path.
//! * **No starvation** — under a saturating stream of high-priority arrivals, queue aging
//!   guarantees low-priority requests still complete within a bounded number of steps.

use realm::core::ProtectionPolicy;
use realm::inject::{error_model::FixedBitModel, injector::ErrorInjector};
use realm::llm::batch::{BatchRequest, BatchScheduler};
use realm::llm::{config::ModelConfig, model::Model, NoopHook};
use realm::serve::{ServeConfig, ServeEngine, ServeRequest, TokenEvent};
use realm::tensor::EngineKind;

/// Ragged prompts and budgets that force multiple admission waves through a small window.
fn ragged_requests() -> Vec<(Vec<u32>, usize)> {
    vec![
        (vec![1, 2, 3, 4, 5], 7),
        (vec![9, 8], 1),
        (vec![3, 3, 3, 3], 4),
        (vec![0], 9),
        (vec![7, 11, 2, 5], 2),
        (vec![6, 1], 5),
        (vec![4], 3),
    ]
}

fn model_for(kind: EngineKind, mut config: ModelConfig) -> Model {
    config.engine = kind;
    Model::new(&config, 7).unwrap()
}

#[test]
fn mid_flight_admission_is_bit_identical_to_solo_runs_on_every_backend() {
    for kind in EngineKind::ALL {
        for config in [ModelConfig::tiny_opt(), ModelConfig::tiny_llama()] {
            let name = config.name.clone();
            let model = model_for(kind, config);
            let mut engine = ServeEngine::new(&model, ServeConfig::with_slots(2));
            let receivers: Vec<_> = ragged_requests()
                .into_iter()
                .map(|(prompt, budget)| engine.submit(ServeRequest::new(prompt, budget)).unwrap().1)
                .collect();
            engine.run_until_idle().unwrap();
            let stats = engine.stats();
            assert_eq!(stats.requests_completed as usize, receivers.len());
            assert!(
                stats.requests_admitted as usize > 2,
                "{name}/{kind}: slots must be recycled across admission waves"
            );

            for (i, ((prompt, budget), rx)) in
                ragged_requests().into_iter().zip(&receivers).enumerate()
            {
                let events: Vec<TokenEvent> = rx.try_iter().collect();
                let Some(TokenEvent::Done(summary)) = events.last() else {
                    panic!("{name}/{kind}: request {i} never completed");
                };
                let solo = model.generate(&prompt, budget, &mut NoopHook).unwrap();
                assert_eq!(
                    summary.tokens, solo.tokens,
                    "{name}/{kind}: request {i} tokens diverged from the solo run"
                );
                assert_eq!(
                    summary.margins, solo.margins,
                    "{name}/{kind}: request {i} margins diverged from the solo run"
                );
                // The streamed tokens are the summary, in order.
                let streamed: Vec<u32> = events
                    .iter()
                    .filter_map(|e| match e {
                        TokenEvent::Token { token, .. } => Some(*token),
                        TokenEvent::Done(_) => None,
                    })
                    .collect();
                assert_eq!(
                    streamed, summary.tokens,
                    "{name}/{kind}: stream {i} diverged"
                );
            }
        }
    }
}

#[test]
fn run_with_slots_matches_solo_generate_on_every_backend() {
    let requests: Vec<BatchRequest> = ragged_requests()
        .into_iter()
        .map(|(prompt, budget)| BatchRequest::new(prompt, budget))
        .collect();
    for kind in EngineKind::ALL {
        let model = model_for(kind, ModelConfig::tiny_llama());
        let outputs = BatchScheduler::new(&model)
            .run_with_slots(&requests, 3, &mut NoopHook)
            .unwrap();
        for (i, request) in requests.iter().enumerate() {
            let solo = model
                .generate(&request.prompt, request.max_new_tokens, &mut NoopHook)
                .unwrap();
            assert_eq!(
                outputs[i], solo,
                "{kind}: windowed request {i} diverged from solo generate"
            );
        }
    }
}

#[test]
fn saturated_engine_does_not_starve_low_priority_requests() {
    let model = model_for(EngineKind::Parallel, ModelConfig::tiny_opt());
    let mut engine = ServeEngine::new(
        &model,
        ServeConfig {
            slots: 2,
            aging_steps: 4,
            ..ServeConfig::default()
        },
    );

    // Four low-priority requests arrive first ...
    let low: Vec<_> = (0..4)
        .map(|i| {
            engine
                .submit(ServeRequest::new(vec![1 + i, 2, 3], 3).with_priority(0))
                .unwrap()
                .1
        })
        .collect();
    // ... then a saturating stream of high-priority arrivals: two per engine step, faster
    // than two budget-2 slots can drain, so the queue genuinely backs up.
    let mut high = Vec::new();
    let mut steps = 0u64;
    while engine.has_work() || high.len() < 24 {
        for _ in 0..2 {
            if high.len() < 24 {
                high.push(
                    engine
                        .submit(ServeRequest::new(vec![5, 6], 2).with_priority(5))
                        .unwrap()
                        .1,
                );
            }
        }
        engine.step().unwrap();
        steps += 1;
        assert!(steps < 500, "engine failed to drain a bounded workload");
    }

    let stats = engine.stats();
    assert_eq!(stats.requests_completed, 4 + 24);
    assert_eq!(stats.queue_depth, 0);
    for (i, rx) in low.iter().enumerate() {
        let done = rx
            .try_iter()
            .find_map(|e| match e {
                TokenEvent::Done(summary) => Some(summary),
                TokenEvent::Token { .. } => None,
            })
            .unwrap_or_else(|| panic!("low-priority request {i} starved"));
        assert_eq!(done.tokens.len(), 3);
        // Aging must bound the wait: priority 0 vs a sustained priority-5 stream with
        // aging_steps = 4 means a queued request earns rank 5 after at most 20 steps, and
        // ties break FIFO in its favour.
        assert!(
            done.queued_steps <= 40,
            "low-priority request {i} waited {} steps",
            done.queued_steps
        );
    }
    for rx in &high {
        assert!(rx
            .try_iter()
            .any(|e| matches!(e, TokenEvent::Done(s) if s.tokens.len() == 2)));
    }
}

#[test]
fn protected_serving_repairs_faults_and_attributes_them_per_request() {
    let model = model_for(EngineKind::Parallel, ModelConfig::tiny_opt());
    let injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.02), 41);
    let mut engine =
        ServeEngine::new(&model, ServeConfig::with_slots(2)).with_fault_hook(Box::new(injector));

    let requests: Vec<(Vec<u32>, usize)> =
        vec![(vec![1, 2, 3, 4], 5), (vec![9, 8, 7], 4), (vec![5, 5], 6)];
    let receivers: Vec<_> = requests
        .iter()
        .map(|(prompt, budget)| {
            engine
                .submit(
                    ServeRequest::new(prompt.clone(), *budget)
                        .with_policy(ProtectionPolicy::classical()),
                )
                .unwrap()
                .1
        })
        .collect();
    engine.run_until_idle().unwrap();

    let stats = engine.stats();
    assert!(
        stats.detections > 0,
        "injected faults must be detected: {stats:?}"
    );
    assert_eq!(stats.detections, stats.recoveries, "classical recovers all");
    let mut attributed = 0u64;
    for ((prompt, budget), rx) in requests.iter().zip(&receivers) {
        let done = rx
            .try_iter()
            .find_map(|e| match e {
                TokenEvent::Done(summary) => Some(summary),
                TokenEvent::Token { .. } => None,
            })
            .expect("request completes");
        attributed += done.attribution.detections;
        // Classical ABFT repairs every fault, so the served tokens are the clean ones.
        let clean = model.generate(prompt, *budget, &mut NoopHook).unwrap();
        assert_eq!(
            done.tokens, clean.tokens,
            "protected serving must deliver clean tokens"
        );
    }
    assert_eq!(
        attributed, stats.detections,
        "every detection is charged to exactly the requests whose rows deviated"
    );
}
