//! Differential tests proving the batched forward path bit-exact with N independent
//! single-sequence forwards — across ragged lengths, both block architectures and every
//! `GemmEngine` backend — plus per-sequence attribution of batched detections.
//!
//! Bit-exactness is what makes batching a pure amortisation: stacking sequences into one
//! fused-checksum GEMM per component may never change a logit, only how often the detector
//! has to look. The load-bearing mechanism is per-row-group quantization
//! (`realm_llm::quantized::quantize_symmetric_grouped`): each sequence keeps the symmetric
//! scale (and robust requantization percentile) it would have had alone.

use realm::core::{PipelineConfig, ProtectedPipeline, SchemeProtector, SequenceAttribution};
use realm::llm::batch::{BatchRequest, BatchScheduler};
use realm::llm::{
    config::ModelConfig, hooks::GemmContext, model::Model, GemmHook, GemmOrigin, NoopHook,
};
use realm::systolic::{Dataflow, ProtectionScheme, SystolicArray};
use realm::tensor::{ChecksummedGemm, EngineKind, MatI32, MatI8, RowPartition};

/// Ragged prompts exercising length-1 sequences, repeats and unequal lengths.
fn ragged_prompts() -> Vec<Vec<u32>> {
    vec![
        vec![1, 2, 3, 4, 5],
        vec![9, 8],
        vec![3, 3, 3, 3, 3, 3, 3],
        vec![0],
        vec![7, 11, 2, 5],
    ]
}

fn model_for(kind: EngineKind, mut config: ModelConfig) -> Model {
    config.engine = kind;
    Model::new(&config, 7).unwrap()
}

#[test]
fn batched_generate_matches_sequential_on_every_backend() {
    for kind in EngineKind::ALL {
        for config in [ModelConfig::tiny_opt(), ModelConfig::tiny_llama()] {
            let name = config.name.clone();
            let model = model_for(kind, config);
            let prompts = ragged_prompts();
            let batched = model.generate_batch(&prompts, 6, &mut NoopHook).unwrap();
            assert_eq!(batched.len(), prompts.len());
            for (i, prompt) in prompts.iter().enumerate() {
                let solo = model.generate(prompt, 6, &mut NoopHook).unwrap();
                assert_eq!(
                    batched[i].tokens, solo.tokens,
                    "{name}/{kind}: sequence {i} tokens diverged"
                );
                assert_eq!(
                    batched[i].margins, solo.margins,
                    "{name}/{kind}: sequence {i} margins diverged"
                );
            }
        }
    }
}

#[test]
fn batched_prefill_logits_are_bit_exact_per_sequence() {
    for kind in EngineKind::ALL {
        let model = model_for(kind, ModelConfig::tiny_llama());
        let prompts = ragged_prompts();
        let (batched_logits, cache) = model.prefill_batch(&prompts, &mut NoopHook).unwrap();
        for (i, prompt) in prompts.iter().enumerate() {
            let (solo_logits, solo_cache) = model.prefill(prompt, &mut NoopHook).unwrap();
            assert_eq!(
                batched_logits[i], solo_logits,
                "{kind}: prefill logits of sequence {i} diverged"
            );
            assert_eq!(cache.seq_len(i), solo_cache.seq_len());
        }
    }
}

#[test]
fn batch_of_one_matches_the_single_sequence_path() {
    let model = model_for(EngineKind::Parallel, ModelConfig::tiny_opt());
    let prompt = vec![1u32, 5, 9, 3];
    let solo = model.generate(&prompt, 8, &mut NoopHook).unwrap();
    let batched = model
        .generate_batch(std::slice::from_ref(&prompt), 8, &mut NoopHook)
        .unwrap();
    assert_eq!(batched.len(), 1);
    assert_eq!(batched[0], solo);
}

#[test]
fn empty_batch_and_empty_prompts_are_rejected() {
    let model = model_for(EngineKind::Reference, ModelConfig::tiny_opt());
    assert!(model.prefill_batch(&[], &mut NoopHook).is_err());
    assert!(model.generate_batch(&[], 3, &mut NoopHook).is_err());
    assert!(model
        .prefill_batch(&[vec![1, 2], vec![]], &mut NoopHook)
        .is_err());
}

#[test]
fn scheduler_with_ragged_budgets_matches_per_sequence_generate() {
    let model = model_for(EngineKind::Blocked, ModelConfig::tiny_llama());
    let requests = vec![
        BatchRequest::new(vec![1, 2, 3], 7),
        BatchRequest::new(vec![4, 5, 6, 7, 8], 2),
        BatchRequest::new(vec![9], 5),
        BatchRequest::new(vec![2, 4], 0),
    ];
    let outputs = BatchScheduler::new(&model)
        .run(&requests, &mut NoopHook)
        .unwrap();
    for (i, request) in requests.iter().enumerate() {
        let solo = model
            .generate(&request.prompt, request.max_new_tokens, &mut NoopHook)
            .unwrap();
        assert_eq!(outputs[i], solo, "request {i} diverged from solo generate");
    }
}

/// A hook that corrupts one accumulator row of a chosen batch sequence in the first
/// batch-stacked GEMM it sees — ground truth for attribution.
struct CorruptOneSequence {
    partition: Option<RowPartition>,
    target_seq: usize,
    done: bool,
}

impl CorruptOneSequence {
    fn new(target_seq: usize) -> Self {
        Self {
            partition: None,
            target_seq,
            done: false,
        }
    }
}

impl GemmHook for CorruptOneSequence {
    fn on_gemm(&mut self, _: &GemmContext, _: &MatI8, _: &MatI8, _: &mut MatI32) {}

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        _w: &MatI8,
        _x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        if self.done || !matches!(ctx.origin, GemmOrigin::BatchedRows) {
            return;
        }
        let range = self
            .partition
            .as_ref()
            .expect("batched forwards announce their partition first")
            .range(self.target_seq);
        let row = range.start;
        let acc = result.acc_mut();
        acc[(row, 1)] = acc[(row, 1)].wrapping_add(1 << 21);
        self.done = true;
    }

    fn wants_checksums(&self) -> bool {
        false
    }

    fn on_batch_begin(&mut self, partition: &RowPartition) {
        if self.partition.is_none() {
            self.partition = Some(partition.clone());
        }
    }
}

#[test]
fn batched_campaign_attributes_detections_to_the_correct_sequence() {
    for kind in EngineKind::ALL {
        let model = model_for(kind, ModelConfig::tiny_opt());
        let prompts = ragged_prompts();
        let (clean_logits, _) = model.prefill_batch(&prompts, &mut NoopHook).unwrap();

        for target_seq in [0usize, 2, 4] {
            let mut corruptor = CorruptOneSequence::new(target_seq);
            let mut protector = SchemeProtector::with_default_regions(
                ProtectionScheme::ClassicalAbft,
                SystolicArray::small(Dataflow::WeightStationary),
            );
            let mut chain = realm::llm::hooks::HookChain::new()
                .with(&mut corruptor)
                .with(&mut protector);
            let (logits, _) = model.prefill_batch(&prompts, &mut chain).unwrap();

            let attribution = protector.sequence_attribution();
            assert_eq!(
                attribution.get(&target_seq),
                Some(&SequenceAttribution {
                    detections: 1,
                    recoveries: 1
                }),
                "{kind}: detection should be charged to sequence {target_seq}: {attribution:?}"
            );
            assert_eq!(
                attribution.len(),
                1,
                "{kind}: only the corrupted sequence is charged: {attribution:?}"
            );
            assert_eq!(
                logits, clean_logits,
                "{kind}: recovery restores the clean batched logits"
            );
        }
    }
}

#[test]
fn batched_pipeline_outcome_carries_dense_attribution() {
    let model = model_for(EngineKind::Parallel, ModelConfig::tiny_opt());
    let config = PipelineConfig {
        array: SystolicArray::small(Dataflow::WeightStationary),
        ..PipelineConfig::default()
    };
    let pipeline = ProtectedPipeline::new(&model, config);
    let prompts = ragged_prompts();
    let outcome = pipeline
        .run_generation_batch(&prompts, 4, ProtectionScheme::ClassicalAbft, 0.60, 3)
        .unwrap();
    assert_eq!(outcome.per_sequence.len(), prompts.len());
    assert!(outcome.errors_injected > 0);
    let attributed: u64 = outcome.per_sequence.iter().map(|s| s.detections).sum();
    assert!(
        attributed >= outcome.recoveries,
        "every recovery traces to at least one sequence ({attributed} attributed, {} recoveries)",
        outcome.recoveries
    );
    // The protected faulty run still produces the clean tokens.
    let clean = model.generate_batch(&prompts, 4, &mut NoopHook).unwrap();
    assert_eq!(outcome.outputs, clean);
}
