//! Differential proof that tensor-parallel sharding never changes model output.
//!
//! Column-wise sharding is bit-exact *by construction*: every output column is a
//! full-depth dot product computed by exactly one shard with the same kernel and the same
//! accumulation order as the unsharded GEMM, and the per-shard checksum segments
//! concatenate in column order into exactly the vectors the unsharded fused kernel
//! produces. These tests pin that construction against drift, on every GEMM backend:
//!
//! - sharded generation (tokens **and** logit margins) equals unsharded generation for
//!   tp ∈ {1, 2, 4} on all of [`EngineKind::ALL`];
//! - ragged column counts (shards differing by one column) stay bit-exact and the shard
//!   ranges partition the columns exactly;
//! - prefill logits match element-for-element, not just post-argmax;
//! - a shard killed mid-generation is survived by inline stripe recomputes with no output
//!   change, and the kills are charged to the dead shard;
//! - a garbled shard output under a checksumming protector is caught by the *per-shard*
//!   checksum segments below the hook interface and repaired before the protector ever
//!   sees a deviation.
//!
//! Run under `REALM_FORCE_SCALAR=1` the same assertions cover the portable fallback
//! kernels (the CI matrix exercises both legs).

use realm::core::SchemeProtector;
use realm::llm::{config::ModelConfig, model::Model, GemmHook, NoopHook};
use realm::systolic::{Dataflow, ProtectionScheme, SystolicArray};
use realm::tensor::{tp::shard_cols, EngineKind, ShardFault};

const PROMPT: [u32; 4] = [3, 11, 26, 7];
const BUDGET: usize = 8;

fn model_with(config: &ModelConfig, engine: EngineKind, tp_degree: usize) -> Model {
    let mut config = config.clone();
    config.engine = engine;
    config.tp_degree = tp_degree;
    Model::new(&config, 77).unwrap()
}

fn protector() -> SchemeProtector {
    SchemeProtector::with_default_regions(
        ProtectionScheme::StatisticalAbft,
        SystolicArray::small(Dataflow::WeightStationary),
    )
}

/// Greedy generation under `hook`, returning (tokens, margins).
fn generate(model: &Model, hook: &mut dyn GemmHook) -> (Vec<u32>, Vec<f32>) {
    let out = model.generate(&PROMPT, BUDGET, hook).unwrap();
    (out.tokens, out.margins)
}

#[test]
fn sharded_generation_matches_unsharded_on_every_backend() {
    for &engine in &EngineKind::ALL {
        let baseline = model_with(&ModelConfig::tiny_opt(), engine, 1);
        let expected = generate(&baseline, &mut NoopHook);
        for degree in [1usize, 2, 4] {
            let sharded = model_with(&ModelConfig::tiny_opt(), engine, degree);
            assert_eq!(
                generate(&sharded, &mut NoopHook),
                expected,
                "tp={degree} on {engine:?} must be bit-exact with unsharded"
            );
        }
    }
}

#[test]
fn sharded_generation_matches_under_a_checksumming_protector() {
    // The fused-checksum path is the one the paper's detector actually runs on: the
    // sharded kernel must hand the protector the same merged accumulator AND the same
    // checksum vectors, so detection statistics cannot drift either.
    for &engine in &[EngineKind::Reference, EngineKind::Simd] {
        let baseline = model_with(&ModelConfig::tiny_llama(), engine, 1);
        let expected = generate(&baseline, &mut protector());
        for degree in [2usize, 4] {
            let sharded = model_with(&ModelConfig::tiny_llama(), engine, degree);
            let mut guard = protector();
            assert_eq!(
                generate(&sharded, &mut guard),
                expected,
                "protected tp={degree} on {engine:?} must be bit-exact"
            );
            let stats = guard.stats();
            assert_eq!(stats.gemms_with_errors, 0, "fault-free run detects nothing");
        }
    }
}

#[test]
fn ragged_column_counts_stay_bit_exact() {
    // Degrees that do NOT divide the model's projection widths: leading shards carry one
    // extra column, and the merge must reassemble the stripes without gaps or overlap.
    for degree in [3usize, 5, 7] {
        for config in [ModelConfig::tiny_opt(), ModelConfig::tiny_llama()] {
            let baseline = model_with(&config, EngineKind::Simd, 1);
            let sharded = model_with(&config, EngineKind::Simd, degree);
            assert_eq!(
                generate(&sharded, &mut NoopHook),
                generate(&baseline, &mut NoopHook),
                "ragged tp={degree} on {} must be bit-exact",
                config.name
            );
        }
    }
    // The partition itself: ranges tile [0, cols) in order, sizes differ by at most one.
    let ranges = shard_cols(10, 4);
    assert_eq!(ranges.len(), 4);
    assert_eq!(ranges[0], 0..3);
    assert_eq!(ranges[3], 8..10);
    let mut next = 0;
    let mut sizes = Vec::new();
    for r in &ranges {
        assert_eq!(r.start, next, "ranges tile the columns without gaps");
        next = r.end;
        sizes.push(r.len());
    }
    assert_eq!(next, 10);
    assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
}

#[test]
fn prefill_logits_match_element_for_element() {
    // Stronger than token parity: the full final-position logit rows are identical, so
    // sharding cannot have perturbed even sub-margin logit mass.
    let baseline = model_with(&ModelConfig::tiny_opt(), EngineKind::SimdParallel, 1);
    let sharded = model_with(&ModelConfig::tiny_opt(), EngineKind::SimdParallel, 3);
    let mut ws_a = realm::tensor::Workspace::new();
    let mut ws_b = realm::tensor::Workspace::new();
    let (logits_a, _cache_a) = baseline
        .prefill_ws(&PROMPT, &mut NoopHook, &mut ws_a)
        .unwrap();
    let (logits_b, _cache_b) = sharded
        .prefill_ws(&PROMPT, &mut NoopHook, &mut ws_b)
        .unwrap();
    assert_eq!(logits_a, logits_b, "prefill logits must be bit-identical");
}

#[test]
fn shard_killed_mid_generation_recovers_bit_exact() {
    for &engine in &EngineKind::ALL {
        let baseline = model_with(&ModelConfig::tiny_opt(), engine, 1);
        let expected = generate(&baseline, &mut NoopHook);

        let sharded = model_with(&ModelConfig::tiny_opt(), engine, 2);
        let group = sharded.tp_group().expect("model is sharded");
        // The rank dies for its next 6 dispatches — mid-prefill and into decode — and
        // every one of its output stripes is recomputed inline by the caller.
        group.inject_shard_fault(0, ShardFault::Kill, 6);
        assert_eq!(
            generate(&sharded, &mut NoopHook),
            expected,
            "kill-then-recover on {engine:?} must preserve output"
        );
        let stats = sharded.shard_stats();
        assert_eq!(stats[0].kills, 6, "kills are charged to the dead shard");
        assert_eq!(stats[0].failovers, 6, "every kill was failed over");
        assert_eq!(stats[1].kills, 0);

        // The fault window expired: subsequent generations run clean and stay bit-exact.
        assert_eq!(generate(&sharded, &mut NoopHook), expected);
        assert_eq!(sharded.shard_stats()[0].kills, 6, "no further kills fired");
    }
}

#[test]
fn garbled_shard_is_repaired_below_the_protector() {
    let baseline = model_with(&ModelConfig::tiny_opt(), EngineKind::Simd, 1);
    let expected = generate(&baseline, &mut protector());

    let sharded = model_with(&ModelConfig::tiny_opt(), EngineKind::Simd, 3);
    let group = sharded.tp_group().expect("model is sharded");
    group.inject_shard_fault(1, ShardFault::Garble { seed: 0xBEEF }, 4);
    let mut guard = protector();
    assert_eq!(
        generate(&sharded, &mut guard),
        expected,
        "garble-then-recover must preserve output"
    );
    let stats = sharded.shard_stats();
    assert_eq!(
        stats[1].detections, 4,
        "the per-shard checksum segments caught every garble"
    );
    assert_eq!(
        stats[1].failovers, 4,
        "each detection triggered a recompute"
    );
    assert_eq!(stats[0].detections + stats[2].detections, 0);
    // Recovery happened below the hook interface: the protector saw clean checksums.
    assert_eq!(
        guard.stats().gemms_with_errors,
        0,
        "shard-level repair is invisible to the model-level detector"
    );
}
