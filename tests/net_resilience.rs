//! Resilience suite for the network front end: disconnects, load shedding, drain.
//!
//! * **Cancel-on-disconnect** — a client hanging up mid-stream must cancel its request
//!   at the engine's next commit and free the slot, observable through `/stats`
//!   (`requests_cancelled`, `active_slots`) and the final [`realm::net::NetReport`].
//! * **Shed without starvation** — once the oldest queued request has been passed over
//!   for more budgeted tokens than the SLO allows, new submissions are refused with
//!   `429` + `Retry-After` *before* entering the queue, and the already-queued request
//!   still completes: shedding protects the backlog, it never replaces it.
//! * **Graceful drain** — after `POST /admin/drain`, the in-flight stream runs to
//!   completion, new work is refused with `503`, and `serve` returns a consistent final
//!   report.

use realm::core::ProtectionPolicy;
use realm::llm::{config::ModelConfig, model::Model};
use realm::net::client::stats_field;
use realm::net::{http_request, stream_generate, GenBody, NetConfig, NetServer, WireEvent};
use realm::serve::ServeConfig;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(20);

/// `tiny_opt` with a context window large enough for deliberately long-running requests.
fn long_context_model() -> Model {
    let mut config = ModelConfig::tiny_opt();
    config.max_seq_len = 256;
    Model::new(&config, 2025).unwrap()
}

fn gen(prompt: Vec<u32>, budget: usize, priority: u8) -> GenBody {
    GenBody {
        prompt,
        max_new_tokens: budget,
        priority,
        policy: ProtectionPolicy::statistical(),
    }
}

/// Polls `/stats` until `predicate` holds or the deadline passes; returns the last JSON.
fn poll_stats(
    addr: std::net::SocketAddr,
    deadline: Duration,
    predicate: impl Fn(&str) -> bool,
) -> String {
    let start = Instant::now();
    loop {
        let response = http_request(addr, "GET", "/stats", b"", TIMEOUT).unwrap();
        let json = String::from_utf8(response.body).unwrap();
        if predicate(&json) || start.elapsed() > deadline {
            return json;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn mid_stream_disconnect_cancels_the_request_and_frees_the_slot() {
    let model = long_context_model();
    let server = NetServer::bind(NetConfig {
        serve: ServeConfig::with_slots(2),
        ..NetConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let report = std::thread::scope(|s| {
        let serving = s.spawn(|| server.serve(&model).unwrap());

        // A request with a 200-token budget, abandoned after 2 events: the hang-up lands
        // far from completion, so only cancellation can explain the freed slot.
        let result = stream_generate(addr, &gen(vec![1, 2, 3], 200, 0), Some(2), TIMEOUT).unwrap();
        assert_eq!(result.status, 200);
        assert!(result.disconnected);
        assert!(
            result.done().is_none(),
            "the abandoned stream must not have completed"
        );

        // The engine notices at its next commit: cancelled counted, slot released.
        let json = poll_stats(addr, Duration::from_secs(10), |j| {
            stats_field(j, "requests_cancelled") == Some(1)
        });
        assert_eq!(
            stats_field(&json, "requests_cancelled"),
            Some(1),
            "disconnect must surface as a cancellation: {json}"
        );
        let json = poll_stats(addr, Duration::from_secs(10), |j| {
            stats_field(j, "active_slots") == Some(0)
        });
        assert_eq!(
            stats_field(&json, "active_slots"),
            Some(0),
            "the cancelled request's slot must be freed: {json}"
        );
        assert_eq!(stats_field(&json, "requests_completed"), Some(0));

        // The freed slot is immediately usable: a follow-up request completes.
        let follow_up = stream_generate(addr, &gen(vec![4, 5], 3, 0), None, TIMEOUT).unwrap();
        assert_eq!(follow_up.status, 200);
        assert_eq!(follow_up.tokens.len(), 3);

        handle.drain();
        serving.join().unwrap()
    });
    assert_eq!(report.engine.requests_cancelled, 1);
    assert_eq!(report.engine.requests_completed, 1);
    assert_eq!(report.disconnects, 1);
    assert_eq!(report.streams_completed, 1);
    assert_eq!(report.engine.active_slots, 0, "clean teardown");
}

#[test]
fn shed_returns_429_with_retry_after_and_never_starves_the_queue() {
    let model = long_context_model();
    // One slot and a tiny SLO: the first request occupies the engine, the second queues
    // and ages past the SLO, the third must be shed.
    let server = NetServer::bind(NetConfig {
        shed_queue_age_tokens: Some(4),
        retry_after_secs: 3,
        serve: ServeConfig::with_slots(1),
        ..NetConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let report = std::thread::scope(|s| {
        let serving = s.spawn(|| server.serve(&model).unwrap());

        // Occupy the only slot with a long-running request.
        let hog = s
            .spawn(move || stream_generate(addr, &gen(vec![1, 2], 200, 0), None, TIMEOUT).unwrap());
        // Wait for it to be admitted, then queue a high-priority request behind it.
        poll_stats(addr, Duration::from_secs(10), |j| {
            stats_field(j, "active_slots") == Some(1)
        });
        let queued = s.spawn(move || {
            stream_generate(addr, &gen(vec![7, 8, 9], 4, 7), None, TIMEOUT).unwrap()
        });
        // Let the queued request age past the SLO (the hog decodes one token per step,
        // so the token clock — and with it the queued request's token age — keeps
        // climbing while it waits).
        let json = poll_stats(addr, Duration::from_secs(10), |j| {
            stats_field(j, "queue_oldest_age_tokens").unwrap_or(0) >= 4
        });
        assert!(
            stats_field(&json, "queue_oldest_age_tokens").unwrap_or(0) >= 4,
            "the queued request must age past the SLO: {json}"
        );

        // New work is now shed before it touches the queue.
        let shed = stream_generate(addr, &gen(vec![3], 2, 0), None, TIMEOUT).unwrap();
        assert_eq!(
            shed.status, 429,
            "aged queue must shed new work: {:?}",
            shed.error_body
        );
        assert_eq!(
            shed.retry_after_secs,
            Some(3),
            "the configured Retry-After must be advertised"
        );
        assert!(
            shed.error_body.contains("SLO"),
            "the refusal names the SLO: {:?}",
            shed.error_body
        );

        // Shedding refused the NEW request only: the queued one still completes in full.
        let queued_result = queued.join().unwrap();
        assert_eq!(queued_result.status, 200);
        assert_eq!(
            queued_result.tokens.len(),
            4,
            "the queued high-priority request is never starved by shedding"
        );
        let hog_result = hog.join().unwrap();
        assert_eq!(hog_result.status, 200);
        assert_eq!(hog_result.tokens.len(), 200);

        handle.drain();
        serving.join().unwrap()
    });
    assert_eq!(
        report.engine.requests_shed, 1,
        "exactly one request was shed"
    );
    assert_eq!(report.engine.requests_completed, 2);
    assert_eq!(
        report.engine.requests_submitted, 2,
        "the shed request never entered the queue"
    );
    assert_eq!(report.engine.queue_depth, 0);
}

#[test]
fn graceful_drain_finishes_in_flight_streams_and_refuses_new_work() {
    let model = long_context_model();
    let server = NetServer::bind(NetConfig {
        serve: ServeConfig::with_slots(2),
        ..NetConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let report = std::thread::scope(|s| {
        let serving = s.spawn(|| server.serve(&model).unwrap());

        // Start a long stream, then trigger the drain while it is mid-flight.
        let in_flight = s.spawn(move || {
            stream_generate(addr, &gen(vec![1, 2, 3], 100, 0), None, TIMEOUT).unwrap()
        });
        poll_stats(addr, Duration::from_secs(10), |j| {
            stats_field(j, "active_slots") == Some(1)
        });
        let drain = http_request(addr, "POST", "/admin/drain", b"", TIMEOUT).unwrap();
        assert_eq!(drain.status, 202);

        // While draining: health reports 503 and new generate requests are refused — or,
        // once the accept loop has already stopped, the connection is simply never
        // served (an Err on probe timeout, also a correct refusal). The probes use a
        // short timeout because an unserved backlog connection never answers.
        let probe = Duration::from_millis(800);
        if let Ok(health) = http_request(addr, "GET", "/healthz", b"", probe) {
            assert_eq!(health.status, 503, "draining health must be 503");
        }
        if let Ok(refused) = stream_generate(addr, &gen(vec![4], 2, 0), None, probe) {
            assert_eq!(refused.status, 503, "draining generate must be 503");
        }

        // The in-flight stream still runs to full completion.
        let result = in_flight.join().unwrap();
        assert_eq!(result.status, 200);
        assert_eq!(
            result.tokens.len(),
            100,
            "drain must let the in-flight stream finish, not truncate it"
        );
        let Some(WireEvent::Done { tokens, .. }) = result.done() else {
            panic!("the in-flight stream must deliver its terminal summary");
        };
        assert_eq!(*tokens, 100);

        serving.join().unwrap()
    });
    assert_eq!(report.engine.requests_completed, 1);
    assert_eq!(report.engine.requests_cancelled, 0);
    assert_eq!(report.engine.active_slots, 0);
    assert_eq!(report.engine.queue_depth, 0);
    assert_eq!(report.streams_completed, 1);
}
