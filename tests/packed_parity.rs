//! Differential tests for the decode-shape speed tier: the packed-B entry points
//! (`gemm_i8_packed_into` / `gemm_i8_packed_checksummed_into`) must be bit-exact against
//! the scalar reference — on accumulators *and* on fused ABFT checksums — for every
//! backend, every SIMD dispatch tier the host grants, ragged and degenerate shapes,
//! saturated INT8 inputs, and whole-model forward passes.
//!
//! This is the guarantee that makes pre-packing a pure optimisation: `PackedMatI8` is a
//! relayout of the same integer operand, integer accumulation is order-invariant, and the
//! skinny-M kernels fuse the expected-checksum reduction without changing a single bit of
//! it. Under `REALM_FORCE_SCALAR=1` (the portable CI leg) the same assertions pin the
//! scalar packed kernels.

use rand::Rng;
use realm::llm::{config::ModelConfig, model::Model, NoopHook};
use realm::tensor::engine::{ChecksummedGemm, EngineKind, GemmEngine, ReferenceEngine};
use realm::tensor::{rng, MatI32, MatI8, PackedMatI8, SimdEngine, SimdParallelEngine, SimdTier};
use std::sync::Arc;

/// Every backend registered in [`EngineKind::ALL`] plus explicitly-pinned SIMD tiers, so a
/// host with AVX-512 also differentially tests its clamped AVX2 and portable kernels (and a
/// host without simply re-tests the granted tier — `with_tier` clamps, never lies).
fn all_engines() -> Vec<Arc<dyn GemmEngine>> {
    let mut engines: Vec<Arc<dyn GemmEngine>> =
        EngineKind::ALL.iter().map(|kind| kind.build()).collect();
    for tier in [SimdTier::Portable, SimdTier::Avx2, SimdTier::Avx512] {
        engines.push(Arc::new(SimdEngine::with_tier(tier)));
    }
    engines.push(Arc::new(SimdParallelEngine::with_threads(5)));
    engines
}

fn random_operands(seed: u64, m: usize, k: usize, n: usize) -> (MatI8, PackedMatI8) {
    let mut r = rng::seeded(seed);
    let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
    let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
    (a, PackedMatI8::from_mat(b))
}

/// Shapes chosen to land on every packed-kernel edge: each skinny row count (M = 1..=4),
/// the first non-skinny count (5) and larger M, depths that are odd (the zero-padded last
/// pair), column counts off the 16-wide tile (partial final block via the portable
/// delegate), 1×N / N×1 degenerates, and one shape past the parallel-dispatch threshold.
const SHAPES: [(usize, usize, usize); 16] = [
    (1, 1, 1),
    (1, 64, 48),
    (1, 37, 1),
    (1, 200, 300),
    (2, 63, 17),
    (3, 5, 16),
    (3, 128, 33),
    (4, 33, 16),
    (4, 96, 96),
    (5, 48, 31),
    (9, 1, 11),
    (9, 7, 130),
    (17, 23, 31),
    (65, 129, 257),
    (130, 64, 96),
    (301, 5, 1),
];

#[test]
fn packed_accumulators_bit_exact_across_backends_and_shapes() {
    for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
        let (a, pb) = random_operands(4000 + i as u64, m, k, n);
        let oracle = ReferenceEngine.gemm_i8(&a, pb.unpacked()).unwrap();
        for engine in all_engines() {
            let mut out = MatI32::zeros(0, 0);
            engine.gemm_i8_packed_into(&a, &pb, &mut out).unwrap();
            assert_eq!(
                out,
                oracle,
                "{} packed diverged on {m}x{k}x{n}",
                engine.name()
            );
        }
    }
}

#[test]
fn packed_fused_checksums_bit_exact_across_backends_and_shapes() {
    for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
        let (a, pb) = random_operands(5000 + i as u64, m, k, n);
        let oracle = ReferenceEngine
            .gemm_i8_checksummed_two_pass(&a, pb.unpacked())
            .unwrap();
        for engine in all_engines() {
            let mut dest = ChecksummedGemm::from_parts(MatI32::zeros(0, 0), Vec::new(), Vec::new());
            let mut etw = Vec::new();
            engine
                .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
                .unwrap();
            assert_eq!(
                dest.acc(),
                oracle.acc(),
                "{} packed acc {m}x{k}x{n}",
                engine.name()
            );
            assert_eq!(
                dest.expected(),
                oracle.expected(),
                "{} packed expected checksum {m}x{k}x{n}",
                engine.name()
            );
            assert_eq!(
                dest.observed(),
                oracle.observed(),
                "{} packed observed checksum {m}x{k}x{n}",
                engine.name()
            );
        }
    }
}

#[test]
fn packed_path_matches_unpacked_path_exactly() {
    // The switch `QuantLinear::set_packing` toggles at runtime: same engine, same operands,
    // packed vs unpacked entry points — identical accumulators and checksums.
    for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
        let (a, pb) = random_operands(6000 + i as u64, m, k, n);
        for engine in all_engines() {
            let unpacked = engine.gemm_i8_checksummed(&a, pb.unpacked()).unwrap();
            let mut packed =
                ChecksummedGemm::from_parts(MatI32::zeros(0, 0), Vec::new(), Vec::new());
            let mut etw = Vec::new();
            engine
                .gemm_i8_packed_checksummed_into(&a, &pb, &mut packed, &mut etw)
                .unwrap();
            assert_eq!(packed.acc(), unpacked.acc(), "{}", engine.name());
            assert_eq!(packed.expected(), unpacked.expected(), "{}", engine.name());
            assert_eq!(packed.observed(), unpacked.observed(), "{}", engine.name());
        }
    }
}

#[test]
fn saturated_int8_inputs_stay_bit_exact_on_the_packed_path() {
    // Every element at an INT8 rail: the skinny kernel's i16 `eᵀ·X` weights hit their
    // extreme (±4·128) and per-pair i32 partials approach the drain bound, so this pins
    // the widening arithmetic at its specified limits.
    for &(m, k, n) in &[(1, 511, 3), (2, 64, 64), (4, 257, 65), (33, 64, 48)] {
        for fill in [(127i8, 127i8), (-128, -128), (127, -128), (-128, 127)] {
            let a = MatI8::filled(m, k, fill.0);
            let pb = PackedMatI8::from_mat(MatI8::filled(k, n, fill.1));
            let oracle = ReferenceEngine
                .gemm_i8_checksummed_two_pass(&a, pb.unpacked())
                .unwrap();
            for engine in all_engines() {
                let mut dest =
                    ChecksummedGemm::from_parts(MatI32::zeros(0, 0), Vec::new(), Vec::new());
                let mut etw = Vec::new();
                engine
                    .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
                    .unwrap();
                assert_eq!(dest.acc(), oracle.acc(), "{} fill {fill:?}", engine.name());
                assert_eq!(dest.expected(), oracle.expected(), "{}", engine.name());
                assert_eq!(dest.observed(), oracle.observed(), "{}", engine.name());
            }
        }
    }
}

#[test]
fn reused_destination_is_fully_overwritten() {
    // Decode reuses one `ChecksummedGemm` across layers of different widths. A large fused
    // GEMM followed by a smaller packed one must leave no stale accumulator or checksum
    // lane visible through the public accessors.
    let (big_a, big_pb) = random_operands(7001, 9, 40, 200);
    let (small_a, small_pb) = random_operands(7002, 2, 24, 17);
    let oracle = ReferenceEngine
        .gemm_i8_checksummed_two_pass(&small_a, small_pb.unpacked())
        .unwrap();
    for engine in all_engines() {
        let mut dest = ChecksummedGemm::from_parts(MatI32::zeros(0, 0), Vec::new(), Vec::new());
        let mut etw = Vec::new();
        engine
            .gemm_i8_packed_checksummed_into(&big_a, &big_pb, &mut dest, &mut etw)
            .unwrap();
        engine
            .gemm_i8_packed_checksummed_into(&small_a, &small_pb, &mut dest, &mut etw)
            .unwrap();
        assert_eq!(dest.acc(), oracle.acc(), "{} stale acc", engine.name());
        assert_eq!(dest.expected(), oracle.expected(), "{}", engine.name());
        assert_eq!(dest.observed(), oracle.observed(), "{}", engine.name());
    }
}

#[test]
fn packed_shape_mismatch_is_rejected_before_any_write() {
    let (a, _) = random_operands(8000, 3, 10, 4);
    let (_, pb) = random_operands(8001, 3, 12, 4); // 12 != 10: incompatible inner dim
    for engine in all_engines() {
        let mut out = MatI32::zeros(0, 0);
        assert!(
            engine.gemm_i8_packed_into(&a, &pb, &mut out).is_err(),
            "{} accepted mismatched inner dimensions",
            engine.name()
        );
        let mut dest = ChecksummedGemm::from_parts(MatI32::zeros(0, 0), Vec::new(), Vec::new());
        let mut etw = Vec::new();
        assert!(
            engine
                .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
                .is_err(),
            "{} accepted mismatched inner dimensions (checksummed)",
            engine.name()
        );
    }
}

#[test]
fn whole_forward_pass_is_packing_invariant() {
    // End-to-end statement of the tentpole: flipping a model between the packed (default)
    // and unpacked weight paths changes nothing about its logits, on any backend.
    let prompt = [1u32, 5, 9, 3, 7, 2];
    for kind in EngineKind::ALL {
        let mut config = ModelConfig::tiny_llama();
        config.engine = kind;
        let packed_model = Model::new(&config, 77).unwrap();
        let (packed_logits, _) = packed_model.prefill(&prompt, &mut NoopHook).unwrap();

        let mut unpacked_model = Model::new(&config, 77).unwrap();
        unpacked_model.set_weight_packing(false);
        let (unpacked_logits, _) = unpacked_model.prefill(&prompt, &mut NoopHook).unwrap();

        assert_eq!(
            packed_logits, unpacked_logits,
            "backend {kind}: packing changed the forward pass"
        );
    }
}
