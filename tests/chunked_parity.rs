//! Differential tests proving chunked prefill bit-exact with monolithic prefill.
//!
//! Chunked prefill is the substrate of the serving layer's budgeted admission: a long
//! prompt is advanced a budget-bounded window at a time instead of stalling every
//! in-flight decode stream for one monolithic forward. The whole design rests on the
//! chunking being **invisible to the numbers**:
//!
//! * **Logits** — the concatenated per-chunk logits equal the monolithic prefill logits
//!   bit for bit, at every chunk granularity, on every `GemmEngine` backend and TP
//!   degree. Per-row activation quantization and per-query-row visible-prefix attention
//!   are what make this hold: no value in the forward pass depends on where a chunk
//!   boundary falls.
//! * **Fused checksums** — the ABFT operand-side checksum `(eᵀ·X)·W` is linear in the
//!   activation rows, so the per-component checksum totals of a chunked prefill must
//!   equal the monolithic totals exactly. If chunking ever perturbed a quantized row,
//!   the checksum ledger would diverge even where the float logits round the same way.
//! * **Continuation** — decoding from a chunk-built cache reproduces the tokens *and*
//!   margins of a solo [`Model::generate`] run.
//! * **Attribution** — a fault injected into a mid-prompt chunk's GEMMs is detected,
//!   recovered, and charged to the owning request, never to its batch neighbours.

use realm::core::ProtectionPolicy;
use realm::llm::hooks::GemmContext;
use realm::llm::model::argmax_with_margin;
use realm::llm::{config::ModelConfig, model::Model, Component, GemmHook, GemmOrigin, NoopHook};
use realm::serve::{ServeConfig, ServeEngine, ServeRequest, TokenEvent};
use realm::tensor::{ChecksummedGemm, EngineKind, MatI32, MatI8, RowPartition, Workspace};
use std::collections::BTreeMap;

/// Accumulates the fused operand-side checksums of every GEMM, keyed by
/// `(layer, component)`. Because the checksum is a column sum over accumulator rows,
/// the ledger of a chunked prefill must equal the monolithic ledger exactly — per-GEMM
/// streams differ (one GEMM per chunk instead of one per prompt), but their row-linear
/// checksums add up to the same totals.
#[derive(Default)]
struct ChecksumLedger {
    totals: BTreeMap<(usize, Component), i64>,
}

impl GemmHook for ChecksumLedger {
    fn on_gemm(&mut self, _: &GemmContext, _: &MatI8, _: &MatI8, _: &mut MatI32) {
        unreachable!("a checksum-wanting hook always sees the checksummed pass");
    }

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        _w: &MatI8,
        _x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        let sum = result
            .expected()
            .iter()
            .fold(0i64, |acc, &c| acc.wrapping_add(c));
        let entry = self.totals.entry((ctx.layer, ctx.component)).or_default();
        *entry = entry.wrapping_add(sum);
    }

    fn wants_checksums(&self) -> bool {
        true
    }
}

/// A 70-token prompt: long enough that chunk size 64 splits it non-trivially and chunk
/// size 1 exercises 70 single-row windows.
fn long_prompt(vocab: u32) -> Vec<u32> {
    (0..70u32).map(|t| (t * 7 + 3) % vocab).collect()
}

/// Prefills `prompt` in `chunk`-sized windows, returning the concatenated logits rows,
/// the checksum ledger, and the continuation tokens/margins decoded from the chunk-built
/// cache.
fn chunked_run(
    model: &Model,
    prompt: &[u32],
    chunk: usize,
    decode_tokens: usize,
) -> (Vec<Vec<f32>>, ChecksumLedger, Vec<u32>, Vec<f32>) {
    let mut ledger = ChecksumLedger::default();
    let mut ws = Workspace::new();
    let mut cache = model.new_cache();
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut start = 0;
    while start < prompt.len() {
        let end = (start + chunk).min(prompt.len());
        let logits = model
            .prefill_chunk_ws(prompt, start..end, &mut ledger, &mut ws, &mut cache)
            .unwrap();
        for r in 0..logits.rows() {
            rows.push(logits.row(r).to_vec());
        }
        ws.recycle_mat_f32(logits);
        start = end;
    }
    // Continue decoding exactly the way `Model::generate` does, from the chunk-built
    // cache: the last prefill row's argmax is the first generated token.
    let (mut next, mut margin) = argmax_with_margin(rows.last().expect("non-empty prompt"));
    let mut tokens = Vec::new();
    let mut margins = Vec::new();
    for _ in 0..decode_tokens {
        tokens.push(next);
        margins.push(margin);
        if tokens.len() == decode_tokens {
            break;
        }
        let step_logits = model
            .decode_step_ws(next, &mut cache, &mut NoopHook, &mut ws)
            .unwrap();
        let (n, m) = argmax_with_margin(&step_logits);
        ws.recycle_vec_f32(step_logits);
        ws.reset();
        next = n;
        margin = m;
    }
    (rows, ledger, tokens, margins)
}

fn assert_chunk_parity(model: &Model, label: &str) {
    let prompt = long_prompt(model.config().vocab_size as u32);
    let decode_tokens = 6;

    let mut mono_ledger = ChecksumLedger::default();
    let (mono_logits, _cache) = model.prefill(&prompt, &mut mono_ledger).unwrap();
    let solo = model
        .generate(&prompt, decode_tokens, &mut NoopHook)
        .unwrap();

    for chunk in [1usize, 7, 64, prompt.len()] {
        let (rows, ledger, tokens, margins) = chunked_run(model, &prompt, chunk, decode_tokens);
        assert_eq!(
            rows.len(),
            mono_logits.rows(),
            "{label}/chunk={chunk}: row count"
        );
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.as_slice(),
                mono_logits.row(i),
                "{label}/chunk={chunk}: prefill logits row {i} diverged"
            );
        }
        assert_eq!(
            ledger.totals, mono_ledger.totals,
            "{label}/chunk={chunk}: fused checksum ledger diverged"
        );
        assert_eq!(
            tokens, solo.tokens,
            "{label}/chunk={chunk}: continuation tokens diverged from solo generate"
        );
        assert_eq!(
            margins, solo.margins,
            "{label}/chunk={chunk}: continuation margins diverged from solo generate"
        );
    }
}

#[test]
fn chunked_prefill_is_bit_identical_on_every_backend_and_tp_degree() {
    for kind in EngineKind::ALL {
        for tp in [1usize, 3] {
            let mut config = ModelConfig::tiny_llama();
            config.engine = kind;
            config.max_seq_len = 96;
            let mut model = Model::new(&config, 11).unwrap();
            model.set_tensor_parallel(tp);
            assert_chunk_parity(&model, &format!("tiny_llama/{kind}/tp{tp}"));
        }
    }
}

#[test]
fn chunked_prefill_parity_holds_for_the_opt_architecture() {
    // The cross product above runs on the Llama-style block; one dense spot check keeps
    // the OPT-style block (different MLP and norm placement) honest too.
    let mut config = ModelConfig::tiny_opt();
    config.engine = EngineKind::Parallel;
    config.max_seq_len = 96;
    let mut model = Model::new(&config, 13).unwrap();
    model.set_tensor_parallel(3);
    assert_chunk_parity(&model, "tiny_opt/parallel/tp3");
}

/// Corrupts one accumulator row of the *second* prefill chunk the target slot runs — a
/// mid-prompt chunk, after the cache already holds a prefix — as ground truth for
/// chunk-window fault attribution.
struct CorruptSecondChunk {
    target_slot: usize,
    chunks_seen: usize,
    armed_row: Option<usize>,
    done: bool,
}

impl CorruptSecondChunk {
    fn new(target_slot: usize) -> Self {
        Self {
            target_slot,
            chunks_seen: 0,
            armed_row: None,
            done: false,
        }
    }
}

impl GemmHook for CorruptSecondChunk {
    fn on_gemm(&mut self, _: &GemmContext, _: &MatI8, _: &MatI8, _: &mut MatI32) {}

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        _w: &MatI8,
        _x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        if self.done || !matches!(ctx.origin, GemmOrigin::BatchedRows) {
            return;
        }
        let Some(row) = self.armed_row else { return };
        let acc = result.acc_mut();
        acc[(row, 0)] = acc[(row, 0)].wrapping_add(1 << 21);
        self.done = true;
    }

    fn wants_checksums(&self) -> bool {
        false
    }

    fn on_batch_begin(&mut self, partition: &RowPartition) {
        if self.done || self.armed_row.is_some() {
            return;
        }
        // Decode steps announce 1-row groups; a multi-row group on the target slot is
        // one of its prefill chunks.
        let range = partition.range(self.target_slot);
        if range.len() >= 2 {
            self.chunks_seen += 1;
            if self.chunks_seen == 2 {
                self.armed_row = Some(range.start);
            }
        }
    }
}

#[test]
fn fault_in_a_mid_prompt_chunk_is_charged_to_the_owning_request() {
    let mut config = ModelConfig::tiny_opt();
    config.engine = EngineKind::Parallel;
    config.max_seq_len = 96;
    let model = Model::new(&config, 17).unwrap();

    // Slot 0: a short request already decoding. Slot 1: a 16-token prompt that chunks
    // under the 4-token step budget; the corruptor strikes its second chunk.
    let short_prompt = vec![1u32, 2, 3];
    let long_prompt: Vec<u32> = (0..16u32).map(|t| (t * 3 + 1) % 64).collect();
    let mut engine = ServeEngine::new(
        &model,
        ServeConfig {
            slots: 2,
            step_token_budget: 4,
            ..ServeConfig::default()
        },
    )
    .with_fault_hook(Box::new(CorruptSecondChunk::new(1)));

    let (_, rx_short) = engine
        .submit(
            ServeRequest::new(short_prompt.clone(), 8).with_policy(ProtectionPolicy::classical()),
        )
        .unwrap();
    let (_, rx_long) = engine
        .submit(
            ServeRequest::new(long_prompt.clone(), 4).with_policy(ProtectionPolicy::classical()),
        )
        .unwrap();
    engine.run_until_idle().unwrap();

    let done = |rx: &std::sync::mpsc::Receiver<TokenEvent>| {
        rx.try_iter()
            .find_map(|e| match e {
                TokenEvent::Done(summary) => Some(summary),
                TokenEvent::Token { .. } => None,
            })
            .expect("request completes")
    };
    let short_done = done(&rx_short);
    let long_done = done(&rx_long);

    assert!(
        long_done.attribution.detections >= 1,
        "the mid-chunk fault must be detected and charged to the long request: {:?}",
        long_done.attribution
    );
    assert_eq!(
        long_done.attribution.detections, long_done.attribution.recoveries,
        "classical ABFT recovers everything it detects"
    );
    assert_eq!(
        short_done.attribution.detections, 0,
        "the short request shares the protector but none of the corrupted rows: {:?}",
        short_done.attribution
    );

    // Recovery means the corrupted chunk still produced clean numbers downstream.
    let solo_short = model.generate(&short_prompt, 8, &mut NoopHook).unwrap();
    let solo_long = model.generate(&long_prompt, 4, &mut NoopHook).unwrap();
    assert_eq!(short_done.tokens, solo_short.tokens);
    assert_eq!(long_done.tokens, solo_long.tokens);
    assert_eq!(long_done.margins, solo_long.margins);
}
