//! Cross-crate property-based tests: invariants that must hold for arbitrary operands, fault
//! patterns and sweep parameters.
//!
//! These were originally written with `proptest`; the offline build environment cannot fetch
//! it, so the same properties are exercised with deterministic seeded sampling: every case
//! draws its inputs from a `ChaCha8`-seeded RNG, so failures reproduce exactly.

use rand::Rng;
use realm::abft::detector::AbftDetector;
use realm::abft::{checksum, ApproxAbft, ClassicalAbft, CriticalRegion, StatisticalAbft};
use realm::inject::{error_model::ErrorModel, error_model::MagFreqModel, VoltageBerCurve};
use realm::systolic::{Dataflow, EnergyModel, SystolicArray};
use realm::tensor::engine::{GemmEngine, ReferenceEngine};
use realm::tensor::rng::SeededRng;
use realm::tensor::{gemm, quant, rng, MatF32, MatI8, SimdEngine, SimdParallelEngine};

const CASES: usize = 48;

fn arb_operands(r: &mut SeededRng, max_dim: usize) -> (MatI8, MatI8) {
    let m = r.gen_range(2..max_dim);
    let k = r.gen_range(2..max_dim);
    let n = r.gen_range(2..max_dim);
    let w = MatI8::from_fn(m, k, |_, _| r.gen_range(-60i8..=60));
    let x = MatI8::from_fn(k, n, |_, _| r.gen_range(-60i8..=60));
    (w, x)
}

/// Every construction of the SIMD microkernel backend, AVX2-dispatched and portable alike.
fn simd_engines() -> Vec<Box<dyn GemmEngine>> {
    vec![
        Box::new(SimdEngine::new()),
        Box::new(SimdEngine::portable()),
        Box::new(SimdParallelEngine::new()),
        Box::new(SimdParallelEngine::portable()),
        Box::new(SimdParallelEngine::with_threads(3)),
    ]
}

/// Asserts accumulator and fused checksums of every SIMD engine are bit-identical to the
/// scalar oracle on the given operands.
fn assert_simd_matches_reference(a: &MatI8, b: &MatI8, context: &str) {
    let oracle = ReferenceEngine.gemm_i8_checksummed_two_pass(a, b).unwrap();
    for engine in simd_engines() {
        assert_eq!(
            engine.gemm_i8(a, b).unwrap(),
            *oracle.acc(),
            "{} accumulator diverged: {context}",
            engine.name()
        );
        let fused = engine.gemm_i8_checksummed(a, b).unwrap();
        assert_eq!(
            fused.acc(),
            oracle.acc(),
            "{} checksummed accumulator diverged: {context}",
            engine.name()
        );
        assert_eq!(
            fused.expected(),
            oracle.expected(),
            "{} expected checksum diverged: {context}",
            engine.name()
        );
        assert_eq!(
            fused.observed(),
            oracle.observed(),
            "{} observed checksum diverged: {context}",
            engine.name()
        );
    }
}

/// The SIMD microkernel is bit-identical to the scalar oracle on random full-range
/// operands over shapes drawn to straddle every dispatch edge: depth pairs (odd/even `k`),
/// the 16-column SIMD width, the 4-row register tile, and the parallel-dispatch threshold.
#[test]
fn simd_backend_matches_reference_on_random_operands() {
    let mut r = rng::seeded(0xB1);
    for case in 0..CASES {
        let m = r.gen_range(1usize..40);
        let k = r.gen_range(1usize..70);
        let n = r.gen_range(1usize..70);
        let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
        let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
        assert_simd_matches_reference(&a, &b, &format!("case {case}: {m}x{k}x{n}"));
    }
}

/// Adversarial rail patterns: every operand element at an INT8 extreme, in the layouts
/// that break the `pmaddubsw` offset trick (`i8::MIN` pairs whose offset products saturate
/// i16) — the widening kernel must stay exact on all of them.
#[test]
fn simd_backend_is_exact_on_saturating_rail_patterns() {
    type FillFn = fn(usize, usize) -> i8;
    let fills: [(&str, FillFn); 5] = [
        ("all MIN", |_, _| i8::MIN),
        ("all MAX", |_, _| i8::MAX),
        ("column-alternating MIN/MAX", |_, c| {
            if c % 2 == 0 {
                i8::MIN
            } else {
                i8::MAX
            }
        }),
        ("row-alternating MIN/MAX", |r, _| {
            if r % 2 == 0 {
                i8::MIN
            } else {
                i8::MAX
            }
        }),
        ("checkerboard", |r, c| {
            if (r + c) % 2 == 0 {
                i8::MIN
            } else {
                i8::MAX
            }
        }),
    ];
    // Depths straddle the pair width (odd/even) and the shapes straddle the 16-column and
    // 4-row tile boundaries.
    for &(m, k, n) in &[(4, 64, 32), (5, 33, 17), (3, 2, 16), (7, 127, 48)] {
        for (name_a, fill_a) in fills {
            for (name_b, fill_b) in fills {
                let a = MatI8::from_fn(m, k, fill_a);
                let b = MatI8::from_fn(k, n, fill_b);
                assert_simd_matches_reference(
                    &a,
                    &b,
                    &format!("{m}x{k}x{n}, A = {name_a}, B = {name_b}"),
                );
            }
        }
    }
}

/// Depths that are not a multiple of the SIMD pair width (and widths not a multiple of the
/// 16-column tile) exercise the zero-padded depth tail and the portable column tail.
#[test]
fn simd_backend_handles_non_multiple_simd_widths() {
    let mut r = rng::seeded(0xB2);
    for k in [1usize, 2, 3, 5, 15, 16, 17, 31, 32, 33, 63, 65] {
        for n in [1usize, 7, 15, 16, 17, 48, 49] {
            let m = r.gen_range(1usize..9);
            let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
            let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
            assert_simd_matches_reference(&a, &b, &format!("{m}x{k}x{n}"));
        }
    }
}

/// Degenerate 1×N and N×1 shapes (single-row activations, single-column projections) hit
/// the row-tail tiles and single-lane stores.
#[test]
fn simd_backend_handles_degenerate_vector_shapes() {
    let mut r = rng::seeded(0xB3);
    for &(m, k, n) in &[
        (1, 64, 300),
        (1, 1, 17),
        (300, 64, 1),
        (1, 257, 1),
        (2, 1, 1),
        (1, 16, 16),
    ] {
        let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
        let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
        assert_simd_matches_reference(&a, &b, &format!("{m}x{k}x{n}"));
    }
}

/// Classical ABFT detects every single additive error, wherever it lands and whatever its
/// magnitude.
#[test]
fn classical_abft_detects_any_single_error() {
    let mut r = rng::seeded(0xA1);
    for _ in 0..CASES {
        let (w, x) = arb_operands(&mut r, 12);
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        let row = r.gen_range(0..acc.rows());
        let col = r.gen_range(0..acc.cols());
        let bit = r.gen_range(0u8..31);
        acc[(row, col)] ^= 1 << bit;
        let verdict = ClassicalAbft::new().inspect(&w, &x, &acc);
        assert!(verdict.trigger_recovery, "bit {bit} at ({row}, {col})");
        assert!(verdict.errors_detected);
    }
}

/// The checksum identity holds for every fault-free GEMM: all deviations are zero.
#[test]
fn clean_gemms_have_zero_deviations() {
    let mut r = rng::seeded(0xA2);
    for _ in 0..CASES {
        let (w, x) = arb_operands(&mut r, 12);
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        let deviations = checksum::column_deviations(&w, &x, &acc);
        assert!(deviations.iter().all(|&d| d == 0));
        assert_eq!(checksum::msd(&deviations), 0);
        assert!(!ClassicalAbft::new().inspect(&w, &x, &acc).trigger_recovery);
        assert!(
            !ApproxAbft::paper_default()
                .inspect(&w, &x, &acc)
                .trigger_recovery
        );
        assert!(
            !StatisticalAbft::resilient()
                .inspect(&w, &x, &acc)
                .trigger_recovery
        );
    }
}

/// The MSD reported by every detector equals the sum of the injected additive errors.
#[test]
fn msd_equals_sum_of_injected_errors() {
    let mut r = rng::seeded(0xA3);
    for _ in 0..CASES {
        let (w, x) = arb_operands(&mut r, 10);
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        let mut expected_msd: i64 = 0;
        for _ in 0..r.gen_range(1..6) {
            let row = r.gen_range(0..acc.rows());
            let col = r.gen_range(0..acc.cols());
            let delta = r.gen_range(-1_000_000i64..1_000_000);
            acc[(row, col)] = acc[(row, col)].wrapping_add(delta as i32);
            expected_msd += delta;
        }
        let verdict = ApproxAbft::paper_default().inspect(&w, &x, &acc);
        assert_eq!(verdict.msd, expected_msd);
    }
}

/// The MagFreq error model produces exactly the MSD it promises.
#[test]
fn magfreq_model_msd_matches_definition() {
    let mut r = rng::seeded(0xA4);
    for _ in 0..CASES {
        let log2_mag = r.gen_range(4u32..24);
        let freq = r.gen_range(1usize..16);
        let seed = r.gen_range(0u64..1000);
        let model = MagFreqModel::new(1i64 << log2_mag, freq);
        let mut acc = realm::tensor::MatI32::zeros(16, 16);
        let mut trial_rng = rng::seeded(seed);
        let injected = model.corrupt(&mut trial_rng, &mut acc);
        assert_eq!(injected, freq.min(256));
        let sum: i64 = acc.iter().map(|&v| v as i64).sum();
        assert_eq!(sum, model.mag * injected as i64);
    }
}

/// Symmetric quantization round-trips within half a quantization step.
#[test]
fn quantization_roundtrip_error_is_bounded() {
    let mut r = rng::seeded(0xA5);
    for _ in 0..CASES {
        let cols = r.gen_range(4usize..64);
        let values: Vec<f32> = (0..cols).map(|_| r.gen_range(-100.0f32..100.0)).collect();
        let x = MatF32::from_vec(1, cols, values).unwrap();
        let (q, scale) = quant::quantize_symmetric(&x);
        let back = quant::dequantize(&q, scale);
        let bound = quant::max_quantization_error(scale) + 1e-5;
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }
}

/// The statistical detector is monotone in its frequency threshold: raising θ_freq can only
/// remove recoveries, never add them.
#[test]
fn statistical_detector_is_monotone_in_theta_freq() {
    let mut r = rng::seeded(0xA6);
    for _ in 0..CASES {
        let (w, x) = arb_operands(&mut r, 10);
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        for _ in 0..r.gen_range(1..10) {
            let row = r.gen_range(0..acc.rows());
            let col = r.gen_range(0..acc.cols());
            let bit = r.gen_range(10u8..28);
            acc[(row, col)] ^= 1i32 << bit;
        }
        let theta_low = r.gen_range(0.0f64..3.0);
        let theta_gap = r.gen_range(0.5f64..4.0);
        let strict = StatisticalAbft::new(CriticalRegion::new(1.8, 26.0, theta_low));
        let relaxed = StatisticalAbft::new(CriticalRegion::new(1.8, 26.0, theta_low + theta_gap));
        let strict_verdict = strict.inspect(&w, &x, &acc);
        let relaxed_verdict = relaxed.inspect(&w, &x, &acc);
        assert!(
            !relaxed_verdict.trigger_recovery || strict_verdict.trigger_recovery,
            "relaxing θ_freq must never introduce a recovery"
        );
    }
}

/// The voltage→BER curve is monotone (lower voltage, more errors) and its inverse is
/// consistent.
#[test]
fn voltage_ber_curve_is_monotone() {
    let mut r = rng::seeded(0xA7);
    for _ in 0..CASES {
        let v1 = r.gen_range(0.5f64..0.9);
        let dv = r.gen_range(0.001f64..0.3);
        let curve = VoltageBerCurve::default_14nm();
        let low = curve.ber_at(v1);
        let high = curve.ber_at(v1 + dv);
        assert!(low >= high);
        let v = curve.voltage_for_ber(low.max(1e-9));
        assert!(curve.ber_at(v) <= low.max(1e-9) * 1.0001);
    }
}

/// Energy accounting: recovery work only ever adds energy, and undervolting the main
/// computation never increases its energy.
#[test]
fn energy_model_is_monotone() {
    let mut r = rng::seeded(0xA8);
    for _ in 0..CASES {
        let macs = r.gen_range(1u64..10_000_000);
        let recovery_macs = r.gen_range(0u64..1_000_000);
        let voltage = r.gen_range(0.55f64..0.9);
        let model = EnergyModel::default_14nm();
        let base = model.compute_energy_j(macs, voltage);
        let nominal = model.compute_energy_j(macs, 0.9);
        assert!(base <= nominal + 1e-18);
        let with_recovery = model.workload_energy(&realm::systolic::energy::WorkloadSpec {
            macs,
            voltage,
            detection_power_fraction: 0.015,
            recovery_macs,
            recovery_voltage: 0.9,
        });
        assert!(with_recovery.total_j() >= base);
    }
}

/// GEMM scheduling covers all MACs regardless of shape and never reports zero cycles.
#[test]
fn systolic_schedule_is_consistent() {
    let mut r = rng::seeded(0xA9);
    for _ in 0..CASES {
        let m = r.gen_range(1usize..300);
        let k = r.gen_range(1usize..300);
        let n = r.gen_range(1usize..300);
        let array = SystolicArray::small(Dataflow::WeightStationary);
        let schedule = array.schedule_gemm(m, k, n);
        assert_eq!(schedule.macs, (m * k * n) as u64);
        assert!(schedule.cycles > 0);
        assert!(schedule.utilization(&array) <= 1.0 + 1e-9);
        let os = SystolicArray::small(Dataflow::OutputStationary).schedule_gemm(m, k, n);
        assert_eq!(os.macs, schedule.macs);
    }
}
