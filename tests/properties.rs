//! Cross-crate property-based tests: invariants that must hold for arbitrary operands, fault
//! patterns and sweep parameters.
//!
//! These were originally written with `proptest`; the offline build environment cannot fetch
//! it, so the same properties are exercised with deterministic seeded sampling: every case
//! draws its inputs from a `ChaCha8`-seeded RNG, so failures reproduce exactly.

use rand::Rng;
use realm::abft::detector::AbftDetector;
use realm::abft::{checksum, ApproxAbft, ClassicalAbft, CriticalRegion, StatisticalAbft};
use realm::inject::{error_model::ErrorModel, error_model::MagFreqModel, VoltageBerCurve};
use realm::systolic::{Dataflow, EnergyModel, SystolicArray};
use realm::tensor::rng::SeededRng;
use realm::tensor::{gemm, quant, rng, MatF32, MatI8};

const CASES: usize = 48;

fn arb_operands(r: &mut SeededRng, max_dim: usize) -> (MatI8, MatI8) {
    let m = r.gen_range(2..max_dim);
    let k = r.gen_range(2..max_dim);
    let n = r.gen_range(2..max_dim);
    let w = MatI8::from_fn(m, k, |_, _| r.gen_range(-60i8..=60));
    let x = MatI8::from_fn(k, n, |_, _| r.gen_range(-60i8..=60));
    (w, x)
}

/// Classical ABFT detects every single additive error, wherever it lands and whatever its
/// magnitude.
#[test]
fn classical_abft_detects_any_single_error() {
    let mut r = rng::seeded(0xA1);
    for _ in 0..CASES {
        let (w, x) = arb_operands(&mut r, 12);
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        let row = r.gen_range(0..acc.rows());
        let col = r.gen_range(0..acc.cols());
        let bit = r.gen_range(0u8..31);
        acc[(row, col)] ^= 1 << bit;
        let verdict = ClassicalAbft::new().inspect(&w, &x, &acc);
        assert!(verdict.trigger_recovery, "bit {bit} at ({row}, {col})");
        assert!(verdict.errors_detected);
    }
}

/// The checksum identity holds for every fault-free GEMM: all deviations are zero.
#[test]
fn clean_gemms_have_zero_deviations() {
    let mut r = rng::seeded(0xA2);
    for _ in 0..CASES {
        let (w, x) = arb_operands(&mut r, 12);
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        let deviations = checksum::column_deviations(&w, &x, &acc);
        assert!(deviations.iter().all(|&d| d == 0));
        assert_eq!(checksum::msd(&deviations), 0);
        assert!(!ClassicalAbft::new().inspect(&w, &x, &acc).trigger_recovery);
        assert!(
            !ApproxAbft::paper_default()
                .inspect(&w, &x, &acc)
                .trigger_recovery
        );
        assert!(
            !StatisticalAbft::resilient()
                .inspect(&w, &x, &acc)
                .trigger_recovery
        );
    }
}

/// The MSD reported by every detector equals the sum of the injected additive errors.
#[test]
fn msd_equals_sum_of_injected_errors() {
    let mut r = rng::seeded(0xA3);
    for _ in 0..CASES {
        let (w, x) = arb_operands(&mut r, 10);
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        let mut expected_msd: i64 = 0;
        for _ in 0..r.gen_range(1..6) {
            let row = r.gen_range(0..acc.rows());
            let col = r.gen_range(0..acc.cols());
            let delta = r.gen_range(-1_000_000i64..1_000_000);
            acc[(row, col)] = acc[(row, col)].wrapping_add(delta as i32);
            expected_msd += delta;
        }
        let verdict = ApproxAbft::paper_default().inspect(&w, &x, &acc);
        assert_eq!(verdict.msd, expected_msd);
    }
}

/// The MagFreq error model produces exactly the MSD it promises.
#[test]
fn magfreq_model_msd_matches_definition() {
    let mut r = rng::seeded(0xA4);
    for _ in 0..CASES {
        let log2_mag = r.gen_range(4u32..24);
        let freq = r.gen_range(1usize..16);
        let seed = r.gen_range(0u64..1000);
        let model = MagFreqModel::new(1i64 << log2_mag, freq);
        let mut acc = realm::tensor::MatI32::zeros(16, 16);
        let mut trial_rng = rng::seeded(seed);
        let injected = model.corrupt(&mut trial_rng, &mut acc);
        assert_eq!(injected, freq.min(256));
        let sum: i64 = acc.iter().map(|&v| v as i64).sum();
        assert_eq!(sum, model.mag * injected as i64);
    }
}

/// Symmetric quantization round-trips within half a quantization step.
#[test]
fn quantization_roundtrip_error_is_bounded() {
    let mut r = rng::seeded(0xA5);
    for _ in 0..CASES {
        let cols = r.gen_range(4usize..64);
        let values: Vec<f32> = (0..cols).map(|_| r.gen_range(-100.0f32..100.0)).collect();
        let x = MatF32::from_vec(1, cols, values).unwrap();
        let (q, scale) = quant::quantize_symmetric(&x);
        let back = quant::dequantize(&q, scale);
        let bound = quant::max_quantization_error(scale) + 1e-5;
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }
}

/// The statistical detector is monotone in its frequency threshold: raising θ_freq can only
/// remove recoveries, never add them.
#[test]
fn statistical_detector_is_monotone_in_theta_freq() {
    let mut r = rng::seeded(0xA6);
    for _ in 0..CASES {
        let (w, x) = arb_operands(&mut r, 10);
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        for _ in 0..r.gen_range(1..10) {
            let row = r.gen_range(0..acc.rows());
            let col = r.gen_range(0..acc.cols());
            let bit = r.gen_range(10u8..28);
            acc[(row, col)] ^= 1i32 << bit;
        }
        let theta_low = r.gen_range(0.0f64..3.0);
        let theta_gap = r.gen_range(0.5f64..4.0);
        let strict = StatisticalAbft::new(CriticalRegion::new(1.8, 26.0, theta_low));
        let relaxed = StatisticalAbft::new(CriticalRegion::new(1.8, 26.0, theta_low + theta_gap));
        let strict_verdict = strict.inspect(&w, &x, &acc);
        let relaxed_verdict = relaxed.inspect(&w, &x, &acc);
        assert!(
            !relaxed_verdict.trigger_recovery || strict_verdict.trigger_recovery,
            "relaxing θ_freq must never introduce a recovery"
        );
    }
}

/// The voltage→BER curve is monotone (lower voltage, more errors) and its inverse is
/// consistent.
#[test]
fn voltage_ber_curve_is_monotone() {
    let mut r = rng::seeded(0xA7);
    for _ in 0..CASES {
        let v1 = r.gen_range(0.5f64..0.9);
        let dv = r.gen_range(0.001f64..0.3);
        let curve = VoltageBerCurve::default_14nm();
        let low = curve.ber_at(v1);
        let high = curve.ber_at(v1 + dv);
        assert!(low >= high);
        let v = curve.voltage_for_ber(low.max(1e-9));
        assert!(curve.ber_at(v) <= low.max(1e-9) * 1.0001);
    }
}

/// Energy accounting: recovery work only ever adds energy, and undervolting the main
/// computation never increases its energy.
#[test]
fn energy_model_is_monotone() {
    let mut r = rng::seeded(0xA8);
    for _ in 0..CASES {
        let macs = r.gen_range(1u64..10_000_000);
        let recovery_macs = r.gen_range(0u64..1_000_000);
        let voltage = r.gen_range(0.55f64..0.9);
        let model = EnergyModel::default_14nm();
        let base = model.compute_energy_j(macs, voltage);
        let nominal = model.compute_energy_j(macs, 0.9);
        assert!(base <= nominal + 1e-18);
        let with_recovery = model.workload_energy(&realm::systolic::energy::WorkloadSpec {
            macs,
            voltage,
            detection_power_fraction: 0.015,
            recovery_macs,
            recovery_voltage: 0.9,
        });
        assert!(with_recovery.total_j() >= base);
    }
}

/// GEMM scheduling covers all MACs regardless of shape and never reports zero cycles.
#[test]
fn systolic_schedule_is_consistent() {
    let mut r = rng::seeded(0xA9);
    for _ in 0..CASES {
        let m = r.gen_range(1usize..300);
        let k = r.gen_range(1usize..300);
        let n = r.gen_range(1usize..300);
        let array = SystolicArray::small(Dataflow::WeightStationary);
        let schedule = array.schedule_gemm(m, k, n);
        assert_eq!(schedule.macs, (m * k * n) as u64);
        assert!(schedule.cycles > 0);
        assert!(schedule.utilization(&array) <= 1.0 + 1e-9);
        let os = SystolicArray::small(Dataflow::OutputStationary).schedule_gemm(m, k, n);
        assert_eq!(os.macs, schedule.macs);
    }
}
