//! Cross-crate property-based tests: invariants that must hold for arbitrary operands, fault
//! patterns and sweep parameters.

use proptest::prelude::*;
use realm::abft::detector::AbftDetector;
use realm::abft::{checksum, ApproxAbft, ClassicalAbft, CriticalRegion, StatisticalAbft};
use realm::inject::{error_model::MagFreqModel, error_model::ErrorModel, VoltageBerCurve};
use realm::systolic::{Dataflow, EnergyModel, SystolicArray};
use realm::tensor::{gemm, quant, rng, MatF32, MatI8};

fn arb_operands(max_dim: usize) -> impl Strategy<Value = (MatI8, MatI8)> {
    (2..max_dim, 2..max_dim, 2..max_dim).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-60i8..=60, m * k),
            proptest::collection::vec(-60i8..=60, k * n),
        )
            .prop_map(move |(w, x)| {
                (
                    MatI8::from_vec(m, k, w).expect("matching length"),
                    MatI8::from_vec(k, n, x).expect("matching length"),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Classical ABFT detects every single additive error, wherever it lands and whatever
    /// its magnitude.
    #[test]
    fn classical_abft_detects_any_single_error(
        (w, x) in arb_operands(12),
        row_sel in 0usize..1000,
        col_sel in 0usize..1000,
        bit in 0u8..31,
    ) {
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        let r = row_sel % acc.rows();
        let c = col_sel % acc.cols();
        acc[(r, c)] ^= 1 << bit;
        let verdict = ClassicalAbft::new().inspect(&w, &x, &acc);
        prop_assert!(verdict.trigger_recovery);
        prop_assert!(verdict.errors_detected);
    }

    /// The checksum identity holds for every fault-free GEMM: all deviations are zero.
    #[test]
    fn clean_gemms_have_zero_deviations((w, x) in arb_operands(12)) {
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        let deviations = checksum::column_deviations(&w, &x, &acc);
        prop_assert!(deviations.iter().all(|&d| d == 0));
        prop_assert_eq!(checksum::msd(&deviations), 0);
        prop_assert!(!ClassicalAbft::new().inspect(&w, &x, &acc).trigger_recovery);
        prop_assert!(!ApproxAbft::paper_default().inspect(&w, &x, &acc).trigger_recovery);
        prop_assert!(!StatisticalAbft::resilient().inspect(&w, &x, &acc).trigger_recovery);
    }

    /// The MSD reported by every detector equals the sum of the injected additive errors.
    #[test]
    fn msd_equals_sum_of_injected_errors(
        (w, x) in arb_operands(10),
        errors in proptest::collection::vec((0usize..100, 0usize..100, -1_000_000i64..1_000_000), 1..6),
    ) {
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        let mut expected_msd: i64 = 0;
        for (r, c, delta) in &errors {
            let r = r % acc.rows();
            let c = c % acc.cols();
            acc[(r, c)] = acc[(r, c)].wrapping_add(*delta as i32);
            expected_msd += *delta;
        }
        let verdict = ApproxAbft::paper_default().inspect(&w, &x, &acc);
        prop_assert_eq!(verdict.msd, expected_msd);
    }

    /// The MagFreq error model produces exactly the MSD it promises.
    #[test]
    fn magfreq_model_msd_matches_definition(
        log2_mag in 4u32..24,
        freq in 1usize..16,
        seed in 0u64..1000,
    ) {
        let model = MagFreqModel::new(1i64 << log2_mag, freq);
        let mut acc = realm::tensor::MatI32::zeros(16, 16);
        let mut r = rng::seeded(seed);
        let injected = model.corrupt(&mut r, &mut acc);
        prop_assert_eq!(injected, freq.min(256));
        let sum: i64 = acc.iter().map(|&v| v as i64).sum();
        prop_assert_eq!(sum, model.mag * injected as i64);
    }

    /// Symmetric quantization round-trips within half a quantization step.
    #[test]
    fn quantization_roundtrip_error_is_bounded(
        values in proptest::collection::vec(-100.0f32..100.0, 4..64),
    ) {
        let cols = values.len();
        let x = MatF32::from_vec(1, cols, values).unwrap();
        let (q, scale) = quant::quantize_symmetric(&x);
        let back = quant::dequantize(&q, scale);
        let bound = quant::max_quantization_error(scale) + 1e-5;
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    /// The statistical detector is monotone in its frequency threshold: raising θ_freq can
    /// only remove recoveries, never add them.
    #[test]
    fn statistical_detector_is_monotone_in_theta_freq(
        (w, x) in arb_operands(10),
        errors in proptest::collection::vec((0usize..100, 0usize..100, 10u8..28), 1..10),
        theta_low in 0.0f64..3.0,
        theta_gap in 0.5f64..4.0,
    ) {
        let mut acc = gemm::gemm_i8(&w, &x).unwrap();
        for (r, c, bit) in &errors {
            let r = r % acc.rows();
            let c = c % acc.cols();
            acc[(r, c)] ^= 1i32 << bit;
        }
        let strict = StatisticalAbft::new(CriticalRegion::new(1.8, 26.0, theta_low));
        let relaxed = StatisticalAbft::new(CriticalRegion::new(1.8, 26.0, theta_low + theta_gap));
        let strict_verdict = strict.inspect(&w, &x, &acc);
        let relaxed_verdict = relaxed.inspect(&w, &x, &acc);
        prop_assert!(
            !(relaxed_verdict.trigger_recovery && !strict_verdict.trigger_recovery),
            "relaxing θ_freq must never introduce a recovery"
        );
    }

    /// The voltage→BER curve is monotone (lower voltage, more errors) and its inverse is
    /// consistent.
    #[test]
    fn voltage_ber_curve_is_monotone(v1 in 0.5f64..0.9, dv in 0.001f64..0.3) {
        let curve = VoltageBerCurve::default_14nm();
        let low = curve.ber_at(v1);
        let high = curve.ber_at(v1 + dv);
        prop_assert!(low >= high);
        let v = curve.voltage_for_ber(low.max(1e-9));
        prop_assert!(curve.ber_at(v) <= low.max(1e-9) * 1.0001);
    }

    /// Energy accounting: recovery work only ever adds energy, and undervolting the main
    /// computation never increases its energy.
    #[test]
    fn energy_model_is_monotone(
        macs in 1u64..10_000_000,
        recovery_macs in 0u64..1_000_000,
        voltage in 0.55f64..0.9,
    ) {
        let model = EnergyModel::default_14nm();
        let base = model.compute_energy_j(macs, voltage);
        let nominal = model.compute_energy_j(macs, 0.9);
        prop_assert!(base <= nominal + 1e-18);
        let with_recovery = model.workload_energy(&realm::systolic::energy::WorkloadSpec {
            macs,
            voltage,
            detection_power_fraction: 0.015,
            recovery_macs,
            recovery_voltage: 0.9,
        });
        prop_assert!(with_recovery.total_j() >= base);
    }

    /// GEMM scheduling covers all MACs regardless of shape and never reports zero cycles.
    #[test]
    fn systolic_schedule_is_consistent(m in 1usize..300, k in 1usize..300, n in 1usize..300) {
        let array = SystolicArray::small(Dataflow::WeightStationary);
        let schedule = array.schedule_gemm(m, k, n);
        prop_assert_eq!(schedule.macs, (m * k * n) as u64);
        prop_assert!(schedule.cycles > 0);
        prop_assert!(schedule.utilization(&array) <= 1.0 + 1e-9);
        let os = SystolicArray::small(Dataflow::OutputStationary).schedule_gemm(m, k, n);
        prop_assert_eq!(os.macs, schedule.macs);
    }
}
