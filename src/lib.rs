//! # realm
//!
//! Facade crate for the ReaLM reproduction: **Reliable and Efficient Large Language Model
//! Inference with Statistical Algorithm-Based Fault Tolerance** (DAC 2025).
//!
//! The workspace is organised as one crate per subsystem; this facade re-exports them under a
//! single dependency so examples, integration tests and downstream users can write
//! `use realm::...`:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `realm-tensor` | matrices, INT8 quantization, GEMM kernels |
//! | [`llm`] | `realm-llm` | quantized OPT/LLaMA-style transformer inference with GEMM hooks |
//! | [`inject`] | `realm-inject` | bit-flip / magnitude-frequency error injection, voltage→BER |
//! | [`systolic`] | `realm-systolic` | systolic-array model: dataflows, area/power, timing, energy |
//! | [`abft`] | `realm-abft` | classical, Approx and statistical ABFT detectors + recovery |
//! | [`eval`] | `realm-eval` | synthetic perplexity / accuracy / ROUGE tasks |
//! | [`core`] | `realm-core` | characterization, critical-region fitting, protected pipelines, sweeps |
//! | [`serve`] | `realm-serve` | continuous-batching serving: request queue, engine loop, token streams |
//! | [`net`] | `realm-net` | HTTP/1.1 front end, token-stream wire protocol, trace-driven load generator |
//!
//! # Quickstart
//!
//! ```
//! use realm::core::pipeline::{PipelineConfig, ProtectedPipeline};
//! use realm::eval::wikitext::WikitextTask;
//! use realm::llm::{config::ModelConfig, model::Model};
//! use realm::systolic::ProtectionScheme;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Build a synthetic quantized LLM (an OPT-1.3B-style proxy).
//! let model = Model::new(&ModelConfig::tiny_opt(), 42)?;
//!
//! // 2. Pick a task (synthetic WikiText-style perplexity).
//! let task = WikitextTask::quick(model.language(), 42);
//!
//! // 3. Run protected inference at a scaled supply voltage.
//! let pipeline = ProtectedPipeline::new(&model, PipelineConfig::default());
//! let outcome = pipeline.run(&task, ProtectionScheme::StatisticalAbft, 0.72, 7)?;
//! println!("perplexity {:.2} at {:.2} V using {:.2e} J",
//!          outcome.task_value, outcome.voltage, outcome.energy.total_j());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use realm_abft as abft;
pub use realm_core as core;
pub use realm_eval as eval;
pub use realm_inject as inject;
pub use realm_llm as llm;
pub use realm_net as net;
pub use realm_serve as serve;
pub use realm_systolic as systolic;
pub use realm_tensor as tensor;

/// The workspace version, shared by every crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
