//! Quantized linear layers and activation-by-activation GEMMs.
//!
//! Following the paper's setup (Sec. III-B), every GEMM's inputs are quantized to INT8 and
//! its results are accumulated in INT32. The INT32 accumulator is the error-injection and
//! ABFT-verification point, exposed through [`crate::hooks::GemmHook`]. After the hooks run,
//! the accumulator is converted back according to the component's [`OutputMode`]:
//!
//! * [`OutputMode::Float`] — de-quantize to f32 (components whose outputs feed normalization
//!   or non-linear functions, e.g. `O`, `FC2`, `Down`);
//! * [`OutputMode::RequantizedInt8`] — re-quantize to INT8 and de-quantize again (components
//!   whose outputs feed another quantized GEMM, e.g. `Q`, `K`, `V`). Re-quantization clips to
//!   ±127, which is why very-high-bit errors saturate for these components (Q1.2).

use crate::hooks::{GemmContext, GemmHook};
use crate::{LlmError, Result};
use realm_tensor::{
    quant, ChecksummedGemm, GemmEngine, MatF32, MatI8, PackedMatI8, QuantParams, RowPartition,
    ShardedLinear, TpGroup, Workspace,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How a quantized GEMM's INT32 accumulator is converted back for downstream computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputMode {
    /// De-quantize the accumulator to f32 without clipping.
    Float,
    /// Re-quantize the accumulator to INT8 (saturating at ±127), then de-quantize to f32 for
    /// the rest of the pipeline. Models components whose outputs are stored as INT8.
    RequantizedInt8,
}

/// A linear layer with INT8-quantized static weights.
///
/// The weights are held as a [`PackedMatI8`]: packed once into the SIMD engines'
/// interleaved tile order at construction (model load), with the `eᵀ·W` pack-time
/// checksums alongside — the load-time allocation that makes every decode-step GEMM
/// hit the packed kernels without touching the allocator. The row-major weights stay
/// reachable through [`QuantLinear::weight_q`] for hooks, workload accounting and
/// the engines that don't override the packed entry points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantLinear {
    weight: PackedMatI8,
    weight_scale: f32,
    output_mode: OutputMode,
    use_packed: bool,
    /// Tensor-parallel execution handle: when present, forwards run the weight's packed
    /// column stripes on the group's persistent ranks instead of the local engine (see
    /// [`QuantLinear::set_tensor_parallel`]). Execution state, not layer identity.
    tp: Option<ShardedLinear>,
}

impl QuantLinear {
    /// Quantizes a floating-point weight matrix of shape `(in_features, out_features)`
    /// and packs it for the decode-shape kernels.
    pub fn from_f32(weight: &MatF32, output_mode: OutputMode) -> Self {
        let (weight_q, weight_scale) = quant::quantize_symmetric(weight);
        Self {
            weight: PackedMatI8::from_mat(weight_q),
            weight_scale,
            output_mode,
            use_packed: true,
            tp: None,
        }
    }

    /// Input dimension of the layer.
    pub fn in_features(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension of the layer.
    pub fn out_features(&self) -> usize {
        self.weight.cols()
    }

    /// The quantized weights in row-major order (used by workload accounting and tests).
    pub fn weight_q(&self) -> &MatI8 {
        self.weight.unpacked()
    }

    /// The packed weights, including the pack-time `eᵀ·W` column checksums (used by the
    /// ABFT audit of the packed replica, see `realm-abft`'s `packed_weight_deviations`).
    pub fn packed_weight(&self) -> &PackedMatI8 {
        &self.weight
    }

    /// Scale of the quantized weights.
    pub fn weight_scale(&self) -> f32 {
        self.weight_scale
    }

    /// Output conversion mode.
    pub fn output_mode(&self) -> OutputMode {
        self.output_mode
    }

    /// Whether forwards route through the engine's packed entry points (the default) or
    /// the unpacked `gemm_i8*` path. Both are bit-identical; the switch exists for the
    /// packed-vs-unpacked benchmarks and differential tests. Sharded execution honours
    /// the same switch per rank.
    pub fn set_packing(&mut self, enabled: bool) {
        self.use_packed = enabled;
    }

    /// Shards this layer's weights column-wise over `group`'s persistent ranks
    /// (`Some`), or restores the unsharded single-device path (`None`).
    ///
    /// Sharding packs one column stripe per rank at call time — a load-time allocation,
    /// exactly like the original [`PackedMatI8`] pack — after which every forward
    /// scatters the activation once, runs the per-rank fused-checksum GEMMs in parallel
    /// and merges stripes and checksum segments back into the layout hooks already
    /// consume. Outputs, checksums and hook observations are bit-identical to the
    /// unsharded path (`tests/tp_parity.rs`).
    pub fn set_tensor_parallel(&mut self, group: Option<&Arc<TpGroup>>) {
        self.tp = group.map(|group| ShardedLinear::new(Arc::clone(group), self.weight.unpacked()));
    }

    /// The tensor-parallel execution handle, when sharded.
    pub fn tensor_parallel(&self) -> Option<&ShardedLinear> {
        self.tp.as_ref()
    }

    /// Computes `x · W` through the quantized INT8 → INT32 datapath of `engine`.
    ///
    /// `x` has shape `(tokens, in_features)`; the result has shape `(tokens, out_features)`.
    /// When a hook in the chain consumes checksums ([`GemmHook::wants_checksums`]) the GEMM
    /// runs through the engine's fused-checksum pass and the hook observes (and may mutate)
    /// the checksummed INT32 accumulator before conversion; otherwise the plain GEMM runs
    /// and the checksum reductions are skipped entirely.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols() != self.in_features()`.
    pub fn forward(
        &self,
        x: &MatF32,
        engine: &dyn GemmEngine,
        ctx: &GemmContext,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_ws(x, engine, ctx, hook, &mut ws)
    }

    /// [`QuantLinear::forward`] with every intermediate — the quantized activations, the
    /// INT32 accumulator, the fused checksums and the requantization scratch — checked out
    /// of `ws` instead of allocated per call. The returned matrix is workspace-pooled;
    /// recycle it once consumed. Output is bit-identical to [`QuantLinear::forward`].
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols() != self.in_features()`.
    pub fn forward_ws(
        &self,
        x: &MatF32,
        engine: &dyn GemmEngine,
        ctx: &GemmContext,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let mut xq = ws.take_mat_i8(x.rows(), x.cols());
        let mut scales = ws.take_vec_f32(x.rows());
        quantize_symmetric_rows_into(x, &mut xq, &mut scales);
        let acc = run_hooked_linear_gemm_ws(
            &xq,
            &self.weight,
            self.tp.as_ref(),
            self.use_packed,
            engine,
            ctx,
            hook,
            ws,
        );
        ws.recycle_mat_i8(xq);
        let acc = match acc {
            Ok(acc) => acc,
            Err(e) => {
                ws.recycle_vec_f32(scales);
                return Err(e);
            }
        };
        // Reuse the scale buffer in place for the combined (activation × weight) scales.
        for s in scales.iter_mut() {
            *s *= self.weight_scale;
        }
        let mut out = ws.take_mat_f32(acc.rows(), acc.cols());
        let mut mags = ws.take_vec_f32(mags_len(&acc, self.output_mode));
        convert_accumulator_rows_into(&acc, &scales, self.output_mode, &mut out, &mut mags);
        ws.recycle_vec_f32(mags);
        ws.recycle_vec_f32(scales);
        ws.recycle_mat_i32(acc);
        Ok(out)
    }

    /// Computes `x · W` for a batch-stacked activation matrix in **one** engine GEMM while
    /// keeping every per-sequence number bit-identical to [`QuantLinear::forward`] on that
    /// sequence alone.
    ///
    /// `x` holds the rows of every sequence in the batch, grouped by `parts`. Each row is
    /// quantized with its *own* symmetric scale — exactly what [`QuantLinear::forward`]
    /// does per row — so the grouping carries attribution metadata only and never touches
    /// the numerics. The stacked INT8 matrix runs through a single (optionally
    /// fused-checksum) GEMM — this is where checksum and detection cost amortise across
    /// the batch — and the INT32 accumulator is converted back per row, including the
    /// per-row robust requantization scale.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols() != self.in_features()` or if `parts` does not cover
    /// exactly `x.rows()` rows.
    pub fn forward_batched(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        engine: &dyn GemmEngine,
        ctx: &GemmContext,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_batched_ws(x, parts, engine, ctx, hook, &mut ws)
    }

    /// [`QuantLinear::forward_batched`] drawing every intermediate — including the
    /// per-row-group quantization scales and grouped requantization scratch — from `ws`.
    /// The returned matrix is workspace-pooled; output is bit-identical to
    /// [`QuantLinear::forward_batched`].
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols() != self.in_features()` or if `parts` does not cover
    /// exactly `x.rows()` rows.
    pub fn forward_batched_ws(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        engine: &dyn GemmEngine,
        ctx: &GemmContext,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        if parts.total_rows() != x.rows() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "row partition covers {} rows but the stacked matrix has {}",
                    parts.total_rows(),
                    x.rows()
                ),
            });
        }
        // Per-row quantization makes the batched path numerically identical to the solo
        // path row by row: the partition is attribution metadata for the hooks, nothing
        // more. This is also what makes chunked prefill bit-exact — a row's scale depends
        // on that row alone, never on which chunk (or batch) it happens to ride in.
        self.forward_ws(x, engine, ctx, hook, ws)
    }
}

/// Quantizes each row of `x` with its own symmetric scale, filling `scales` with one
/// scale per row.
///
/// Bit-identical to calling [`realm_tensor::quant::quantize_symmetric`] on each row in
/// isolation and stacking the results. Because a row's scale depends on that row alone,
/// the quantized codes are invariant to how rows are grouped into batches or prefill
/// chunks — the property the chunked-prefill parity contract (`tests/chunked_parity.rs`)
/// rests on. A single-row input degenerates to exactly the former per-tensor scale, so
/// the decode hot path is unchanged bit for bit.
pub fn quantize_symmetric_rows_into(x: &MatF32, q: &mut MatI8, scales: &mut Vec<f32>) {
    q.resize_reset(x.rows(), x.cols());
    scales.clear();
    scales.resize(x.rows(), 1.0);
    for (r, scale) in scales.iter_mut().enumerate() {
        let mut abs_max = 0.0f32;
        for &v in x.row(r) {
            abs_max = abs_max.max(v.abs());
        }
        let params = QuantParams::from_abs_max(abs_max);
        *scale = params.scale;
        for (qv, &v) in q.row_mut(r).iter_mut().zip(x.row(r)) {
            *qv = params.quantize(v);
        }
    }
}

/// Converts an INT32 accumulator back to f32 row by row, using `combined_scales[r]` for
/// row `r` (and, for [`OutputMode::RequantizedInt8`], a robust percentile-calibrated
/// output scale derived from that row's magnitudes alone).
///
/// The single-row counterpart of [`convert_accumulator_grouped_into`]: bit-identical to
/// converting each row's accumulator in isolation, so the conversion — like the per-row
/// quantization it pairs with — is invariant to batching and chunking.
///
/// # Panics
///
/// Panics if `combined_scales.len() != acc.rows()`.
pub fn convert_accumulator_rows_into(
    acc: &realm_tensor::MatI32,
    combined_scales: &[f32],
    mode: OutputMode,
    out: &mut MatF32,
    mags_scratch: &mut Vec<f32>,
) {
    assert_eq!(
        combined_scales.len(),
        acc.rows(),
        "one combined scale per accumulator row"
    );
    out.resize_reset(acc.rows(), acc.cols());
    for (r, &combined) in combined_scales.iter().enumerate() {
        convert_rows_into(acc, r..r + 1, combined, mode, out, mags_scratch);
    }
}

/// Quantizes each row group of `x` with its own symmetric per-group scale.
///
/// Bit-identical to calling [`realm_tensor::quant::quantize_symmetric`] on each group's rows
/// in isolation and stacking the results. The forward paths now quantize per *row*
/// ([`quantize_symmetric_rows_into`]); this grouped variant remains the oracle for
/// group-granular callers and tests. Empty groups get the neutral scale 1.0.
///
/// # Errors
///
/// Returns [`LlmError::InvalidSequence`] if `parts` does not cover exactly `x.rows()` rows.
pub fn quantize_symmetric_grouped(x: &MatF32, parts: &RowPartition) -> Result<(MatI8, Vec<f32>)> {
    let mut q = MatI8::zeros(0, 0);
    let mut scales = Vec::new();
    quantize_symmetric_grouped_into(x, parts, &mut q, &mut scales)?;
    Ok((q, scales))
}

/// [`quantize_symmetric_grouped`] into caller-provided storage (`q` and `scales` are
/// reshaped in place; output is bit-identical to the allocating path).
///
/// # Errors
///
/// Returns [`LlmError::InvalidSequence`] if `parts` does not cover exactly `x.rows()` rows.
pub fn quantize_symmetric_grouped_into(
    x: &MatF32,
    parts: &RowPartition,
    q: &mut MatI8,
    scales: &mut Vec<f32>,
) -> Result<()> {
    if parts.total_rows() != x.rows() {
        return Err(LlmError::InvalidSequence {
            detail: format!(
                "row partition covers {} rows but the stacked matrix has {}",
                parts.total_rows(),
                x.rows()
            ),
        });
    }
    q.resize_reset(x.rows(), x.cols());
    scales.clear();
    scales.resize(parts.num_groups(), 1.0);
    for (g, scale) in scales.iter_mut().enumerate() {
        let range = parts.range(g);
        if range.is_empty() {
            continue;
        }
        let mut abs_max = 0.0f32;
        for r in range.clone() {
            for &v in x.row(r) {
                abs_max = abs_max.max(v.abs());
            }
        }
        let params = QuantParams::from_abs_max(abs_max);
        *scale = params.scale;
        for r in range {
            for (qv, &v) in q.row_mut(r).iter_mut().zip(x.row(r)) {
                *qv = params.quantize(v);
            }
        }
    }
    Ok(())
}

/// Converts a batch-stacked INT32 accumulator back to f32 group by group.
///
/// Each group is converted with its own combined scale (and, for
/// [`OutputMode::RequantizedInt8`], its own robust percentile-calibrated output scale over
/// only that group's accumulator rows), so the result is bit-identical to converting each
/// sequence's accumulator in isolation.
///
/// # Errors
///
/// Returns [`LlmError::InvalidSequence`] if `parts` does not cover exactly `acc.rows()` rows
/// or `combined_scales` has the wrong length.
pub fn convert_accumulator_grouped(
    acc: &realm_tensor::MatI32,
    combined_scales: &[f32],
    mode: OutputMode,
    parts: &RowPartition,
) -> Result<MatF32> {
    let mut out = MatF32::zeros(0, 0);
    let mut mags = Vec::new();
    convert_accumulator_grouped_into(acc, combined_scales, mode, parts, &mut out, &mut mags)?;
    Ok(out)
}

/// [`convert_accumulator_grouped`] into caller-provided storage.
///
/// Each group's rows are converted directly into the matching rows of `out` (no
/// sub-matrix materialisation); `mags_scratch` holds the per-group robust-requantization
/// magnitudes, reused across groups. Output is bit-identical to the allocating path: the
/// per-group robust scale is derived from exactly the same magnitudes in the same
/// row-major order.
///
/// # Errors
///
/// Returns [`LlmError::InvalidSequence`] under the same conditions as
/// [`convert_accumulator_grouped`].
pub fn convert_accumulator_grouped_into(
    acc: &realm_tensor::MatI32,
    combined_scales: &[f32],
    mode: OutputMode,
    parts: &RowPartition,
    out: &mut MatF32,
    mags_scratch: &mut Vec<f32>,
) -> Result<()> {
    if parts.total_rows() != acc.rows() || combined_scales.len() != parts.num_groups() {
        return Err(LlmError::InvalidSequence {
            detail: format!(
                "row partition ({} rows, {} groups) inconsistent with accumulator ({} rows) \
                 or scales ({})",
                parts.total_rows(),
                parts.num_groups(),
                acc.rows(),
                combined_scales.len()
            ),
        });
    }
    out.resize_reset(acc.rows(), acc.cols());
    for (g, &combined) in combined_scales.iter().enumerate() {
        let range = parts.range(g);
        if range.is_empty() {
            continue;
        }
        convert_rows_into(acc, range, combined, mode, out, mags_scratch);
    }
    Ok(())
}

/// Converts the accumulator rows `range` into the same rows of `out` under `mode`.
///
/// The elementwise arithmetic matches [`convert_accumulator`] exactly: the requantized
/// path rounds/clamps to the INT8 code and multiplies back by the output scale, fused into
/// one pass instead of materialising the intermediate INT8 matrix.
fn convert_rows_into(
    acc: &realm_tensor::MatI32,
    range: std::ops::Range<usize>,
    combined_scale: f32,
    mode: OutputMode,
    out: &mut MatF32,
    mags_scratch: &mut Vec<f32>,
) {
    match mode {
        OutputMode::Float => {
            for r in range {
                for (o, &v) in out.row_mut(r).iter_mut().zip(acc.row(r)) {
                    *o = v as f32 * combined_scale;
                }
            }
        }
        OutputMode::RequantizedInt8 => {
            let out_scale =
                robust_output_scale_rows(acc, range.clone(), combined_scale, mags_scratch);
            let out_scale = if out_scale > 0.0 && out_scale.is_finite() {
                out_scale
            } else {
                1.0
            };
            for r in range {
                for (o, &v) in out.row_mut(r).iter_mut().zip(acc.row(r)) {
                    let real = v as f32 * combined_scale;
                    let q = (real / out_scale).round().clamp(-127.0, 127.0) as i8;
                    *o = q as f32 * out_scale;
                }
            }
        }
    }
}

/// Computes `a · b` for two floating-point activation matrices through the quantized datapath
/// of `engine`.
///
/// Used for the attention-internal GEMMs (`QKᵀ` and `SV`) where both operands are activations.
///
/// # Errors
///
/// Returns an error if `a.cols() != b.rows()`.
pub fn quant_matmul(
    a: &MatF32,
    b: &MatF32,
    engine: &dyn GemmEngine,
    ctx: &GemmContext,
    hook: &mut dyn GemmHook,
    output_mode: OutputMode,
) -> Result<MatF32> {
    let mut ws = Workspace::new();
    quant_matmul_ws(a, b, engine, ctx, hook, output_mode, &mut ws)
}

/// [`quant_matmul`] drawing every intermediate from `ws`; the returned matrix is
/// workspace-pooled and the output is bit-identical to [`quant_matmul`].
///
/// # Errors
///
/// Returns an error if `a.cols() != b.rows()`.
#[allow(clippy::too_many_arguments)] // mirrors quant_matmul plus the workspace handle
pub fn quant_matmul_ws(
    a: &MatF32,
    b: &MatF32,
    engine: &dyn GemmEngine,
    ctx: &GemmContext,
    hook: &mut dyn GemmHook,
    output_mode: OutputMode,
    ws: &mut Workspace,
) -> Result<MatF32> {
    let mut aq = ws.take_mat_i8(a.rows(), a.cols());
    let a_scale = quant::quantize_symmetric_into(a, &mut aq);
    let mut bq = ws.take_mat_i8(b.rows(), b.cols());
    let b_scale = quant::quantize_symmetric_into(b, &mut bq);
    let acc = run_hooked_gemm_ws(&aq, &bq, engine, ctx, hook, ws);
    ws.recycle_mat_i8(aq);
    ws.recycle_mat_i8(bq);
    let acc = acc?;
    let mut out = ws.take_mat_f32(acc.rows(), acc.cols());
    let mut mags = ws.take_vec_f32(mags_len(&acc, output_mode));
    convert_accumulator_into(&acc, a_scale * b_scale, output_mode, &mut out, &mut mags);
    ws.recycle_vec_f32(mags);
    ws.recycle_mat_i32(acc);
    Ok(out)
}

/// [`run_hooked_gemm_ws`] for the static-weight layers: routes through the engine's
/// `gemm_i8_packed*` entry points when packing is enabled, falling back to the unpacked
/// path (on [`PackedMatI8::unpacked`]) when it is not. When the layer is tensor-parallel
/// sharded, the GEMM instead runs on the group's persistent ranks and the merged result
/// lands in the same workspace-pooled destination. Hooks always observe the row-major
/// weights and the *merged* accumulator/checksums — sharding, like the packed tiles, is
/// an execution detail the detection and injection layers never see. Bit-identical on
/// every route.
#[allow(clippy::too_many_arguments)] // mirrors run_hooked_gemm_ws plus the routing switches
fn run_hooked_linear_gemm_ws(
    aq: &MatI8,
    weight: &PackedMatI8,
    tp: Option<&ShardedLinear>,
    use_packed: bool,
    engine: &dyn GemmEngine,
    ctx: &GemmContext,
    hook: &mut dyn GemmHook,
    ws: &mut Workspace,
) -> Result<realm_tensor::MatI32> {
    if hook.wants_checksums() {
        let acc = ws.take_mat_i32(aq.rows(), weight.cols());
        let expected = ws.take_vec_i64(weight.cols());
        let observed = ws.take_vec_i64(weight.cols());
        let mut result = ChecksummedGemm::from_parts(acc, expected, observed);
        let mut etw = ws.take_vec_i64(aq.cols());
        let ran = if let Some(tp) = tp {
            tp.gemm_checksummed_into(aq, use_packed, &mut result)
        } else if use_packed {
            engine.gemm_i8_packed_checksummed_into(aq, weight, &mut result, &mut etw)
        } else {
            engine.gemm_i8_checksummed_into(aq, weight.unpacked(), &mut result, &mut etw)
        };
        ws.recycle_vec_i64(etw);
        if let Err(e) = ran {
            let (acc, expected, observed) = result.into_parts();
            ws.recycle_mat_i32(acc);
            ws.recycle_vec_i64(expected);
            ws.recycle_vec_i64(observed);
            return Err(e.into());
        }
        hook.on_gemm_checksummed(ctx, aq, weight.unpacked(), &mut result);
        let (acc, expected, observed) = result.into_parts();
        ws.recycle_vec_i64(expected);
        ws.recycle_vec_i64(observed);
        Ok(acc)
    } else {
        let mut acc = ws.take_mat_i32(aq.rows(), weight.cols());
        let ran = if let Some(tp) = tp {
            tp.gemm_into(aq, use_packed, &mut acc)
        } else if use_packed {
            engine.gemm_i8_packed_into(aq, weight, &mut acc)
        } else {
            engine.gemm_i8_into(aq, weight.unpacked(), &mut acc)
        };
        if let Err(e) = ran {
            ws.recycle_mat_i32(acc);
            return Err(e.into());
        }
        hook.on_gemm(ctx, aq, weight.unpacked(), &mut acc);
        Ok(acc)
    }
}

/// Executes one quantized GEMM through the engine and hook, picking the fused-checksum pass
/// only when a hook in the chain will consume the checksums ([`GemmHook::wants_checksums`]).
/// Fault-free baselines, unprotected runs and injection-only campaigns therefore skip the
/// checksum reductions entirely.
///
/// This is the activation×activation path (attention's `QKᵀ` and `SV` via
/// [`quant_matmul_ws`]): both operands are produced fresh every step, so there is nothing
/// to pre-pack — packing here would itself re-stream the operand per GEMM and would need
/// hot-loop scratch, exactly what [`PackedMatI8`] exists to avoid for static weights.
///
/// The accumulator, the checksum vectors of the fused pass and the operand-checksum
/// scratch all come from `ws`; the returned accumulator is workspace-pooled. This is the
/// innermost allocation-free step of the decode hot loop.
fn run_hooked_gemm_ws(
    wq: &MatI8,
    xq: &MatI8,
    engine: &dyn GemmEngine,
    ctx: &GemmContext,
    hook: &mut dyn GemmHook,
    ws: &mut Workspace,
) -> Result<realm_tensor::MatI32> {
    if hook.wants_checksums() {
        let acc = ws.take_mat_i32(wq.rows(), xq.cols());
        let expected = ws.take_vec_i64(xq.cols());
        let observed = ws.take_vec_i64(xq.cols());
        let mut result = ChecksummedGemm::from_parts(acc, expected, observed);
        let mut etw = ws.take_vec_i64(wq.cols());
        let ran = engine.gemm_i8_checksummed_into(wq, xq, &mut result, &mut etw);
        ws.recycle_vec_i64(etw);
        if let Err(e) = ran {
            let (acc, expected, observed) = result.into_parts();
            ws.recycle_mat_i32(acc);
            ws.recycle_vec_i64(expected);
            ws.recycle_vec_i64(observed);
            return Err(e.into());
        }
        hook.on_gemm_checksummed(ctx, wq, xq, &mut result);
        let (acc, expected, observed) = result.into_parts();
        ws.recycle_vec_i64(expected);
        ws.recycle_vec_i64(observed);
        Ok(acc)
    } else {
        let mut acc = ws.take_mat_i32(wq.rows(), xq.cols());
        if let Err(e) = engine.gemm_i8_into(wq, xq, &mut acc) {
            ws.recycle_mat_i32(acc);
            return Err(e.into());
        }
        hook.on_gemm(ctx, wq, xq, &mut acc);
        Ok(acc)
    }
}

/// The requantization-magnitude scratch a conversion of `acc` needs: one slot per element
/// for [`OutputMode::RequantizedInt8`], nothing for [`OutputMode::Float`].
fn mags_len(acc: &realm_tensor::MatI32, mode: OutputMode) -> usize {
    match mode {
        OutputMode::Float => 0,
        OutputMode::RequantizedInt8 => acc.len(),
    }
}

/// Converts an INT32 accumulator back to f32 according to the output mode.
///
/// For [`OutputMode::RequantizedInt8`] the INT8 output scale is derived from a *robust*
/// percentile of the accumulator magnitudes rather than the absolute maximum. This emulates
/// statically calibrated activation quantization: a single corrupted element cannot inflate
/// the scale, so it saturates at the ±127 rail instead — the mechanism behind the paper's
/// observation that high-bit errors on re-quantized components plateau.
pub fn convert_accumulator(
    acc: &realm_tensor::MatI32,
    combined_scale: f32,
    mode: OutputMode,
) -> MatF32 {
    let mut out = MatF32::zeros(0, 0);
    let mut mags = Vec::new();
    convert_accumulator_into(acc, combined_scale, mode, &mut out, &mut mags);
    out
}

/// [`convert_accumulator`] into caller-provided storage.
///
/// `out` is reshaped in place; `mags_scratch` holds the robust-requantization magnitudes
/// (unused for [`OutputMode::Float`]). Bit-identical to the allocating path — the
/// requantized mode fuses the INT8 round/clamp and the dequantize multiply into one pass
/// over the same values.
pub fn convert_accumulator_into(
    acc: &realm_tensor::MatI32,
    combined_scale: f32,
    mode: OutputMode,
    out: &mut MatF32,
    mags_scratch: &mut Vec<f32>,
) {
    out.resize_reset(acc.rows(), acc.cols());
    convert_rows_into(acc, 0..acc.rows(), combined_scale, mode, out, mags_scratch);
}

/// Derives an INT8 output scale from the 99th percentile of accumulator magnitudes (the
/// allocating oracle [`robust_output_scale_rows`] is tested against).
#[cfg(test)]
fn robust_output_scale(acc: &realm_tensor::MatI32, combined_scale: f32) -> f32 {
    robust_output_scale_rows(acc, 0..acc.rows(), combined_scale, &mut Vec::new())
}

/// [`robust_output_scale`] over the accumulator rows `range`, staging the magnitudes in
/// `mags_scratch` (the grouped requantization path calls this once per row group, reusing
/// one buffer).
fn robust_output_scale_rows(
    acc: &realm_tensor::MatI32,
    range: std::ops::Range<usize>,
    combined_scale: f32,
    mags_scratch: &mut Vec<f32>,
) -> f32 {
    mags_scratch.clear();
    for r in range {
        mags_scratch.extend(
            acc.row(r)
                .iter()
                .map(|&v| (v as f32 * combined_scale).abs()),
        );
    }
    if mags_scratch.is_empty() {
        return 1.0;
    }
    // Index of the 99th percentile over the *existing* elements (never the absolute maximum
    // for tensors with more than a handful of entries), so a lone corrupted element cannot
    // inflate the calibration scale.
    let idx = (((mags_scratch.len() - 1) as f32) * 0.99).floor() as usize;
    mags_scratch.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("finite magnitudes"));
    let p99 = mags_scratch[idx];
    if p99 > 0.0 && p99.is_finite() {
        p99 / 127.0
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, Stage};
    use crate::hooks::NoopHook;
    use realm_tensor::{gemm, MatI32, Matrix, ReferenceEngine};

    fn ctx() -> GemmContext {
        GemmContext::new(Component::Q, 0, Stage::Prefill, 0)
    }

    #[test]
    fn quant_linear_matches_f32_reference_within_quant_error() {
        let w = MatF32::from_fn(16, 8, |r, c| ((r + 2 * c) % 7) as f32 * 0.1 - 0.3);
        let layer = QuantLinear::from_f32(&w, OutputMode::Float);
        let x = MatF32::from_fn(4, 16, |r, c| ((r * 16 + c) % 11) as f32 * 0.2 - 1.0);
        let y = layer
            .forward(&x, &ReferenceEngine, &ctx(), &mut NoopHook)
            .unwrap();
        let reference = gemm::gemm_f32(&x, &w).unwrap();
        // Quantization error per output element is bounded; check a loose relative bound.
        let denom = reference.abs_max().max(1e-6);
        assert!(y.distance(&reference).unwrap() / denom < 0.5);
        assert_eq!(layer.in_features(), 16);
        assert_eq!(layer.out_features(), 8);
    }

    #[test]
    fn forward_rejects_wrong_input_width() {
        let layer = QuantLinear::from_f32(&MatF32::zeros(4, 4), OutputMode::Float);
        let x = MatF32::zeros(2, 5);
        assert!(layer
            .forward(&x, &ReferenceEngine, &ctx(), &mut NoopHook)
            .is_err());
    }

    #[test]
    fn hook_mutation_is_visible_in_output() {
        struct Spike;
        impl GemmHook for Spike {
            fn on_gemm(&mut self, _: &GemmContext, _: &MatI8, _: &MatI8, acc: &mut MatI32) {
                let v = acc[(0, 0)];
                acc[(0, 0)] = v ^ (1 << 20);
            }
        }
        let w = MatF32::from_fn(8, 8, |r, c| if r == c { 1.0 } else { 0.0 });
        let layer = QuantLinear::from_f32(&w, OutputMode::Float);
        let x = MatF32::filled(1, 8, 1.0);
        let clean = layer
            .forward(&x, &ReferenceEngine, &ctx(), &mut NoopHook)
            .unwrap();
        let faulty = layer
            .forward(&x, &ReferenceEngine, &ctx(), &mut Spike)
            .unwrap();
        assert!((faulty[(0, 0)] - clean[(0, 0)]).abs() > 1.0);
        assert_eq!(faulty[(0, 1)], clean[(0, 1)]);
    }

    #[test]
    fn requantized_mode_saturates_corrupted_elements() {
        struct HighBitFlip;
        impl GemmHook for HighBitFlip {
            fn on_gemm(&mut self, _: &GemmContext, _: &MatI8, _: &MatI8, acc: &mut MatI32) {
                let v = acc[(0, 0)];
                acc[(0, 0)] = v ^ (1 << 30);
            }
        }
        let w = MatF32::from_fn(8, 8, |r, c| ((r + c) % 5) as f32 * 0.1);
        let x = MatF32::from_fn(2, 8, |r, c| (r + c) as f32 * 0.3);

        let float_layer = QuantLinear::from_f32(&w, OutputMode::Float);
        let req_layer = QuantLinear::from_f32(&w, OutputMode::RequantizedInt8);

        let float_clean = float_layer
            .forward(&x, &ReferenceEngine, &ctx(), &mut NoopHook)
            .unwrap();
        let float_faulty = float_layer
            .forward(&x, &ReferenceEngine, &ctx(), &mut HighBitFlip)
            .unwrap();
        let req_clean = req_layer
            .forward(&x, &ReferenceEngine, &ctx(), &mut NoopHook)
            .unwrap();
        let req_faulty = req_layer
            .forward(&x, &ReferenceEngine, &ctx(), &mut HighBitFlip)
            .unwrap();

        let float_err = (float_faulty[(0, 0)] - float_clean[(0, 0)]).abs();
        let req_err = (req_faulty[(0, 0)] - req_clean[(0, 0)]).abs();
        // Re-quantization clips the corrupted element to the INT8 rail, so its error is
        // orders of magnitude smaller than on the floating-point path.
        assert!(
            req_err < float_err / 100.0,
            "requantized error {req_err} should be far below float error {float_err}"
        );
    }

    #[test]
    fn quant_matmul_approximates_f32_product() {
        let a = MatF32::from_fn(3, 6, |r, c| (r as f32 - c as f32) * 0.2);
        let b = MatF32::from_fn(6, 4, |r, c| (r as f32 + c as f32) * 0.1);
        let y = quant_matmul(
            &a,
            &b,
            &ReferenceEngine,
            &ctx(),
            &mut NoopHook,
            OutputMode::Float,
        )
        .unwrap();
        let reference = gemm::gemm_f32(&a, &b).unwrap();
        assert!(y.distance(&reference).unwrap() < 0.2);
    }

    #[test]
    fn robust_scale_ignores_single_outlier() {
        let mut acc = MatI32::filled(10, 10, 100);
        let clean_scale = robust_output_scale(&acc, 1.0);
        acc[(0, 0)] = 1 << 30;
        let corrupted_scale = robust_output_scale(&acc, 1.0);
        assert!((corrupted_scale - clean_scale).abs() / clean_scale < 0.05);
    }

    #[test]
    fn grouped_quantization_matches_per_group_quantization() {
        let x = MatF32::from_fn(7, 5, |r, c| (r as f32 - 3.0) * 0.7 + (c as f32) * 1.3);
        let parts = RowPartition::from_lens(&[3, 0, 4]);
        let (q, scales) = quantize_symmetric_grouped(&x, &parts).unwrap();
        for (g, (start, len)) in [(0usize, (0usize, 3usize)), (2, (3, 4))] {
            let sub = x.rows_slice(start, len).unwrap();
            let (q_ref, scale_ref) = quant::quantize_symmetric(&sub);
            assert_eq!(scales[g], scale_ref);
            assert_eq!(q.rows_slice(start, len).unwrap(), q_ref);
        }
        assert_eq!(scales[1], 1.0, "empty group keeps the neutral scale");
        assert!(quantize_symmetric_grouped(&x, &RowPartition::single(6)).is_err());
    }

    #[test]
    fn batched_forward_is_bit_exact_with_per_group_forward() {
        let w = MatF32::from_fn(6, 4, |r, c| ((r * 3 + c) % 7) as f32 * 0.2 - 0.5);
        for mode in [OutputMode::Float, OutputMode::RequantizedInt8] {
            let layer = QuantLinear::from_f32(&w, mode);
            // Row groups with deliberately different magnitudes so per-tensor quantization
            // of the stack would diverge from the per-group scales.
            let x = MatF32::from_fn(5, 6, |r, c| {
                let gain = if r < 2 { 10.0 } else { 0.3 };
                gain * ((r * 6 + c) % 9) as f32 - gain
            });
            let parts = RowPartition::from_lens(&[2, 3]);
            let batched = layer
                .forward_batched(&x, &parts, &ReferenceEngine, &ctx(), &mut NoopHook)
                .unwrap();
            for (start, len) in [(0, 2), (2, 3)] {
                let solo = layer
                    .forward(
                        &x.rows_slice(start, len).unwrap(),
                        &ReferenceEngine,
                        &ctx(),
                        &mut NoopHook,
                    )
                    .unwrap();
                assert_eq!(
                    batched.rows_slice(start, len).unwrap(),
                    solo,
                    "{mode:?} rows {start}..{}",
                    start + len
                );
            }
        }
    }

    #[test]
    fn forward_rows_are_invariant_to_row_chunking() {
        let w = MatF32::from_fn(6, 4, |r, c| ((r * 3 + c) % 7) as f32 * 0.2 - 0.5);
        for mode in [OutputMode::Float, OutputMode::RequantizedInt8] {
            let layer = QuantLinear::from_f32(&w, mode);
            let x = MatF32::from_fn(5, 6, |r, c| {
                let gain = if r < 2 { 10.0 } else { 0.3 };
                gain * ((r * 6 + c) % 9) as f32 - gain
            });
            let full = layer
                .forward(&x, &ReferenceEngine, &ctx(), &mut NoopHook)
                .unwrap();
            for split in 1..x.rows() {
                let head = layer
                    .forward(
                        &x.rows_slice(0, split).unwrap(),
                        &ReferenceEngine,
                        &ctx(),
                        &mut NoopHook,
                    )
                    .unwrap();
                let tail = layer
                    .forward(
                        &x.rows_slice(split, x.rows() - split).unwrap(),
                        &ReferenceEngine,
                        &ctx(),
                        &mut NoopHook,
                    )
                    .unwrap();
                assert_eq!(full.rows_slice(0, split).unwrap(), head, "{mode:?}");
                assert_eq!(
                    full.rows_slice(split, x.rows() - split).unwrap(),
                    tail,
                    "{mode:?} split {split}"
                );
            }
        }
    }

    #[test]
    fn convert_accumulator_zero_matrix() {
        let acc = Matrix::zeros(2, 2);
        let y = convert_accumulator(&acc, 0.5, OutputMode::RequantizedInt8);
        assert!(y.iter().all(|&v| v == 0.0));
    }
}
