//! Batched inference: ragged batches, shared KV storage with row offsets, and the lockstep
//! scheduler.
//!
//! The single-sequence forward path runs every prefill/decode GEMM once *per sequence*, so
//! ABFT checksum and detection cost scales with the number of sequences. The batched path
//! stacks all sequences' activations into one `(sum_tokens, hidden)` matrix and runs **one**
//! fused-checksum GEMM per shared component per layer (`Q`/`K`/`V`/`O` and the MLP), so
//! detection cost amortises across the batch — the regime the paper's energy-accuracy
//! tradeoff assumes. Only the attention-internal GEMMs (`QKᵀ`, `SV`) stay per-sequence,
//! because each sequence has its own cache length and causal mask.
//!
//! Everything is bit-exact with the single-sequence path: activations are quantized with one
//! symmetric scale per row (see
//! [`quantize_symmetric_rows_into`](crate::quantized::quantize_symmetric_rows_into)), so a
//! batched [`crate::Model::generate_batch`] produces token-identical output to running
//! [`crate::Model::generate`] once per sequence — the contract `tests/batched_parity.rs`
//! enforces on every GEMM backend.

use crate::kv_cache::KvCache;
use crate::model::{argmax_with_margin, GenerationOutput, Model};
use crate::{GemmHook, LlmError, Result};
use realm_tensor::{MatF32, RowPartition, Workspace};

/// Shared per-layer KV storage for a whole batch.
///
/// Keys and values of every sequence live in one matrix per layer, grouped by sequence:
/// sequence `s` owns the contiguous row block starting at `offset_of(s)` with `seq_len(s)`
/// rows. Ragged lengths are the normal case — prompts differ, and sequences complete at
/// different lockstep steps.
#[derive(Debug, Clone)]
pub struct BatchedLayerCache {
    layer: usize,
    keys: Option<MatF32>,
    values: Option<MatF32>,
    lens: Vec<usize>,
}

impl BatchedLayerCache {
    /// Creates empty shared storage for `batch_size` sequences at `layer`.
    pub fn new(layer: usize, batch_size: usize) -> Self {
        Self {
            layer,
            keys: None,
            values: None,
            lens: vec![0; batch_size],
        }
    }

    /// Number of sequences this cache serves.
    pub fn batch_size(&self) -> usize {
        self.lens.len()
    }

    /// Number of cached token positions for sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.lens[seq]
    }

    /// Row offset of sequence `seq` inside the shared storage.
    fn offset_of(&self, seq: usize) -> usize {
        self.lens[..seq].iter().sum()
    }

    /// Total cached rows across all sequences.
    pub fn total_rows(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Appends each sequence's new key/value rows (grouped by `parts`) at the end of that
    /// sequence's segment. Sequences with an empty group (completed sequences during
    /// lockstep decode) are untouched.
    ///
    /// # Errors
    ///
    /// Returns an error naming this cache's layer index if the shapes of `keys`/`values`
    /// disagree, the partition does not cover them, or the width changes mid-run.
    pub fn append_batch(
        &mut self,
        keys: &MatF32,
        values: &MatF32,
        parts: &RowPartition,
    ) -> Result<()> {
        if keys.shape() != values.shape() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: key shape {:?} and value shape {:?} differ",
                    self.layer,
                    keys.shape(),
                    values.shape()
                ),
            });
        }
        if parts.num_groups() != self.lens.len() || parts.total_rows() != keys.rows() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: partition ({} groups, {} rows) does not \
                     match batch size {} and {} new rows",
                    self.layer,
                    parts.num_groups(),
                    parts.total_rows(),
                    self.lens.len(),
                    keys.rows()
                ),
            });
        }
        let width = keys.cols();
        if let Some(existing) = &self.keys {
            if existing.cols() != width {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "batched KV cache at layer {}: width changed from {} to {width}",
                        self.layer,
                        existing.cols()
                    ),
                });
            }
        }
        if keys.rows() == 0 {
            return Ok(());
        }
        // Rebuild the shared storage with each sequence's new rows spliced onto the end of
        // its segment; per-sequence segments stay contiguous for O(1) slicing.
        let new_total = self.total_rows() + keys.rows();
        let mut new_keys = Vec::with_capacity(new_total * width);
        let mut new_values = Vec::with_capacity(new_total * width);
        for seq in 0..self.lens.len() {
            let offset = self.offset_of(seq);
            for r in 0..self.lens[seq] {
                new_keys.extend_from_slice(self.keys.as_ref().expect("non-empty").row(offset + r));
                new_values
                    .extend_from_slice(self.values.as_ref().expect("non-empty").row(offset + r));
            }
            for r in parts.range(seq) {
                new_keys.extend_from_slice(keys.row(r));
                new_values.extend_from_slice(values.row(r));
            }
        }
        self.keys = Some(MatF32::from_vec(new_total, width, new_keys)?);
        self.values = Some(MatF32::from_vec(new_total, width, new_values)?);
        for seq in 0..self.lens.len() {
            self.lens[seq] += parts.len(seq);
        }
        Ok(())
    }

    /// Frees sequence `seq`'s slot: its cached rows are dropped and its length reset to
    /// zero, so a new sequence can be loaded into the slot with
    /// [`BatchedLayerCache::load_slot`]. Releasing an already-empty slot is a no-op.
    ///
    /// This is the layer-level mechanism behind continuous batching: a completed sequence
    /// returns its rows immediately instead of holding the slot until the whole batch
    /// drains.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn release_slot(&mut self, seq: usize) {
        let len = self.lens[seq];
        if len == 0 {
            return;
        }
        let offset = self.offset_of(seq);
        // Drain the slot's rows in place: only the tail rows shift, and the allocation is
        // reused — this runs on every request retirement in the serving hot loop.
        let drain = |storage: Option<MatF32>| -> Option<MatF32> {
            let storage = storage.expect("non-zero slot implies storage");
            let width = storage.cols();
            let remaining = storage.rows() - len;
            if remaining == 0 {
                return None;
            }
            let mut data = storage.into_vec();
            data.drain(offset * width..(offset + len) * width);
            Some(MatF32::from_vec(remaining, width, data).expect("retained rows are rectangular"))
        };
        self.keys = drain(self.keys.take());
        self.values = drain(self.values.take());
        self.lens[seq] = 0;
    }

    /// Loads a freshly prefilled sequence into the empty slot `seq`, splicing `keys` and
    /// `values` (shape `(prompt_len, hidden)`) into the shared storage at the slot's offset.
    ///
    /// # Errors
    ///
    /// Returns an error naming this cache's layer index if the slot is still occupied, the
    /// shapes of `keys`/`values` disagree, they are empty, or their width does not match the
    /// shared storage.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn load_slot(&mut self, seq: usize, keys: &MatF32, values: &MatF32) -> Result<()> {
        if self.lens[seq] != 0 {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: slot {seq} still holds {} rows; release it \
                     before loading a new sequence",
                    self.layer, self.lens[seq]
                ),
            });
        }
        if keys.shape() != values.shape() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: key shape {:?} and value shape {:?} differ",
                    self.layer,
                    keys.shape(),
                    values.shape()
                ),
            });
        }
        if keys.rows() == 0 {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: cannot load an empty sequence into slot {seq}",
                    self.layer
                ),
            });
        }
        if let Some(existing) = &self.keys {
            if existing.cols() != keys.cols() {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "batched KV cache at layer {}: slot {seq} width {} does not match the \
                         shared storage width {}",
                        self.layer,
                        keys.cols(),
                        existing.cols()
                    ),
                });
            }
        }
        let offset = self.offset_of(seq);
        // Splice the new rows in place at the slot's offset (storage is row-major, so the
        // new matrix's backing slice is exactly its rows in order): only the tail shifts,
        // matching `release_slot` — this runs on every admission in the serving hot loop.
        let splice = |storage: Option<MatF32>, new: &MatF32| -> MatF32 {
            let width = new.cols();
            match storage {
                None => new.clone(),
                Some(storage) => {
                    let rows = storage.rows() + new.rows();
                    let mut data = storage.into_vec();
                    let at = offset * width;
                    data.splice(at..at, new.as_slice().iter().copied());
                    MatF32::from_vec(rows, width, data).expect("spliced rows are rectangular")
                }
            }
        };
        self.keys = Some(splice(self.keys.take(), keys));
        self.values = Some(splice(self.values.take(), values));
        self.lens[seq] = keys.rows();
        Ok(())
    }

    /// All cached keys of sequence `seq`, shape `(seq_len(seq), hidden)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence has no cached rows yet.
    pub fn seq_keys(&self, seq: usize) -> Result<MatF32> {
        self.seq_rows(&self.keys, seq, "keys")
    }

    /// All cached values of sequence `seq`, shape `(seq_len(seq), hidden)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence has no cached rows yet.
    pub fn seq_values(&self, seq: usize) -> Result<MatF32> {
        self.seq_rows(&self.values, seq, "values")
    }

    /// [`BatchedLayerCache::seq_keys`] into caller-provided storage (reshaped in place) —
    /// the batched decode loop reuses one workspace buffer per layer instead of copying
    /// every sequence's keys into a fresh matrix each step.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence has no cached rows yet.
    pub fn seq_keys_into(&self, seq: usize, out: &mut MatF32) -> Result<()> {
        self.seq_rows_into(&self.keys, seq, "keys", out)
    }

    /// [`BatchedLayerCache::seq_values`] into caller-provided storage (reshaped in place).
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence has no cached rows yet.
    pub fn seq_values_into(&self, seq: usize, out: &mut MatF32) -> Result<()> {
        self.seq_rows_into(&self.values, seq, "values", out)
    }

    fn seq_rows(&self, storage: &Option<MatF32>, seq: usize, what: &str) -> Result<MatF32> {
        let Some(storage) = storage else {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: no cached {what} for sequence {seq}",
                    self.layer
                ),
            });
        };
        Ok(storage.rows_slice(self.offset_of(seq), self.lens[seq])?)
    }

    fn seq_rows_into(
        &self,
        storage: &Option<MatF32>,
        seq: usize,
        what: &str,
        out: &mut MatF32,
    ) -> Result<()> {
        let Some(storage) = storage else {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: no cached {what} for sequence {seq}",
                    self.layer
                ),
            });
        };
        let offset = self.offset_of(seq);
        let len = self.lens[seq];
        if offset + len > storage.rows() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: sequence {seq} rows {offset}..{} exceed the \
                     shared storage ({} rows)",
                    self.layer,
                    offset + len,
                    storage.rows()
                ),
            });
        }
        out.resize_overwrite(len, storage.cols());
        for (i, r) in (offset..offset + len).enumerate() {
            out.row_mut(i).copy_from_slice(storage.row(r));
        }
        Ok(())
    }
}

/// Batched KV cache covering every layer of the model.
///
/// Each of the `batch_size` *slots* holds one sequence's keys/values across all layers.
/// Slots are reusable: [`BatchedKvCache::release_slot`] frees a completed sequence's rows
/// and [`BatchedKvCache::admit`] splices a freshly prefilled sequence into the vacancy —
/// the mechanism the continuous-batching serving layer (`realm-serve`) is built on.
///
/// # Example
///
/// ```
/// use realm_llm::{config::ModelConfig, model::Model, NoopHook};
///
/// # fn main() -> Result<(), realm_llm::LlmError> {
/// let model = Model::new(&ModelConfig::tiny_opt(), 42)?;
/// let prompts = vec![vec![1, 2, 3], vec![4, 5]];
/// let (_, mut cache) = model.prefill_batch(&prompts, &mut NoopHook)?;
///
/// // Sequence 0 completes: recycle its slot for a new request.
/// cache.release_slot(0);
/// assert!(cache.is_slot_free(0));
/// let (_, solo) = model.prefill(&[7, 8, 9, 10], &mut NoopHook)?;
/// cache.admit(0, &solo)?;
/// assert_eq!(cache.seq_len(0), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchedKvCache {
    layers: Vec<BatchedLayerCache>,
    batch_size: usize,
}

impl BatchedKvCache {
    /// Creates an empty cache for `num_layers` layers serving `batch_size` sequences.
    pub fn new(num_layers: usize, batch_size: usize) -> Self {
        Self {
            layers: (0..num_layers)
                .map(|layer| BatchedLayerCache::new(layer, batch_size))
                .collect(),
            batch_size,
        }
    }

    /// Number of layers the cache covers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of sequences the cache serves.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Cached token positions of sequence `seq` (identical across layers once populated).
    pub fn seq_len(&self, seq: usize) -> usize {
        self.layers.first().map_or(0, |l| l.seq_len(seq))
    }

    /// Accesses the shared storage of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer(&self, layer: usize) -> &BatchedLayerCache {
        &self.layers[layer]
    }

    /// Mutably accesses the shared storage of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_mut(&mut self, layer: usize) -> &mut BatchedLayerCache {
        &mut self.layers[layer]
    }

    /// Returns `true` if slot `seq` holds no cached rows and can accept a new sequence.
    pub fn is_slot_free(&self, seq: usize) -> bool {
        self.seq_len(seq) == 0
    }

    /// Frees slot `seq` across every layer so a new sequence can be admitted into it.
    ///
    /// Releasing an already-free slot is a no-op. This is the primitive continuous batching
    /// is built on: completed sequences return their KV rows between lockstep decode steps
    /// instead of holding the slot until the whole batch drains.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn release_slot(&mut self, seq: usize) {
        for layer in &mut self.layers {
            layer.release_slot(seq);
        }
    }

    /// Admits a freshly prefilled sequence into the free slot `seq`, copying the per-layer
    /// keys and values of `solo` (a cache populated by [`crate::Model::prefill`]) into the
    /// shared storage.
    ///
    /// The copied rows are bit-identical to what a shared [`crate::Model::prefill_batch`]
    /// would have produced for the same prompt, so decode steps after admission produce the
    /// same tokens a solo [`crate::Model::generate`] run would — the slot-reuse parity
    /// contract of `tests/serve_continuous.rs`.
    ///
    /// # Errors
    ///
    /// Returns an error if the layer counts disagree, `solo` is empty, or the slot is still
    /// occupied at any layer. On error the cache is left unchanged (a partial admission is
    /// rolled back), so a failed admit never leaves the slot inconsistent across layers.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn admit(&mut self, seq: usize, solo: &KvCache) -> Result<()> {
        if solo.num_layers() != self.layers.len() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "cannot admit a {}-layer sequence cache into slot {seq} of a {}-layer \
                     batched cache",
                    solo.num_layers(),
                    self.layers.len()
                ),
            });
        }
        if self.seq_len(seq) != 0 {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "cannot admit a {}-token sequence into slot {seq}: the slot still holds \
                     {} resident tokens; release it first",
                    solo.seq_len(),
                    self.seq_len(seq)
                ),
            });
        }
        let rollback = |layers: &mut [BatchedLayerCache], upto: usize| {
            for layer in &mut layers[..upto] {
                layer.release_slot(seq);
            }
        };
        for layer_idx in 0..self.layers.len() {
            let solo_layer = solo.layer(layer_idx);
            let (Some(keys), Some(values)) = (solo_layer.keys(), solo_layer.values()) else {
                rollback(&mut self.layers, layer_idx);
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "cannot admit an unprefilled sequence into slot {seq}: layer \
                         {layer_idx} of the solo cache is empty (expected {} resident rows)",
                        solo.seq_len()
                    ),
                });
            };
            if let Err(e) = self.layers[layer_idx].load_slot(seq, keys, values) {
                rollback(&mut self.layers, layer_idx);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Admits sequence `source_seq` of another batched cache into the free slot `seq`,
    /// copying its per-layer keys and values into the shared storage.
    ///
    /// This is the batched-admission counterpart of [`BatchedKvCache::admit`]: when the
    /// serving engine prefills several queued requests in **one**
    /// [`crate::Model::prefill_batch`] call, each prefilled sequence's rows are spliced
    /// from the prefill cache into its destination slot. The copied rows are bit-identical
    /// to what a solo prefill would have cached (the `prefill_batch` parity contract), so
    /// decode after a batched admission matches solo generation exactly.
    ///
    /// # Errors
    ///
    /// Returns an error if the layer counts disagree, the source sequence is empty, or the
    /// slot is still occupied at any layer. On error the cache is left unchanged (partial
    /// admissions are rolled back).
    ///
    /// # Panics
    ///
    /// Panics if `seq` or `source_seq` is out of range.
    pub fn admit_from(
        &mut self,
        seq: usize,
        source: &BatchedKvCache,
        source_seq: usize,
    ) -> Result<()> {
        if source.num_layers() != self.layers.len() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "cannot admit from a {}-layer batched cache into slot {seq} of a \
                     {}-layer batched cache",
                    source.num_layers(),
                    self.layers.len()
                ),
            });
        }
        if self.seq_len(seq) != 0 {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "cannot admit a {}-token sequence into slot {seq}: the slot still holds \
                     {} resident tokens; release it first",
                    source.seq_len(source_seq),
                    self.seq_len(seq)
                ),
            });
        }
        let rollback = |layers: &mut [BatchedLayerCache], upto: usize| {
            for layer in &mut layers[..upto] {
                layer.release_slot(seq);
            }
        };
        for layer_idx in 0..self.layers.len() {
            let source_layer = source.layer(layer_idx);
            let spliced = source_layer
                .seq_keys(source_seq)
                .and_then(|keys| Ok((keys, source_layer.seq_values(source_seq)?)))
                .and_then(|(keys, values)| self.layers[layer_idx].load_slot(seq, &keys, &values));
            if let Err(e) = spliced {
                rollback(&mut self.layers, layer_idx);
                return Err(e);
            }
        }
        Ok(())
    }
}

/// One generation request handed to the [`BatchScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// Prompt tokens (must be non-empty).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate for this request.
    pub max_new_tokens: usize,
}

impl BatchRequest {
    /// Creates a request.
    pub fn new(prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        Self {
            prompt,
            max_new_tokens,
        }
    }
}

/// Packs ragged prompts into one shared prefill, then drives lockstep decode with
/// per-sequence completion.
///
/// Each lockstep step stacks the pending token of every still-active sequence into one
/// decode forward; sequences that reach their requested length simply stop contributing rows
/// (their batch index — and therefore per-sequence attribution — stays stable). Output is
/// token-identical to running [`Model::generate`] once per request.
///
/// # Example
///
/// ```
/// use realm_llm::batch::{BatchRequest, BatchScheduler};
/// use realm_llm::{config::ModelConfig, model::Model, NoopHook};
///
/// # fn main() -> Result<(), realm_llm::LlmError> {
/// let model = Model::new(&ModelConfig::tiny_opt(), 42)?;
/// let requests = vec![
///     BatchRequest::new(vec![1, 5, 9], 4),
///     BatchRequest::new(vec![2, 7], 6),
/// ];
/// let outputs = BatchScheduler::new(&model).run(&requests, &mut NoopHook)?;
/// assert_eq!(outputs[0].tokens.len(), 4);
/// assert_eq!(outputs[1].tokens.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchScheduler<'m> {
    model: &'m Model,
}

impl<'m> BatchScheduler<'m> {
    /// Creates a scheduler driving `model`.
    pub fn new(model: &'m Model) -> Self {
        Self { model }
    }

    /// Rejects any request whose prompt plus generation budget exceeds the context window.
    fn validate_requests(&self, requests: &[BatchRequest]) -> Result<()> {
        let max_seq_len = self.model.config().max_seq_len;
        for (i, request) in requests.iter().enumerate() {
            if request.prompt.len() + request.max_new_tokens > max_seq_len {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "request {i}: prompt ({}) plus generation ({}) exceeds max_seq_len \
                         {max_seq_len}",
                        request.prompt.len(),
                        request.max_new_tokens
                    ),
                });
            }
        }
        Ok(())
    }

    /// Runs every request to completion and returns one [`GenerationOutput`] per request,
    /// in request order.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty request list, empty prompts, out-of-range tokens, or
    /// any request whose prompt plus generation budget exceeds the model's context window.
    pub fn run(
        &self,
        requests: &[BatchRequest],
        hook: &mut dyn GemmHook,
    ) -> Result<Vec<GenerationOutput>> {
        self.validate_requests(requests)?;
        // One workspace for the whole run: the shared prefill warms the pools, every
        // lockstep decode step after that reuses them.
        let mut ws = Workspace::new();
        let prompts: Vec<Vec<u32>> = requests.iter().map(|r| r.prompt.clone()).collect();
        let (logits, mut cache) = self.model.prefill_batch_ws(&prompts, hook, &mut ws)?;

        struct SeqState {
            tokens: Vec<u32>,
            margins: Vec<f32>,
            next: u32,
            margin: f32,
            target: usize,
        }
        let mut states: Vec<SeqState> = logits
            .iter()
            .zip(requests)
            .map(|(l, request)| {
                let (next, margin) = argmax_with_margin(l.row(l.rows() - 1));
                SeqState {
                    tokens: Vec::with_capacity(request.max_new_tokens),
                    margins: Vec::with_capacity(request.max_new_tokens),
                    next,
                    margin,
                    target: request.max_new_tokens,
                }
            })
            .collect();

        loop {
            // Commit the pending token of every sequence still below its target, mirroring
            // the single-sequence `generate` loop: push first, then decode only if more
            // tokens are needed.
            for state in states.iter_mut() {
                if state.tokens.len() < state.target {
                    state.tokens.push(state.next);
                    state.margins.push(state.margin);
                }
            }
            let step: Vec<Option<u32>> = states
                .iter()
                .map(|s| (s.tokens.len() < s.target).then_some(s.next))
                .collect();
            if step.iter().all(Option::is_none) {
                break;
            }
            let step_logits = self
                .model
                .decode_step_batch_ws(&step, &mut cache, hook, &mut ws)?;
            for (state, logits) in states.iter_mut().zip(step_logits) {
                if let Some(logits) = logits {
                    let (next, margin) = argmax_with_margin(&logits);
                    ws.recycle_vec_f32(logits);
                    state.next = next;
                    state.margin = margin;
                }
            }
            ws.reset();
        }
        Ok(states
            .into_iter()
            .map(|s| GenerationOutput {
                tokens: s.tokens,
                margins: s.margins,
            })
            .collect())
    }

    /// Runs every request through a **continuous-batching** window of at most `slots`
    /// concurrent sequences and returns one [`GenerationOutput`] per request, in request
    /// order.
    ///
    /// Unlike [`BatchScheduler::run`] — which keeps every completed sequence's batch slot
    /// empty until the whole batch drains — this loop releases a slot the moment its
    /// sequence reaches its generation budget ([`BatchedKvCache::release_slot`]) and admits
    /// the next queued request into it ([`BatchedKvCache::admit`]) between decode steps, so
    /// the batch stays full under sustained load. Admission order is FIFO.
    ///
    /// The first `slots` requests share one batched prefill; later admissions are prefilled
    /// solo and their KV rows copied into the freed slot. Either way every request's tokens
    /// are bit-identical to a solo [`Model::generate`] run — continuous batching changes
    /// throughput, never output.
    ///
    /// # Example
    ///
    /// ```
    /// use realm_llm::batch::{BatchRequest, BatchScheduler};
    /// use realm_llm::{config::ModelConfig, model::Model, NoopHook};
    ///
    /// # fn main() -> Result<(), realm_llm::LlmError> {
    /// let model = Model::new(&ModelConfig::tiny_opt(), 42)?;
    /// let requests = vec![
    ///     BatchRequest::new(vec![1, 5, 9], 2),
    ///     BatchRequest::new(vec![2, 7], 6),
    ///     BatchRequest::new(vec![3], 4),
    /// ];
    /// // A 2-slot window: request 2 is admitted as soon as a slot frees up.
    /// let outputs = BatchScheduler::new(&model).run_with_slots(&requests, 2, &mut NoopHook)?;
    /// assert_eq!(outputs[2].tokens.len(), 4);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Hooks and attribution
    ///
    /// Every forward — the shared initial prefill, each solo admission prefill and every
    /// lockstep decode step — runs through the one `hook`. A solo admission prefill is an
    /// ordinary single-sequence forward: its GEMMs are tagged
    /// [`GemmOrigin::Sequence`](crate::GemmOrigin)`(0)` and announce no partition, so a
    /// protector attributes them to index 0 regardless of which request is being admitted
    /// (and applies an index-0 per-sequence scheme, if one is installed). Callers that
    /// need per-request protection policies or per-request attribution across admissions
    /// should use `realm-serve`'s `ServeEngine`, which prefills each admission under its
    /// own protector.
    ///
    /// # Errors
    ///
    /// Returns an error for `slots == 0`, an empty request list, empty prompts,
    /// out-of-range tokens, or any request whose prompt plus generation budget exceeds the
    /// model's context window.
    pub fn run_with_slots(
        &self,
        requests: &[BatchRequest],
        slots: usize,
        hook: &mut dyn GemmHook,
    ) -> Result<Vec<GenerationOutput>> {
        if slots == 0 {
            return Err(LlmError::InvalidSequence {
                detail: "continuous batching needs at least one slot".into(),
            });
        }
        if requests.len() <= slots {
            // The window covers everything; the lockstep path is already optimal.
            return self.run(requests, hook);
        }
        self.validate_requests(requests)?;

        struct SlotState {
            request: usize,
            last: u32,
            tokens: Vec<u32>,
            margins: Vec<f32>,
            target: usize,
        }
        /// Builds a slot's state from its prefill logits, committing the first token
        /// immediately (mirroring the solo `generate` loop) unless the budget is zero.
        fn new_state(request: usize, target: usize, last_logits: &[f32]) -> SlotState {
            let (next, margin) = argmax_with_margin(last_logits);
            let mut state = SlotState {
                request,
                last: next,
                tokens: Vec::with_capacity(target),
                margins: Vec::with_capacity(target),
                target,
            };
            if target > 0 {
                state.tokens.push(next);
                state.margins.push(margin);
            }
            state
        }
        let mut outputs: Vec<Option<GenerationOutput>> =
            (0..requests.len()).map(|_| None).collect();
        let mut active: Vec<Option<SlotState>> = (0..slots).map(|_| None).collect();
        let mut next_request = slots;

        // Shared prefill for the initial window; the first token of each sequence is
        // committed immediately, mirroring the solo `generate` loop. One workspace serves
        // the whole continuous run: initial prefill, admission prefills, decode steps.
        let mut ws = Workspace::new();
        let prompts: Vec<Vec<u32>> = requests[..slots].iter().map(|r| r.prompt.clone()).collect();
        let (logits, mut cache) = self.model.prefill_batch_ws(&prompts, hook, &mut ws)?;
        for (slot, (l, request)) in logits.iter().zip(&requests[..slots]).enumerate() {
            active[slot] = Some(new_state(slot, request.max_new_tokens, l.row(l.rows() - 1)));
        }

        loop {
            // Retire completed sequences and refill their slots from the queue. A freshly
            // admitted request may itself complete at admission (budget 0 or 1), so keep
            // admitting until the slot genuinely holds an unfinished sequence. The body
            // mutates `active[slot]`, the shared cache and the queue cursor together, so an
            // index loop is clearer than fighting iter_mut borrows.
            #[allow(clippy::needless_range_loop)]
            for slot in 0..slots {
                loop {
                    if let Some(state) = &active[slot] {
                        if state.tokens.len() < state.target {
                            break;
                        }
                        let state = active[slot].take().expect("checked above");
                        outputs[state.request] = Some(GenerationOutput {
                            tokens: state.tokens,
                            margins: state.margins,
                        });
                        cache.release_slot(slot);
                    }
                    if next_request >= requests.len() {
                        break;
                    }
                    let request = &requests[next_request];
                    // Admission caches are copied into the slot and dropped: skip the
                    // full-context-window reservation `new_cache` makes for decode caches.
                    let mut solo_cache = KvCache::new(self.model.config().num_layers);
                    let logits = self.model.prefill_ws_into(
                        &request.prompt,
                        hook,
                        &mut ws,
                        &mut solo_cache,
                    )?;
                    cache.admit(slot, &solo_cache)?;
                    active[slot] = Some(new_state(
                        next_request,
                        request.max_new_tokens,
                        logits.row(logits.rows() - 1),
                    ));
                    ws.recycle_mat_f32(logits);
                    next_request += 1;
                }
            }

            let step: Vec<Option<u32>> = active
                .iter()
                .map(|s| s.as_ref().map(|state| state.last))
                .collect();
            if step.iter().all(Option::is_none) {
                break;
            }
            let step_logits = self
                .model
                .decode_step_batch_ws(&step, &mut cache, hook, &mut ws)?;
            for (state, logits) in active.iter_mut().zip(step_logits) {
                if let (Some(state), Some(logits)) = (state, logits) {
                    let (next, margin) = argmax_with_margin(&logits);
                    ws.recycle_vec_f32(logits);
                    state.last = next;
                    state.tokens.push(next);
                    state.margins.push(margin);
                }
            }
            ws.reset();
        }
        Ok(outputs
            .into_iter()
            .map(|o| o.expect("every request was retired through its slot"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::NoopHook;

    #[test]
    fn batched_layer_cache_keeps_sequences_contiguous() {
        let mut cache = BatchedLayerCache::new(1, 3);
        let parts = RowPartition::from_lens(&[2, 1, 2]);
        let keys = MatF32::from_fn(5, 4, |r, c| (r * 4 + c) as f32);
        let values = keys.scale(10.0);
        cache.append_batch(&keys, &values, &parts).unwrap();
        assert_eq!(cache.seq_len(0), 2);
        assert_eq!(cache.seq_len(1), 1);
        assert_eq!(cache.seq_len(2), 2);
        assert_eq!(cache.seq_keys(1).unwrap().row(0), keys.row(2));

        // Second append with an empty group for the middle sequence.
        let parts2 = RowPartition::from_lens(&[1, 0, 1]);
        let keys2 = MatF32::from_fn(2, 4, |r, c| 100.0 + (r * 4 + c) as f32);
        cache
            .append_batch(&keys2, &keys2.scale(10.0), &parts2)
            .unwrap();
        assert_eq!(cache.seq_len(0), 3);
        assert_eq!(cache.seq_len(1), 1);
        assert_eq!(cache.seq_keys(0).unwrap().row(2), keys2.row(0));
        assert_eq!(cache.seq_keys(2).unwrap().row(2), keys2.row(1));
        assert_eq!(
            cache.seq_values(2).unwrap().row(2),
            keys2.scale(10.0).row(1)
        );
    }

    #[test]
    fn batched_cache_errors_name_the_layer() {
        let mut cache = BatchedLayerCache::new(5, 2);
        let parts = RowPartition::from_lens(&[1, 1]);
        let err = cache
            .append_batch(&MatF32::zeros(2, 4), &MatF32::zeros(3, 4), &parts)
            .unwrap_err();
        assert!(err.to_string().contains("layer 5"), "{err}");
        let err = cache
            .append_batch(
                &MatF32::zeros(3, 4),
                &MatF32::zeros(3, 4),
                &RowPartition::from_lens(&[1, 1]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("layer 5"), "{err}");
        cache
            .append_batch(&MatF32::zeros(2, 4), &MatF32::zeros(2, 4), &parts)
            .unwrap();
        let err = cache
            .append_batch(&MatF32::zeros(2, 8), &MatF32::zeros(2, 8), &parts)
            .unwrap_err();
        assert!(err.to_string().contains("layer 5"), "{err}");
    }

    #[test]
    fn batched_kv_cache_tracks_all_layers() {
        let cache = BatchedKvCache::new(3, 2);
        assert_eq!(cache.num_layers(), 3);
        assert_eq!(cache.batch_size(), 2);
        assert_eq!(cache.seq_len(0), 0);
        assert_eq!(cache.layer(2).batch_size(), 2);
    }

    #[test]
    fn release_slot_frees_rows_and_load_slot_reuses_them() {
        let mut cache = BatchedLayerCache::new(0, 3);
        let parts = RowPartition::from_lens(&[2, 1, 2]);
        let keys = MatF32::from_fn(5, 4, |r, c| (r * 4 + c) as f32);
        cache.append_batch(&keys, &keys.scale(2.0), &parts).unwrap();

        cache.release_slot(1);
        assert_eq!(cache.seq_len(1), 0);
        assert_eq!(cache.total_rows(), 4);
        // Neighbouring sequences keep their rows.
        assert_eq!(cache.seq_keys(0).unwrap().row(1), keys.row(1));
        assert_eq!(cache.seq_keys(2).unwrap().row(0), keys.row(3));

        // Loading an occupied slot fails; loading the freed slot splices at its offset.
        let fresh = MatF32::from_fn(3, 4, |r, c| 100.0 + (r * 4 + c) as f32);
        assert!(cache.load_slot(0, &fresh, &fresh).is_err());
        cache.load_slot(1, &fresh, &fresh.scale(2.0)).unwrap();
        assert_eq!(cache.seq_len(1), 3);
        assert_eq!(cache.seq_keys(1).unwrap().row(2), fresh.row(2));
        assert_eq!(cache.seq_keys(2).unwrap().row(1), keys.row(4));
        assert_eq!(cache.seq_values(1).unwrap().row(0), fresh.scale(2.0).row(0));

        // Width mismatches and empty sequences are rejected.
        cache.release_slot(1);
        assert!(cache
            .load_slot(1, &MatF32::zeros(2, 8), &MatF32::zeros(2, 8))
            .is_err());
        assert!(cache
            .load_slot(1, &MatF32::zeros(0, 4), &MatF32::zeros(0, 4))
            .is_err());
        // Releasing everything empties the storage; re-loading works from scratch.
        cache.release_slot(0);
        cache.release_slot(2);
        assert_eq!(cache.total_rows(), 0);
        cache.load_slot(2, &fresh, &fresh).unwrap();
        assert_eq!(cache.seq_len(2), 3);
    }

    #[test]
    fn admit_copies_a_solo_cache_into_a_free_slot() {
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let prompts = vec![vec![1u32, 2, 3], vec![4, 5]];
        let (_, mut batched) = model.prefill_batch(&prompts, &mut NoopHook).unwrap();
        let (_, solo) = model.prefill(&[6, 7, 8, 9], &mut NoopHook).unwrap();

        // Occupied slots reject admission until released.
        assert!(batched.admit(0, &solo).is_err());
        assert!(!batched.is_slot_free(0));
        batched.release_slot(0);
        assert!(batched.is_slot_free(0));
        batched.admit(0, &solo).unwrap();
        assert_eq!(batched.seq_len(0), 4);

        // The admitted rows are bit-identical to what a batched prefill would have cached.
        let (_, reference) = model
            .prefill_batch(&[vec![6, 7, 8, 9], vec![4, 5]], &mut NoopHook)
            .unwrap();
        for layer in 0..batched.num_layers() {
            assert_eq!(
                batched.layer(layer).seq_keys(0).unwrap(),
                reference.layer(layer).seq_keys(0).unwrap(),
                "layer {layer} keys diverge from a shared prefill"
            );
        }

        // Admitting an unprefilled cache or a layer-count mismatch is rejected.
        batched.release_slot(0);
        assert!(batched.admit(0, &model.new_cache()).is_err());
        assert!(batched.admit(0, &KvCache::new(1)).is_err());

        // A partially populated solo cache fails *atomically*: earlier layers are rolled
        // back, so the slot stays free and a subsequent valid admission succeeds.
        let hidden = model.config().hidden_size;
        let mut partial = model.new_cache();
        partial
            .layer_mut(0)
            .append(&MatF32::zeros(2, hidden), &MatF32::zeros(2, hidden))
            .unwrap();
        assert!(batched.admit(0, &partial).is_err());
        for layer in 0..batched.num_layers() {
            assert_eq!(
                batched.layer(layer).seq_len(0),
                0,
                "failed admit must not leave rows behind at layer {layer}"
            );
        }
        batched.admit(0, &solo).unwrap();
        assert_eq!(batched.seq_len(0), 4);
    }

    #[test]
    fn admit_errors_name_the_slot_and_lengths() {
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let prompts = vec![vec![1u32, 2, 3], vec![4, 5]];
        let (_, mut batched) = model.prefill_batch(&prompts, &mut NoopHook).unwrap();
        let (_, solo) = model.prefill(&[6, 7, 8, 9], &mut NoopHook).unwrap();

        // Occupied slot: names the slot and both the resident and incoming lengths.
        let err = batched.admit(1, &solo).unwrap_err().to_string();
        assert!(err.contains("slot 1"), "{err}");
        assert!(err.contains("2 resident tokens"), "{err}");
        assert!(err.contains("4-token"), "{err}");

        // Layer-count mismatch: names the slot.
        batched.release_slot(1);
        let err = batched.admit(1, &KvCache::new(1)).unwrap_err().to_string();
        assert!(err.contains("slot 1"), "{err}");

        // Unprefilled solo cache: names the slot and the empty layer.
        let err = batched
            .admit(1, &model.new_cache())
            .unwrap_err()
            .to_string();
        assert!(err.contains("slot 1"), "{err}");
        assert!(err.contains("layer 0"), "{err}");

        // admit_from mirrors the same diagnostics.
        let (_, source) = model
            .prefill_batch(&[vec![9u32, 8], vec![7, 6, 5]], &mut NoopHook)
            .unwrap();
        let err = batched.admit_from(0, &source, 1).unwrap_err().to_string();
        assert!(err.contains("slot 0"), "{err}");
        assert!(err.contains("3 resident tokens"), "{err}");
        assert!(err.contains("3-token"), "{err}");
    }

    #[test]
    fn run_with_slots_matches_lockstep_outputs() {
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let requests = vec![
            BatchRequest::new(vec![1, 2, 3], 5),
            BatchRequest::new(vec![4, 5], 1),
            BatchRequest::new(vec![6], 3),
            BatchRequest::new(vec![7, 8, 9, 10], 0),
            BatchRequest::new(vec![2, 4], 4),
        ];
        let scheduler = BatchScheduler::new(&model);
        let lockstep = scheduler.run(&requests, &mut NoopHook).unwrap();
        for slots in [1, 2, 3, 5] {
            let continuous = scheduler
                .run_with_slots(&requests, slots, &mut NoopHook)
                .unwrap();
            assert_eq!(
                continuous, lockstep,
                "{slots}-slot continuous run diverged from lockstep"
            );
        }
        assert!(scheduler
            .run_with_slots(&requests, 0, &mut NoopHook)
            .is_err());
    }

    #[test]
    fn scheduler_respects_per_request_budgets() {
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let requests = vec![
            BatchRequest::new(vec![1, 2, 3], 5),
            BatchRequest::new(vec![4, 5], 2),
            BatchRequest::new(vec![6], 0),
        ];
        let outputs = BatchScheduler::new(&model)
            .run(&requests, &mut NoopHook)
            .unwrap();
        assert_eq!(outputs[0].tokens.len(), 5);
        assert_eq!(outputs[1].tokens.len(), 2);
        assert!(outputs[2].tokens.is_empty());
    }

    #[test]
    fn scheduler_rejects_over_budget_requests() {
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let max = model.config().max_seq_len;
        let requests = vec![BatchRequest::new(vec![0; max], 1)];
        assert!(BatchScheduler::new(&model)
            .run(&requests, &mut NoopHook)
            .is_err());
    }
}
