//! Batched inference: ragged batches, shared KV storage with row offsets, and the lockstep
//! scheduler.
//!
//! The single-sequence forward path runs every prefill/decode GEMM once *per sequence*, so
//! ABFT checksum and detection cost scales with the number of sequences. The batched path
//! stacks all sequences' activations into one `(sum_tokens, hidden)` matrix and runs **one**
//! fused-checksum GEMM per shared component per layer (`Q`/`K`/`V`/`O` and the MLP), so
//! detection cost amortises across the batch — the regime the paper's energy-accuracy
//! tradeoff assumes. Only the attention-internal GEMMs (`QKᵀ`, `SV`) stay per-sequence,
//! because each sequence has its own cache length and causal mask.
//!
//! Everything is bit-exact with the single-sequence path: activations are quantized with one
//! symmetric scale per row group (see
//! [`quantize_symmetric_grouped`](crate::quantized::quantize_symmetric_grouped)), so a
//! batched [`crate::Model::generate_batch`] produces token-identical output to running
//! [`crate::Model::generate`] once per sequence — the contract `tests/batched_parity.rs`
//! enforces on every GEMM backend.

use crate::model::{argmax_with_margin, GenerationOutput, Model};
use crate::{GemmHook, LlmError, Result};
use realm_tensor::{MatF32, RowPartition};

/// Shared per-layer KV storage for a whole batch.
///
/// Keys and values of every sequence live in one matrix per layer, grouped by sequence:
/// sequence `s` owns the contiguous row block starting at `offset_of(s)` with `seq_len(s)`
/// rows. Ragged lengths are the normal case — prompts differ, and sequences complete at
/// different lockstep steps.
#[derive(Debug, Clone)]
pub struct BatchedLayerCache {
    layer: usize,
    keys: Option<MatF32>,
    values: Option<MatF32>,
    lens: Vec<usize>,
}

impl BatchedLayerCache {
    /// Creates empty shared storage for `batch_size` sequences at `layer`.
    pub fn new(layer: usize, batch_size: usize) -> Self {
        Self {
            layer,
            keys: None,
            values: None,
            lens: vec![0; batch_size],
        }
    }

    /// Number of sequences this cache serves.
    pub fn batch_size(&self) -> usize {
        self.lens.len()
    }

    /// Number of cached token positions for sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.lens[seq]
    }

    /// Row offset of sequence `seq` inside the shared storage.
    fn offset_of(&self, seq: usize) -> usize {
        self.lens[..seq].iter().sum()
    }

    /// Total cached rows across all sequences.
    pub fn total_rows(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Appends each sequence's new key/value rows (grouped by `parts`) at the end of that
    /// sequence's segment. Sequences with an empty group (completed sequences during
    /// lockstep decode) are untouched.
    ///
    /// # Errors
    ///
    /// Returns an error naming this cache's layer index if the shapes of `keys`/`values`
    /// disagree, the partition does not cover them, or the width changes mid-run.
    pub fn append_batch(
        &mut self,
        keys: &MatF32,
        values: &MatF32,
        parts: &RowPartition,
    ) -> Result<()> {
        if keys.shape() != values.shape() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: key shape {:?} and value shape {:?} differ",
                    self.layer,
                    keys.shape(),
                    values.shape()
                ),
            });
        }
        if parts.num_groups() != self.lens.len() || parts.total_rows() != keys.rows() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: partition ({} groups, {} rows) does not \
                     match batch size {} and {} new rows",
                    self.layer,
                    parts.num_groups(),
                    parts.total_rows(),
                    self.lens.len(),
                    keys.rows()
                ),
            });
        }
        let width = keys.cols();
        if let Some(existing) = &self.keys {
            if existing.cols() != width {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "batched KV cache at layer {}: width changed from {} to {width}",
                        self.layer,
                        existing.cols()
                    ),
                });
            }
        }
        if keys.rows() == 0 {
            return Ok(());
        }
        // Rebuild the shared storage with each sequence's new rows spliced onto the end of
        // its segment; per-sequence segments stay contiguous for O(1) slicing.
        let new_total = self.total_rows() + keys.rows();
        let mut new_keys = Vec::with_capacity(new_total * width);
        let mut new_values = Vec::with_capacity(new_total * width);
        for seq in 0..self.lens.len() {
            let offset = self.offset_of(seq);
            for r in 0..self.lens[seq] {
                new_keys.extend_from_slice(self.keys.as_ref().expect("non-empty").row(offset + r));
                new_values
                    .extend_from_slice(self.values.as_ref().expect("non-empty").row(offset + r));
            }
            for r in parts.range(seq) {
                new_keys.extend_from_slice(keys.row(r));
                new_values.extend_from_slice(values.row(r));
            }
        }
        self.keys = Some(MatF32::from_vec(new_total, width, new_keys)?);
        self.values = Some(MatF32::from_vec(new_total, width, new_values)?);
        for seq in 0..self.lens.len() {
            self.lens[seq] += parts.len(seq);
        }
        Ok(())
    }

    /// All cached keys of sequence `seq`, shape `(seq_len(seq), hidden)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence has no cached rows yet.
    pub fn seq_keys(&self, seq: usize) -> Result<MatF32> {
        self.seq_rows(&self.keys, seq, "keys")
    }

    /// All cached values of sequence `seq`, shape `(seq_len(seq), hidden)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence has no cached rows yet.
    pub fn seq_values(&self, seq: usize) -> Result<MatF32> {
        self.seq_rows(&self.values, seq, "values")
    }

    fn seq_rows(&self, storage: &Option<MatF32>, seq: usize, what: &str) -> Result<MatF32> {
        let Some(storage) = storage else {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "batched KV cache at layer {}: no cached {what} for sequence {seq}",
                    self.layer
                ),
            });
        };
        Ok(storage.rows_slice(self.offset_of(seq), self.lens[seq])?)
    }
}

/// Batched KV cache covering every layer of the model.
#[derive(Debug, Clone)]
pub struct BatchedKvCache {
    layers: Vec<BatchedLayerCache>,
    batch_size: usize,
}

impl BatchedKvCache {
    /// Creates an empty cache for `num_layers` layers serving `batch_size` sequences.
    pub fn new(num_layers: usize, batch_size: usize) -> Self {
        Self {
            layers: (0..num_layers)
                .map(|layer| BatchedLayerCache::new(layer, batch_size))
                .collect(),
            batch_size,
        }
    }

    /// Number of layers the cache covers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of sequences the cache serves.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Cached token positions of sequence `seq` (identical across layers once populated).
    pub fn seq_len(&self, seq: usize) -> usize {
        self.layers.first().map_or(0, |l| l.seq_len(seq))
    }

    /// Accesses the shared storage of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer(&self, layer: usize) -> &BatchedLayerCache {
        &self.layers[layer]
    }

    /// Mutably accesses the shared storage of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_mut(&mut self, layer: usize) -> &mut BatchedLayerCache {
        &mut self.layers[layer]
    }
}

/// One generation request handed to the [`BatchScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// Prompt tokens (must be non-empty).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate for this request.
    pub max_new_tokens: usize,
}

impl BatchRequest {
    /// Creates a request.
    pub fn new(prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        Self {
            prompt,
            max_new_tokens,
        }
    }
}

/// Packs ragged prompts into one shared prefill, then drives lockstep decode with
/// per-sequence completion.
///
/// Each lockstep step stacks the pending token of every still-active sequence into one
/// decode forward; sequences that reach their requested length simply stop contributing rows
/// (their batch index — and therefore per-sequence attribution — stays stable). Output is
/// token-identical to running [`Model::generate`] once per request.
///
/// # Example
///
/// ```
/// use realm_llm::batch::{BatchRequest, BatchScheduler};
/// use realm_llm::{config::ModelConfig, model::Model, NoopHook};
///
/// # fn main() -> Result<(), realm_llm::LlmError> {
/// let model = Model::new(&ModelConfig::tiny_opt(), 42)?;
/// let requests = vec![
///     BatchRequest::new(vec![1, 5, 9], 4),
///     BatchRequest::new(vec![2, 7], 6),
/// ];
/// let outputs = BatchScheduler::new(&model).run(&requests, &mut NoopHook)?;
/// assert_eq!(outputs[0].tokens.len(), 4);
/// assert_eq!(outputs[1].tokens.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchScheduler<'m> {
    model: &'m Model,
}

impl<'m> BatchScheduler<'m> {
    /// Creates a scheduler driving `model`.
    pub fn new(model: &'m Model) -> Self {
        Self { model }
    }

    /// Runs every request to completion and returns one [`GenerationOutput`] per request,
    /// in request order.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty request list, empty prompts, out-of-range tokens, or
    /// any request whose prompt plus generation budget exceeds the model's context window.
    pub fn run(
        &self,
        requests: &[BatchRequest],
        hook: &mut dyn GemmHook,
    ) -> Result<Vec<GenerationOutput>> {
        let max_seq_len = self.model.config().max_seq_len;
        for (i, request) in requests.iter().enumerate() {
            if request.prompt.len() + request.max_new_tokens > max_seq_len {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "request {i}: prompt ({}) plus generation ({}) exceeds max_seq_len \
                         {max_seq_len}",
                        request.prompt.len(),
                        request.max_new_tokens
                    ),
                });
            }
        }
        let prompts: Vec<Vec<u32>> = requests.iter().map(|r| r.prompt.clone()).collect();
        let (logits, mut cache) = self.model.prefill_batch(&prompts, hook)?;

        struct SeqState {
            tokens: Vec<u32>,
            margins: Vec<f32>,
            next: u32,
            margin: f32,
            target: usize,
        }
        let mut states: Vec<SeqState> = logits
            .iter()
            .zip(requests)
            .map(|(l, request)| {
                let (next, margin) = argmax_with_margin(l.row(l.rows() - 1));
                SeqState {
                    tokens: Vec::with_capacity(request.max_new_tokens),
                    margins: Vec::with_capacity(request.max_new_tokens),
                    next,
                    margin,
                    target: request.max_new_tokens,
                }
            })
            .collect();

        loop {
            // Commit the pending token of every sequence still below its target, mirroring
            // the single-sequence `generate` loop: push first, then decode only if more
            // tokens are needed.
            for state in states.iter_mut() {
                if state.tokens.len() < state.target {
                    state.tokens.push(state.next);
                    state.margins.push(state.margin);
                }
            }
            let step: Vec<Option<u32>> = states
                .iter()
                .map(|s| (s.tokens.len() < s.target).then_some(s.next))
                .collect();
            if step.iter().all(Option::is_none) {
                break;
            }
            let step_logits = self.model.decode_step_batch(&step, &mut cache, hook)?;
            for (state, logits) in states.iter_mut().zip(step_logits) {
                if let Some(logits) = logits {
                    let (next, margin) = argmax_with_margin(&logits);
                    state.next = next;
                    state.margin = margin;
                }
            }
        }
        Ok(states
            .into_iter()
            .map(|s| GenerationOutput {
                tokens: s.tokens,
                margins: s.margins,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::NoopHook;

    #[test]
    fn batched_layer_cache_keeps_sequences_contiguous() {
        let mut cache = BatchedLayerCache::new(1, 3);
        let parts = RowPartition::from_lens(&[2, 1, 2]);
        let keys = MatF32::from_fn(5, 4, |r, c| (r * 4 + c) as f32);
        let values = keys.scale(10.0);
        cache.append_batch(&keys, &values, &parts).unwrap();
        assert_eq!(cache.seq_len(0), 2);
        assert_eq!(cache.seq_len(1), 1);
        assert_eq!(cache.seq_len(2), 2);
        assert_eq!(cache.seq_keys(1).unwrap().row(0), keys.row(2));

        // Second append with an empty group for the middle sequence.
        let parts2 = RowPartition::from_lens(&[1, 0, 1]);
        let keys2 = MatF32::from_fn(2, 4, |r, c| 100.0 + (r * 4 + c) as f32);
        cache
            .append_batch(&keys2, &keys2.scale(10.0), &parts2)
            .unwrap();
        assert_eq!(cache.seq_len(0), 3);
        assert_eq!(cache.seq_len(1), 1);
        assert_eq!(cache.seq_keys(0).unwrap().row(2), keys2.row(0));
        assert_eq!(cache.seq_keys(2).unwrap().row(2), keys2.row(1));
        assert_eq!(
            cache.seq_values(2).unwrap().row(2),
            keys2.scale(10.0).row(1)
        );
    }

    #[test]
    fn batched_cache_errors_name_the_layer() {
        let mut cache = BatchedLayerCache::new(5, 2);
        let parts = RowPartition::from_lens(&[1, 1]);
        let err = cache
            .append_batch(&MatF32::zeros(2, 4), &MatF32::zeros(3, 4), &parts)
            .unwrap_err();
        assert!(err.to_string().contains("layer 5"), "{err}");
        let err = cache
            .append_batch(
                &MatF32::zeros(3, 4),
                &MatF32::zeros(3, 4),
                &RowPartition::from_lens(&[1, 1]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("layer 5"), "{err}");
        cache
            .append_batch(&MatF32::zeros(2, 4), &MatF32::zeros(2, 4), &parts)
            .unwrap();
        let err = cache
            .append_batch(&MatF32::zeros(2, 8), &MatF32::zeros(2, 8), &parts)
            .unwrap_err();
        assert!(err.to_string().contains("layer 5"), "{err}");
    }

    #[test]
    fn batched_kv_cache_tracks_all_layers() {
        let cache = BatchedKvCache::new(3, 2);
        assert_eq!(cache.num_layers(), 3);
        assert_eq!(cache.batch_size(), 2);
        assert_eq!(cache.seq_len(0), 0);
        assert_eq!(cache.layer(2).batch_size(), 2);
    }

    #[test]
    fn scheduler_respects_per_request_budgets() {
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let requests = vec![
            BatchRequest::new(vec![1, 2, 3], 5),
            BatchRequest::new(vec![4, 5], 2),
            BatchRequest::new(vec![6], 0),
        ];
        let outputs = BatchScheduler::new(&model)
            .run(&requests, &mut NoopHook)
            .unwrap();
        assert_eq!(outputs[0].tokens.len(), 5);
        assert_eq!(outputs[1].tokens.len(), 2);
        assert!(outputs[2].tokens.is_empty());
    }

    #[test]
    fn scheduler_rejects_over_budget_requests() {
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let max = model.config().max_seq_len;
        let requests = vec![BatchRequest::new(vec![0; max], 1)];
        assert!(BatchScheduler::new(&model)
            .run(&requests, &mut NoopHook)
            .is_err());
    }
}
