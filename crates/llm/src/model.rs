//! The full generative model: embedding, block stack, final normalization and LM head.
//!
//! Inference follows the paper's two-stage split:
//!
//! * [`Model::prefill`] consumes the whole prompt at once (batched GEMMs on the systolic
//!   array) and populates the KV cache;
//! * [`Model::decode_step`] produces one token at a time, reusing the KV cache (mostly GEMV
//!   work in hardware, but numerically identical here).
//!
//! Both paths execute every quantized GEMM through the hook interface so that error
//! injection and ABFT protection see exactly the same computation.

use crate::batch::{BatchRequest, BatchScheduler, BatchedKvCache};
use crate::block::{Norm, TransformerBlock};
use crate::component::Stage;
use crate::config::ModelConfig;
use crate::hooks::GemmHook;
use crate::kv_cache::KvCache;
use crate::weights::{self, Embedding, SyntheticLanguage};
use crate::{LlmError, Result};
use realm_tensor::rng;
use realm_tensor::{gemm, GemmEngine, MatF32, RowPartition, TpGroup, TpShardStats, Workspace};
use std::sync::Arc;

/// Default temperature applied to the synthetic model's logits.
///
/// The synthetic LM head separates the preferred successor from other tokens by a wide
/// margin; the temperature softens that margin so clean perplexity lands in a realistic range
/// instead of collapsing to 1.0 (see `weights` module documentation).
pub const DEFAULT_LOGIT_TEMPERATURE: f32 = 3.0;

/// Output of an autoregressive generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationOutput {
    /// The generated tokens, in order.
    pub tokens: Vec<u32>,
    /// The greedy-decoded logit margin (top1 − top2) at each step; a crude confidence signal
    /// used by some evaluation tasks.
    pub margins: Vec<f32>,
}

/// One slot's prompt window in a batched chunked-prefill step
/// ([`Model::prefill_chunks_batch_ws`]).
#[derive(Debug, Clone)]
pub struct PrefillChunk<'a> {
    /// The full prompt the window is cut from.
    pub prompt: &'a [u32],
    /// The window of prompt positions this chunk advances; `range.start` must equal the
    /// slot's resident KV length.
    pub range: std::ops::Range<usize>,
    /// The batched-cache slot the chunk's KV rows append to.
    pub slot: usize,
}

/// A synthetic quantized LLM.
#[derive(Debug, Clone)]
pub struct Model {
    config: ModelConfig,
    embedding: Embedding,
    language: SyntheticLanguage,
    blocks: Vec<TransformerBlock>,
    final_norm: Norm,
    lm_head: MatF32,
    logit_temperature: f32,
    engine: Arc<dyn GemmEngine>,
    tp: Option<Arc<TpGroup>>,
}

impl Model {
    /// Builds a model with synthetic weights derived deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] if the configuration fails validation.
    pub fn new(config: &ModelConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let mut r = rng::seeded(rng::derive_seed(seed, MODEL_WEIGHT_STREAM));
        let language = SyntheticLanguage::new(config.vocab_size, seed);
        let embedding = weights::embedding(config, &mut r);
        let blocks = (0..config.num_layers)
            .map(|_| TransformerBlock::new(config, &mut r))
            .collect();
        let final_norm = Norm::new(config, &mut r);
        let lm_head = weights::lm_head(&embedding, &language);
        let mut model = Self {
            config: config.clone(),
            embedding,
            language,
            blocks,
            final_norm,
            lm_head,
            logit_temperature: DEFAULT_LOGIT_TEMPERATURE,
            engine: config.engine.build(),
            tp: None,
        };
        model.set_tensor_parallel(config.tp_degree);
        Ok(model)
    }

    /// The GEMM execution backend every quantized GEMM of this model runs on.
    ///
    /// Selected by [`ModelConfig::engine`] at construction; all backends are bit-exact, so
    /// swapping it changes wall-clock speed, never a single logit.
    pub fn engine(&self) -> &dyn GemmEngine {
        self.engine.as_ref()
    }

    /// Overrides the GEMM backend (e.g. to pin a characterization sweep to the oracle).
    ///
    /// When the model is tensor-parallel sharded, the rank group's resident engine is
    /// swapped too, so shards and the unsharded layers always run the same backend.
    pub fn set_engine(&mut self, engine: Arc<dyn GemmEngine>) {
        self.engine = engine;
        if let Some(group) = &self.tp {
            group.set_engine(Arc::clone(&self.engine));
        }
    }

    /// Re-shards every static-weight GEMM of the model over a fresh group of `degree`
    /// persistent tensor-parallel ranks (`realm_tensor::tp`); `degree <= 1` tears the
    /// rank pool down and restores the unsharded single-device path. Sharding is
    /// bit-exact: tokens, logits and ABFT checksum deviations are unchanged at any
    /// degree. `config().tp_degree` is updated to match (degree 0 is stored as 1).
    pub fn set_tensor_parallel(&mut self, degree: usize) {
        self.config.tp_degree = degree.max(1);
        self.tp = if self.config.tp_degree > 1 {
            Some(Arc::new(TpGroup::new(
                self.config.tp_degree,
                Arc::clone(&self.engine),
            )))
        } else {
            None
        };
        for block in &mut self.blocks {
            block.set_tensor_parallel(self.tp.as_ref());
        }
    }

    /// The tensor-parallel rank group every linear layer is sharded over, or `None` on
    /// the unsharded path. Exposes per-shard reliability stats
    /// ([`TpGroup::shard_stats`]) and the whole-shard fault hooks used by the
    /// injection and serving layers.
    pub fn tp_group(&self) -> Option<&Arc<TpGroup>> {
        self.tp.as_ref()
    }

    /// Per-shard reliability counters summed over every sharded layer of the model
    /// (empty slice semantics: unsharded models report no shards). Convenience for
    /// [`TpGroup::shard_stats`].
    pub fn shard_stats(&self) -> Vec<TpShardStats> {
        self.tp.as_ref().map_or_else(Vec::new, |g| g.shard_stats())
    }

    /// Routes every static-weight GEMM in the model through the packed (default) or
    /// unpacked weight path. Both paths are bit-identical on every backend; the switch
    /// exists for the packed-vs-unpacked decode benchmarks and differential tests (the
    /// `lm_head` stays in f32 and is unaffected).
    pub fn set_weight_packing(&mut self, enabled: bool) {
        for block in &mut self.blocks {
            block.set_weight_packing(enabled);
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The synthetic language the model was constructed to predict.
    pub fn language(&self) -> &SyntheticLanguage {
        &self.language
    }

    /// Indices of the outlier channels baked into every token embedding.
    pub fn outlier_channels(&self) -> &[usize] {
        &self.embedding.outlier_channels
    }

    /// Current logit temperature.
    pub fn logit_temperature(&self) -> f32 {
        self.logit_temperature
    }

    /// Overrides the logit temperature (useful for calibrating task difficulty).
    pub fn set_logit_temperature(&mut self, temperature: f32) {
        self.logit_temperature = temperature.max(1e-3);
    }

    /// Creates an empty KV cache sized for this model, with per-layer storage reserved for
    /// the full context window so steady-state decode appends never re-allocate.
    pub fn new_cache(&self) -> KvCache {
        KvCache::with_capacity(self.config.num_layers, self.config.max_seq_len)
    }

    /// Creates an empty batched KV cache for `batch_size` sequences.
    pub fn new_batched_cache(&self, batch_size: usize) -> BatchedKvCache {
        BatchedKvCache::new(self.config.num_layers, batch_size)
    }

    /// Embeds a token sequence into a `(tokens, hidden)` activation matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::TokenOutOfRange`] if any token exceeds the vocabulary and
    /// [`LlmError::InvalidSequence`] if the sequence is empty.
    pub fn embed(&self, tokens: &[u32]) -> Result<MatF32> {
        if tokens.is_empty() {
            return Err(LlmError::InvalidSequence {
                detail: "cannot embed an empty token sequence".into(),
            });
        }
        for &t in tokens {
            if t as usize >= self.config.vocab_size {
                return Err(LlmError::TokenOutOfRange {
                    token: t,
                    vocab: self.config.vocab_size,
                });
            }
        }
        Ok(MatF32::from_fn(
            tokens.len(),
            self.config.hidden_size,
            |r, c| self.embedding.table[(tokens[r] as usize, c)],
        ))
    }

    /// [`Model::embed`] into caller-provided (typically workspace-pooled) storage,
    /// reshaped in place with identical values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::embed`].
    pub fn embed_into(&self, tokens: &[u32], out: &mut MatF32) -> Result<()> {
        if tokens.is_empty() {
            return Err(LlmError::InvalidSequence {
                detail: "cannot embed an empty token sequence".into(),
            });
        }
        for &t in tokens {
            if t as usize >= self.config.vocab_size {
                return Err(LlmError::TokenOutOfRange {
                    token: t,
                    vocab: self.config.vocab_size,
                });
            }
        }
        out.resize_overwrite(tokens.len(), self.config.hidden_size);
        for (r, &t) in tokens.iter().enumerate() {
            out.row_mut(r)
                .copy_from_slice(self.embedding.table.row(t as usize));
        }
        Ok(())
    }

    fn run_blocks_ws(
        &self,
        mut x: MatF32,
        stage: Stage,
        cache: &mut KvCache,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let mut sequence = 0usize;
        for (layer, block) in self.blocks.iter().enumerate() {
            x = block.forward_ws(
                x,
                layer,
                stage,
                cache.layer_mut(layer),
                &mut sequence,
                self.engine.as_ref(),
                hook,
                ws,
            )?;
        }
        Ok(x)
    }

    fn run_blocks_batch_ws(
        &self,
        mut x: MatF32,
        parts: &RowPartition,
        stage: Stage,
        cache: &mut BatchedKvCache,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let mut sequence = 0usize;
        for (layer, block) in self.blocks.iter().enumerate() {
            x = block.forward_batch_ws(
                x,
                parts,
                layer,
                stage,
                cache.layer_mut(layer),
                &mut sequence,
                self.engine.as_ref(),
                hook,
                ws,
            )?;
        }
        Ok(x)
    }

    /// Final norm, LM head and temperature scaling over an owned (workspace-pooled) hidden
    /// state; `hidden` is recycled and the returned logits matrix is workspace-pooled.
    fn logits_from_hidden_ws(&self, hidden: MatF32, ws: &mut Workspace) -> Result<MatF32> {
        let mut normed = ws.take_mat_f32(hidden.rows(), hidden.cols());
        self.final_norm.forward_into(&hidden, &mut normed);
        ws.recycle_mat_f32(hidden);
        let mut logits = ws.take_mat_f32(normed.rows(), self.lm_head.cols());
        let ran = gemm::gemm_f32_into(&normed, &self.lm_head, &mut logits);
        ws.recycle_mat_f32(normed);
        if let Err(e) = ran {
            ws.recycle_mat_f32(logits);
            return Err(e.into());
        }
        logits.scale_in_place(1.0 / self.logit_temperature);
        Ok(logits)
    }

    /// Runs the prefill stage over a prompt, returning per-position logits and the KV cache.
    ///
    /// Row `i` of the returned logits predicts the token at position `i + 1`, which is what
    /// perplexity evaluation needs.
    ///
    /// # Errors
    ///
    /// Returns an error for empty prompts, out-of-range tokens, prompts longer than the
    /// configured context, or internal shape mismatches.
    pub fn prefill(&self, prompt: &[u32], hook: &mut dyn GemmHook) -> Result<(MatF32, KvCache)> {
        let mut ws = Workspace::new();
        self.prefill_ws(prompt, hook, &mut ws)
    }

    /// [`Model::prefill`] drawing every intermediate from `ws`. The returned logits matrix
    /// is workspace-pooled (recycle it once consumed); output is bit-identical to
    /// [`Model::prefill`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::prefill`].
    pub fn prefill_ws(
        &self,
        prompt: &[u32],
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<(MatF32, KvCache)> {
        let mut cache = self.new_cache();
        let logits = self.prefill_ws_into(prompt, hook, ws, &mut cache)?;
        Ok((logits, cache))
    }

    /// [`Model::prefill_ws`] into a caller-provided empty cache.
    ///
    /// [`Model::new_cache`] reserves the full context window per layer — right for a
    /// cache that will live through a decode loop, wasteful for the serving layer's
    /// admission prefills whose cache is copied into a batch slot and dropped. Those
    /// paths pass an unreserved `KvCache::new(num_layers)` here and pay exactly the
    /// prompt-sized storage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::prefill`], plus an error if `cache` has the wrong
    /// layer count or already holds rows.
    pub fn prefill_ws_into(
        &self,
        prompt: &[u32],
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
        cache: &mut KvCache,
    ) -> Result<MatF32> {
        if prompt.len() > self.config.max_seq_len {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "prompt of {} tokens exceeds max_seq_len {}",
                    prompt.len(),
                    self.config.max_seq_len
                ),
            });
        }
        if cache.num_layers() != self.config.num_layers || cache.seq_len() != 0 {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "prefill needs an empty {}-layer cache (got {} layers, {} cached tokens)",
                    self.config.num_layers,
                    cache.num_layers(),
                    cache.seq_len()
                ),
            });
        }
        let mut x = ws.take_mat_f32(prompt.len(), self.config.hidden_size);
        if let Err(e) = self.embed_into(prompt, &mut x) {
            ws.recycle_mat_f32(x);
            return Err(e);
        }
        let hidden = self.run_blocks_ws(x, Stage::Prefill, cache, hook, ws)?;
        self.logits_from_hidden_ws(hidden, ws)
    }

    /// Runs one prefill **chunk** — the token window `range` of `prompt` — against a
    /// partially-filled cache, returning the chunk's per-position logits.
    ///
    /// The cache must hold exactly `range.start` resident tokens (the previously
    /// prefilled prefix). Chunked prefill is **bit-identical** to the monolithic
    /// [`Model::prefill`] at any chunk granularity on every backend and TP degree:
    /// activations are quantized per row and every query row's attention GEMMs run
    /// against exactly its visible prefix of the cache, so no number in the forward pass
    /// depends on where the chunk boundaries fall (`tests/chunked_parity.rs`).
    ///
    /// This is the substrate of the serving layer's budgeted prefill: a long prompt is
    /// advanced a budget-bounded window at a time between decode steps instead of
    /// stalling every in-flight request for the whole prompt.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty or out-of-bounds `range`, out-of-range tokens, a
    /// prompt longer than the configured context, or a cache whose layer count or
    /// resident length does not match `range.start`.
    pub fn prefill_chunk_ws(
        &self,
        prompt: &[u32],
        range: std::ops::Range<usize>,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
        cache: &mut KvCache,
    ) -> Result<MatF32> {
        if prompt.len() > self.config.max_seq_len {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "prompt of {} tokens exceeds max_seq_len {}",
                    prompt.len(),
                    self.config.max_seq_len
                ),
            });
        }
        if range.is_empty() || range.end > prompt.len() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "chunk {}..{} is empty or exceeds the {}-token prompt",
                    range.start,
                    range.end,
                    prompt.len()
                ),
            });
        }
        if cache.num_layers() != self.config.num_layers || cache.seq_len() != range.start {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "chunk {}..{} needs a {}-layer cache holding exactly {} resident tokens \
                     (got {} layers, {} tokens)",
                    range.start,
                    range.end,
                    self.config.num_layers,
                    range.start,
                    cache.num_layers(),
                    cache.seq_len()
                ),
            });
        }
        let mut x = ws.take_mat_f32(range.len(), self.config.hidden_size);
        if let Err(e) = self.embed_into(&prompt[range], &mut x) {
            ws.recycle_mat_f32(x);
            return Err(e);
        }
        let hidden = self.run_blocks_ws(x, Stage::Prefill, cache, hook, ws)?;
        self.logits_from_hidden_ws(hidden, ws)
    }

    /// [`Model::prefill_chunk_ws`] against one **slot** of a batched cache: the chunk's
    /// rows are announced to the hook as a [`RowPartition`] whose only non-empty group is
    /// `slot`, so protectors attribute any detection in the chunk's GEMMs to the right
    /// sequence and apply that sequence's protection scheme — the same machinery the
    /// lockstep decode step uses, now shared by the serving layer's budgeted admission.
    ///
    /// The returned logits matrix (`range.len()` rows) is workspace-pooled; recycle it
    /// once consumed. Bit-identical to a monolithic solo prefill of the same prompt.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::prefill_chunk_ws`], with the resident length checked
    /// on `slot` of the batched cache.
    pub fn prefill_chunk_slot_ws(
        &self,
        prompt: &[u32],
        range: std::ops::Range<usize>,
        slot: usize,
        cache: &mut BatchedKvCache,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        if prompt.len() > self.config.max_seq_len {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "prompt of {} tokens exceeds max_seq_len {}",
                    prompt.len(),
                    self.config.max_seq_len
                ),
            });
        }
        if range.is_empty() || range.end > prompt.len() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "chunk {}..{} is empty or exceeds the {}-token prompt",
                    range.start,
                    range.end,
                    prompt.len()
                ),
            });
        }
        if slot >= cache.batch_size() || cache.num_layers() != self.config.num_layers {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "chunk targets slot {slot} of a {}-slot, {}-layer batched cache \
                     (model has {} layers)",
                    cache.batch_size(),
                    cache.num_layers(),
                    self.config.num_layers
                ),
            });
        }
        if cache.seq_len(slot) != range.start {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "chunk {}..{} needs slot {slot} to hold exactly {} resident tokens \
                     (got {})",
                    range.start,
                    range.end,
                    range.start,
                    cache.seq_len(slot)
                ),
            });
        }
        let mut lens = vec![0usize; cache.batch_size()];
        lens[slot] = range.len();
        let parts = RowPartition::from_lens(&lens);
        hook.on_batch_begin(&parts);
        let mut x = ws.take_mat_f32(range.len(), self.config.hidden_size);
        if let Err(e) = self.embed_into(&prompt[range], &mut x) {
            ws.recycle_mat_f32(x);
            return Err(e);
        }
        let hidden = self.run_blocks_batch_ws(x, &parts, Stage::Prefill, cache, hook, ws)?;
        self.logits_from_hidden_ws(hidden, ws)
    }

    /// Advances several slots' chunked prefills in **one** batched forward: every chunk's
    /// rows are stacked into a single activation matrix (announced to the hook as one
    /// [`RowPartition`] with one group per slot), so the shared weight GEMMs — and their
    /// checksums — run once for the whole step instead of once per slot. This is what
    /// keeps the serving layer's budgeted admission as cheap as the old batched admission
    /// prefill: a wave of admissions costs one forward, not one forward per request.
    ///
    /// Per-row activation quantization and per-query-row visible-prefix attention make
    /// each chunk's rows independent of its batch neighbours, so every returned logits
    /// matrix (one per chunk, in `chunks` order, each an ordinary owned value) is
    /// bit-identical to advancing that slot alone via
    /// [`Model::prefill_chunk_slot_ws`].
    ///
    /// # Errors
    ///
    /// Returns an error for an empty chunk list, duplicate slots, or any chunk failing
    /// the [`Model::prefill_chunk_slot_ws`] validation (window bounds, slot bounds,
    /// resident-prefix mismatch).
    pub fn prefill_chunks_batch_ws(
        &self,
        chunks: &[PrefillChunk<'_>],
        cache: &mut BatchedKvCache,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<Vec<MatF32>> {
        if chunks.is_empty() {
            return Err(LlmError::InvalidSequence {
                detail: "cannot advance an empty chunk batch".into(),
            });
        }
        if cache.num_layers() != self.config.num_layers {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "chunk batch needs a {}-layer cache (got {})",
                    self.config.num_layers,
                    cache.num_layers()
                ),
            });
        }
        let mut lens = vec![0usize; cache.batch_size()];
        for chunk in chunks {
            if chunk.prompt.len() > self.config.max_seq_len {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "prompt of {} tokens exceeds max_seq_len {}",
                        chunk.prompt.len(),
                        self.config.max_seq_len
                    ),
                });
            }
            if chunk.range.is_empty() || chunk.range.end > chunk.prompt.len() {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "chunk {}..{} is empty or exceeds the {}-token prompt",
                        chunk.range.start,
                        chunk.range.end,
                        chunk.prompt.len()
                    ),
                });
            }
            if chunk.slot >= cache.batch_size() {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "chunk targets slot {} of a {}-slot batched cache",
                        chunk.slot,
                        cache.batch_size()
                    ),
                });
            }
            if lens[chunk.slot] != 0 {
                return Err(LlmError::InvalidSequence {
                    detail: format!("slot {} appears twice in the chunk batch", chunk.slot),
                });
            }
            if cache.seq_len(chunk.slot) != chunk.range.start {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "chunk {}..{} needs slot {} to hold exactly {} resident tokens \
                         (got {})",
                        chunk.range.start,
                        chunk.range.end,
                        chunk.slot,
                        chunk.range.start,
                        cache.seq_len(chunk.slot)
                    ),
                });
            }
            lens[chunk.slot] = chunk.range.len();
        }
        let parts = RowPartition::from_lens(&lens);
        hook.on_batch_begin(&parts);
        // Activation rows must follow slot order (the partition's group order), not the
        // caller's chunk order.
        let mut by_slot: Vec<&PrefillChunk<'_>> = chunks.iter().collect();
        by_slot.sort_unstable_by_key(|c| c.slot);
        let stacked: Vec<u32> = by_slot
            .iter()
            .flat_map(|c| c.prompt[c.range.clone()].iter().copied())
            .collect();
        let mut x = ws.take_mat_f32(stacked.len(), self.config.hidden_size);
        if let Err(e) = self.embed_into(&stacked, &mut x) {
            ws.recycle_mat_f32(x);
            return Err(e);
        }
        let hidden = self.run_blocks_batch_ws(x, &parts, Stage::Prefill, cache, hook, ws)?;
        let logits = self.logits_from_hidden_ws(hidden, ws)?;
        let per_chunk = chunks
            .iter()
            .map(|c| {
                let range = parts.range(c.slot);
                logits
                    .rows_slice(range.start, range.len())
                    .map_err(Into::into)
            })
            .collect::<Result<Vec<_>>>();
        ws.recycle_mat_f32(logits);
        per_chunk
    }

    /// Runs one decode step for `token`, updating the KV cache, and returns the logits for
    /// the next token.
    ///
    /// # Errors
    ///
    /// Returns an error if the token is out of range or the context length is exceeded.
    pub fn decode_step(
        &self,
        token: u32,
        cache: &mut KvCache,
        hook: &mut dyn GemmHook,
    ) -> Result<Vec<f32>> {
        let mut ws = Workspace::new();
        self.decode_step_ws(token, cache, hook, &mut ws)
    }

    /// [`Model::decode_step`] drawing every intermediate from `ws` — with a long-lived
    /// workspace this is the allocation-free decode hot loop (`tests/zero_alloc.rs` proves
    /// zero heap allocations per step after warmup on the reference backend). The returned
    /// logits vector is workspace-pooled; recycle it with
    /// [`Workspace::recycle_vec_f32`] once consumed. Output is bit-identical to
    /// [`Model::decode_step`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::decode_step`].
    pub fn decode_step_ws(
        &self,
        token: u32,
        cache: &mut KvCache,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<Vec<f32>> {
        if cache.seq_len() >= self.config.max_seq_len {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "KV cache already holds {} tokens (max_seq_len {})",
                    cache.seq_len(),
                    self.config.max_seq_len
                ),
            });
        }
        let mut x = ws.take_mat_f32(1, self.config.hidden_size);
        if let Err(e) = self.embed_into(&[token], &mut x) {
            ws.recycle_mat_f32(x);
            return Err(e);
        }
        let hidden = self.run_blocks_ws(x, Stage::Decode, cache, hook, ws)?;
        let logits = self.logits_from_hidden_ws(hidden, ws)?;
        let mut row = ws.take_vec_f32(logits.cols());
        row.copy_from_slice(logits.row(0));
        ws.recycle_mat_f32(logits);
        Ok(row)
    }

    /// Runs one shared prefill over a ragged batch of prompts, returning per-sequence
    /// logits and the populated batched KV cache.
    ///
    /// All prompts are stacked into one `(sum_tokens, hidden)` activation matrix, so every
    /// shared component (`Q`/`K`/`V`/`O`, MLP) runs — and is checksummed/inspected — once
    /// per layer for the whole batch instead of once per sequence. Per-sequence logits are
    /// bit-identical to running [`Model::prefill`] on each prompt alone.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch, empty prompts, out-of-range tokens, or prompts
    /// longer than the configured context.
    pub fn prefill_batch(
        &self,
        prompts: &[Vec<u32>],
        hook: &mut dyn GemmHook,
    ) -> Result<(Vec<MatF32>, BatchedKvCache)> {
        let mut ws = Workspace::new();
        self.prefill_batch_ws(prompts, hook, &mut ws)
    }

    /// [`Model::prefill_batch`] drawing every intermediate from `ws`. The per-sequence
    /// logits matrices are ordinary owned values (one fresh slice per sequence — admission
    /// is not the per-token hot path); output is bit-identical to [`Model::prefill_batch`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::prefill_batch`].
    pub fn prefill_batch_ws(
        &self,
        prompts: &[Vec<u32>],
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<(Vec<MatF32>, BatchedKvCache)> {
        if prompts.is_empty() {
            return Err(LlmError::InvalidSequence {
                detail: "cannot prefill an empty batch".into(),
            });
        }
        for (i, prompt) in prompts.iter().enumerate() {
            if prompt.is_empty() {
                return Err(LlmError::InvalidSequence {
                    detail: format!("prompt {i} of the batch is empty"),
                });
            }
            if prompt.len() > self.config.max_seq_len {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "prompt {i} of {} tokens exceeds max_seq_len {}",
                        prompt.len(),
                        self.config.max_seq_len
                    ),
                });
            }
        }
        let lens: Vec<usize> = prompts.iter().map(Vec::len).collect();
        let parts = RowPartition::from_lens(&lens);
        hook.on_batch_begin(&parts);
        let stacked: Vec<u32> = prompts.iter().flatten().copied().collect();
        let mut x = ws.take_mat_f32(stacked.len(), self.config.hidden_size);
        if let Err(e) = self.embed_into(&stacked, &mut x) {
            ws.recycle_mat_f32(x);
            return Err(e);
        }
        let mut cache = self.new_batched_cache(prompts.len());
        let hidden = self.run_blocks_batch_ws(x, &parts, Stage::Prefill, &mut cache, hook, ws)?;
        let logits = self.logits_from_hidden_ws(hidden, ws)?;
        let per_seq = (0..parts.num_groups())
            .map(|g| {
                let range = parts.range(g);
                logits
                    .rows_slice(range.start, range.len())
                    .map_err(Into::into)
            })
            .collect::<Result<Vec<_>>>();
        ws.recycle_mat_f32(logits);
        Ok((per_seq?, cache))
    }

    /// Runs one lockstep decode step for a batch: `tokens[i]` is the pending token of
    /// sequence `i`, or `None` for sequences that have completed (they contribute no rows).
    ///
    /// Returns the next-token logits per sequence (`None` for inactive sequences). Logits
    /// are bit-identical to running [`Model::decode_step`] per sequence.
    ///
    /// # Errors
    ///
    /// Returns an error if `tokens` does not match the cache's batch size, a token is out
    /// of range, or an active sequence would exceed the context window.
    pub fn decode_step_batch(
        &self,
        tokens: &[Option<u32>],
        cache: &mut BatchedKvCache,
        hook: &mut dyn GemmHook,
    ) -> Result<Vec<Option<Vec<f32>>>> {
        let mut ws = Workspace::new();
        self.decode_step_batch_ws(tokens, cache, hook, &mut ws)
    }

    /// [`Model::decode_step_batch`] drawing every activation intermediate from `ws` — the
    /// per-token step of the continuous-batching serving loop. Each returned per-sequence
    /// logits vector is workspace-pooled; recycle them with
    /// [`Workspace::recycle_vec_f32`] once consumed. Output is bit-identical to
    /// [`Model::decode_step_batch`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::decode_step_batch`].
    pub fn decode_step_batch_ws(
        &self,
        tokens: &[Option<u32>],
        cache: &mut BatchedKvCache,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<Vec<Option<Vec<f32>>>> {
        if tokens.len() != cache.batch_size() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "decode step has {} token slots but the cache serves {} sequences",
                    tokens.len(),
                    cache.batch_size()
                ),
            });
        }
        let active: Vec<u32> = tokens.iter().filter_map(|t| *t).collect();
        if active.is_empty() {
            return Ok(vec![None; tokens.len()]);
        }
        for (i, token) in tokens.iter().enumerate() {
            if token.is_some() && cache.seq_len(i) >= self.config.max_seq_len {
                return Err(LlmError::InvalidSequence {
                    detail: format!(
                        "sequence {i}: KV cache already holds {} tokens (max_seq_len {})",
                        cache.seq_len(i),
                        self.config.max_seq_len
                    ),
                });
            }
        }
        let lens: Vec<usize> = tokens.iter().map(|t| usize::from(t.is_some())).collect();
        let parts = RowPartition::from_lens(&lens);
        hook.on_batch_begin(&parts);
        let mut x = ws.take_mat_f32(active.len(), self.config.hidden_size);
        if let Err(e) = self.embed_into(&active, &mut x) {
            ws.recycle_mat_f32(x);
            return Err(e);
        }
        let hidden = self.run_blocks_batch_ws(x, &parts, Stage::Decode, cache, hook, ws)?;
        let logits = self.logits_from_hidden_ws(hidden, ws)?;
        let mut out = Vec::with_capacity(tokens.len());
        let mut row = 0usize;
        for token in tokens {
            if token.is_some() {
                let mut seq_logits = ws.take_vec_f32(logits.cols());
                seq_logits.copy_from_slice(logits.row(row));
                out.push(Some(seq_logits));
                row += 1;
            } else {
                out.push(None);
            }
        }
        ws.recycle_mat_f32(logits);
        Ok(out)
    }

    /// Batched greedy generation: one shared prefill, then lockstep decode until every
    /// sequence has produced `num_tokens` tokens.
    ///
    /// Token-identical to calling [`Model::generate`] once per prompt; for per-request
    /// generation budgets use [`BatchScheduler`] directly.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Model::prefill_batch`] and [`Model::decode_step_batch`].
    pub fn generate_batch(
        &self,
        prompts: &[Vec<u32>],
        num_tokens: usize,
        hook: &mut dyn GemmHook,
    ) -> Result<Vec<GenerationOutput>> {
        let requests: Vec<BatchRequest> = prompts
            .iter()
            .map(|p| BatchRequest::new(p.clone(), num_tokens))
            .collect();
        BatchScheduler::new(self).run(&requests, hook)
    }

    /// Greedy autoregressive generation: prefill the prompt, then generate `num_tokens`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Model::prefill`] and [`Model::decode_step`]; also returns
    /// [`LlmError::InvalidSequence`] if the total length would exceed the context window.
    pub fn generate(
        &self,
        prompt: &[u32],
        num_tokens: usize,
        hook: &mut dyn GemmHook,
    ) -> Result<GenerationOutput> {
        if prompt.len() + num_tokens > self.config.max_seq_len {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "prompt ({}) plus generation ({num_tokens}) exceeds max_seq_len {}",
                    prompt.len(),
                    self.config.max_seq_len
                ),
            });
        }
        // One workspace for the whole generation: the prefill warms the pools and every
        // decode step after that reuses them.
        let mut ws = Workspace::new();
        let (logits, mut cache) = self.prefill_ws(prompt, hook, &mut ws)?;
        let (mut next, mut margin) = argmax_with_margin(logits.row(logits.rows() - 1));
        ws.recycle_mat_f32(logits);
        let mut tokens = Vec::with_capacity(num_tokens);
        let mut margins = Vec::with_capacity(num_tokens);
        for _ in 0..num_tokens {
            tokens.push(next);
            margins.push(margin);
            if tokens.len() == num_tokens {
                break;
            }
            let step_logits = self.decode_step_ws(next, &mut cache, hook, &mut ws)?;
            let (n, m) = argmax_with_margin(&step_logits);
            ws.recycle_vec_f32(step_logits);
            ws.reset();
            next = n;
            margin = m;
        }
        Ok(GenerationOutput { tokens, margins })
    }

    /// Total number of multiply-accumulate operations for a prefill of `prompt_len` tokens.
    ///
    /// Used by the energy model to translate a workload into systolic-array activity.
    pub fn prefill_macs(&self, prompt_len: usize) -> u64 {
        let h = self.config.hidden_size as u64;
        let f = self.config.ffn_size as u64;
        let t = prompt_len as u64;
        let heads = self.config.num_heads as u64;
        let d = self.config.head_dim() as u64;
        let attn_proj = 4 * t * h * h; // Q, K, V, O
                                       // QK^T and SV per head: query position p multiplies against its p+1 visible
                                       // cache rows, so each side sums to d * t(t+1)/2.
        let attn_scores = heads * d * t * (t + 1);
        let mlp = match self.config.architecture {
            crate::Architecture::OptStyle => 2 * t * h * f,
            crate::Architecture::LlamaStyle => 3 * t * h * f,
        };
        (attn_proj + attn_scores + mlp) * self.config.num_layers as u64
    }
}

/// Returns the index of the maximum logit and the margin to the runner-up.
pub fn argmax_with_margin(logits: &[f32]) -> (u32, f32) {
    let mut best = (0usize, f32::NEG_INFINITY);
    let mut second = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if v > best.1 {
            second = best.1;
            best = (i, v);
        } else if v > second {
            second = v;
        }
    }
    let margin = if second.is_finite() {
        best.1 - second
    } else {
        0.0
    };
    (best.0 as u32, margin)
}

/// Internal stream label separating weight generation from other seed-derived streams.
const MODEL_WEIGHT_STREAM: u64 = 0x004d_4f44_454c;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{NoopHook, RecordingHook};
    use crate::Component;

    #[test]
    fn model_builds_for_all_presets() {
        for config in [
            ModelConfig::tiny_opt(),
            ModelConfig::tiny_llama(),
            ModelConfig::opt_1_3b_proxy(),
        ] {
            let m = Model::new(&config, 1).unwrap();
            assert_eq!(m.config().name, config.name);
        }
    }

    #[test]
    fn model_is_deterministic_in_seed() {
        let config = ModelConfig::tiny_opt();
        let a = Model::new(&config, 5).unwrap();
        let b = Model::new(&config, 5).unwrap();
        let (la, _) = a.prefill(&[1, 2, 3], &mut NoopHook).unwrap();
        let (lb, _) = b.prefill(&[1, 2, 3], &mut NoopHook).unwrap();
        assert_eq!(la, lb);
    }

    #[test]
    fn embed_validates_tokens() {
        let m = Model::new(&ModelConfig::tiny_opt(), 0).unwrap();
        assert!(m.embed(&[]).is_err());
        assert!(m.embed(&[1000]).is_err());
        assert!(m.embed(&[0, 1, 2]).is_ok());
    }

    #[test]
    fn prefill_produces_one_logit_row_per_token() {
        let config = ModelConfig::tiny_opt();
        let m = Model::new(&config, 3).unwrap();
        let (logits, cache) = m.prefill(&[1, 2, 3, 4, 5], &mut NoopHook).unwrap();
        assert_eq!(logits.shape(), (5, config.vocab_size));
        assert_eq!(cache.seq_len(), 5);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prefill_rejects_overlong_prompt() {
        let config = ModelConfig::tiny_opt();
        let m = Model::new(&config, 3).unwrap();
        let prompt: Vec<u32> = (0..config.max_seq_len as u32 + 1).map(|t| t % 8).collect();
        assert!(m.prefill(&prompt, &mut NoopHook).is_err());
    }

    #[test]
    fn clean_model_predicts_successor_tokens() {
        let config = ModelConfig::tiny_opt();
        let m = Model::new(&config, 7).unwrap();
        let lang = m.language().clone();
        // Build a prompt that follows the synthetic language exactly.
        let mut prompt = vec![3u32];
        for _ in 0..10 {
            prompt.push(lang.successor(*prompt.last().unwrap()));
        }
        let (logits, _) = m.prefill(&prompt, &mut NoopHook).unwrap();
        let mut correct = 0;
        for i in 0..prompt.len() - 1 {
            let (pred, _) = argmax_with_margin(logits.row(i));
            if pred == prompt[i + 1] {
                correct += 1;
            }
        }
        assert!(
            correct as f32 / (prompt.len() - 1) as f32 > 0.6,
            "clean model should usually predict the successor ({correct}/{})",
            prompt.len() - 1
        );
    }

    #[test]
    fn generate_respects_requested_length_and_context() {
        let config = ModelConfig::tiny_opt();
        let m = Model::new(&config, 9).unwrap();
        let out = m.generate(&[1, 2, 3], 6, &mut NoopHook).unwrap();
        assert_eq!(out.tokens.len(), 6);
        assert_eq!(out.margins.len(), 6);
        assert!(out.tokens.iter().all(|&t| (t as usize) < config.vocab_size));
        let too_long = m.generate(&[0; 30], 10, &mut NoopHook);
        assert!(too_long.is_err());
    }

    #[test]
    fn decode_steps_use_decode_stage() {
        let config = ModelConfig::tiny_opt();
        let m = Model::new(&config, 9).unwrap();
        let (_, mut cache) = m.prefill(&[1, 2], &mut NoopHook).unwrap();
        let mut rec = RecordingHook::new();
        m.decode_step(5, &mut cache, &mut rec).unwrap();
        assert!(!rec.calls.is_empty());
        assert!(rec.calls.iter().all(|c| c.stage == Stage::Decode));
        assert_eq!(rec.count_for(Component::O), config.num_layers);
    }

    #[test]
    fn sharded_model_is_bit_exact_with_unsharded() {
        for config in [ModelConfig::tiny_opt(), ModelConfig::tiny_llama()] {
            let base = Model::new(&config, 11).unwrap();
            let mut sharded_cfg = config.clone();
            sharded_cfg.tp_degree = 3;
            let sharded = Model::new(&sharded_cfg, 11).unwrap();
            assert!(sharded.tp_group().is_some());
            let a = base.generate(&[1, 2, 3], 8, &mut NoopHook).unwrap();
            let b = sharded.generate(&[1, 2, 3], 8, &mut NoopHook).unwrap();
            assert_eq!(a, b, "{}", config.name);
        }
    }

    #[test]
    fn set_tensor_parallel_reshards_and_restores_in_place() {
        let config = ModelConfig::tiny_opt();
        let mut m = Model::new(&config, 4).unwrap();
        let clean = m.generate(&[2, 3], 6, &mut NoopHook).unwrap();
        m.set_tensor_parallel(4);
        assert_eq!(m.config().tp_degree, 4);
        assert_eq!(m.shard_stats().len(), 4);
        assert_eq!(m.generate(&[2, 3], 6, &mut NoopHook).unwrap(), clean);
        m.set_tensor_parallel(0);
        assert_eq!(m.config().tp_degree, 1);
        assert!(m.tp_group().is_none() && m.shard_stats().is_empty());
        assert_eq!(m.generate(&[2, 3], 6, &mut NoopHook).unwrap(), clean);
    }

    #[test]
    fn chunked_prefill_is_bit_exact_with_monolithic() {
        let config = ModelConfig::tiny_opt();
        let m = Model::new(&config, 21).unwrap();
        let prompt: Vec<u32> = (0..9u32).map(|t| (t * 3 + 1) % 16).collect();
        let (full, full_cache) = m.prefill(&prompt, &mut NoopHook).unwrap();
        for chunk in [1usize, 2, 4, 9] {
            let mut ws = Workspace::new();
            let mut cache = m.new_cache();
            let mut row = 0usize;
            let mut start = 0usize;
            while start < prompt.len() {
                let end = (start + chunk).min(prompt.len());
                let logits = m
                    .prefill_chunk_ws(&prompt, start..end, &mut NoopHook, &mut ws, &mut cache)
                    .unwrap();
                for r in 0..logits.rows() {
                    assert_eq!(
                        full.row(row),
                        logits.row(r),
                        "chunk size {chunk}, position {row}"
                    );
                    row += 1;
                }
                ws.recycle_mat_f32(logits);
                start = end;
            }
            assert_eq!(cache.seq_len(), prompt.len());
            for layer in 0..cache.num_layers() {
                assert_eq!(
                    cache.layer(layer).keys(),
                    full_cache.layer(layer).keys(),
                    "chunk size {chunk}, layer {layer} keys"
                );
            }
        }
        // Validation: empty window, misaligned resident prefix, overlong prompt.
        let mut ws = Workspace::new();
        let mut cache = m.new_cache();
        assert!(m
            .prefill_chunk_ws(&prompt, 3..3, &mut NoopHook, &mut ws, &mut cache)
            .is_err());
        assert!(m
            .prefill_chunk_ws(&prompt, 2..4, &mut NoopHook, &mut ws, &mut cache)
            .is_err());
        let long = vec![0u32; config.max_seq_len + 1];
        assert!(m
            .prefill_chunk_ws(&long, 0..2, &mut NoopHook, &mut ws, &mut cache)
            .is_err());
    }

    #[test]
    fn chunked_slot_prefill_matches_solo_and_announces_the_slot() {
        let config = ModelConfig::tiny_opt();
        let m = Model::new(&config, 23).unwrap();
        let prompts = vec![vec![1u32, 2, 3], vec![4, 5]];
        let (_, mut batched) = m.prefill_batch(&prompts, &mut NoopHook).unwrap();
        batched.release_slot(1);

        let prompt: Vec<u32> = (0..7u32).map(|t| (t * 5 + 2) % 16).collect();
        let (full, _) = m.prefill(&prompt, &mut NoopHook).unwrap();
        let mut ws = Workspace::new();
        let mut row = 0usize;
        for range in [0..3usize, 3..4, 4..7] {
            let logits = m
                .prefill_chunk_slot_ws(&prompt, range, 1, &mut batched, &mut NoopHook, &mut ws)
                .unwrap();
            for r in 0..logits.rows() {
                assert_eq!(full.row(row), logits.row(r), "position {row}");
                row += 1;
            }
            ws.recycle_mat_f32(logits);
        }
        assert_eq!(batched.seq_len(1), prompt.len());
        assert_eq!(batched.seq_len(0), 3, "the resident neighbour is untouched");

        // Misaligned chunk and out-of-range slot are rejected.
        assert!(m
            .prefill_chunk_slot_ws(&prompt, 0..2, 1, &mut batched, &mut NoopHook, &mut ws)
            .is_err());
        assert!(m
            .prefill_chunk_slot_ws(&prompt, 0..2, 9, &mut batched, &mut NoopHook, &mut ws)
            .is_err());
    }

    #[test]
    fn prefill_macs_scale_with_sequence_length() {
        let m = Model::new(&ModelConfig::tiny_opt(), 0).unwrap();
        assert!(m.prefill_macs(16) > m.prefill_macs(4));
        assert!(m.prefill_macs(1) > 0);
    }

    #[test]
    fn argmax_with_margin_finds_top_two() {
        let (idx, margin) = argmax_with_margin(&[0.1, 3.0, 2.5, -1.0]);
        assert_eq!(idx, 1);
        assert!((margin - 0.5).abs() < 1e-6);
        let (idx, margin) = argmax_with_margin(&[7.0]);
        assert_eq!(idx, 0);
        assert_eq!(margin, 0.0);
    }
}
