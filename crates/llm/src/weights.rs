//! Synthetic weight generation with LLM-like activation statistics.
//!
//! No pretrained checkpoints are available in this reproduction, so model weights are
//! generated. Two properties of real LLMs are deliberately preserved because the paper's
//! findings depend on them:
//!
//! 1. **Outlier channels** — hidden states of real LLMs contain a small, consistent set of
//!    channels whose magnitudes are tens of times larger than the bulk (the observation that
//!    motivates SmoothQuant-style quantization, cited by the paper). These outliers dominate
//!    the mean/variance computed by LayerNorm/RMSNorm, which is what makes post-norm
//!    components error-sensitive (Fig. 5). Here they are realised as a shared outlier vector
//!    added to every token embedding.
//! 2. **Predictive structure** — to measure perplexity/accuracy degradation there must be
//!    something to degrade. A [`SyntheticLanguage`] defines a deterministic preferred
//!    successor for every token, and the language-model head is constructed so the clean
//!    model assigns high probability to that successor. Transformer blocks perturb the
//!    residual stream only mildly, so the clean model performs well; injected faults corrupt
//!    the residual stream and destroy that structure, degrading the task metrics exactly as
//!    hardware faults degrade a real LLM.

use crate::config::ModelConfig;
use realm_tensor::rng::{self, SeededRng};
use realm_tensor::MatF32;
use serde::{Deserialize, Serialize};

/// Standard deviation of the Gaussian bulk of token embeddings.
pub const EMBEDDING_STD: f32 = 1.0;
/// Standard deviation of projection weights (kept small so residual connections dominate).
pub const PROJECTION_STD: f32 = 0.02;

/// A synthetic "language": a deterministic preferred-successor map over the vocabulary.
///
/// The evaluation crate generates corpora by following the successor map with some noise;
/// the model head is constructed to predict the successor, so clean perplexity is low and
/// fault-induced degradation is measurable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticLanguage {
    vocab_size: usize,
    successor: Vec<u32>,
}

impl SyntheticLanguage {
    /// Builds the successor map for a vocabulary, derived deterministically from a seed.
    ///
    /// The map is a random permutation-like function with no short cycles fixed at identity:
    /// each token's successor is drawn uniformly, excluding itself.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 2`.
    pub fn new(vocab_size: usize, seed: u64) -> Self {
        assert!(
            vocab_size >= 2,
            "a synthetic language needs at least two tokens"
        );
        use rand::Rng;
        let mut r = rng::seeded(rng::derive_seed(seed, 0x1a16));
        let successor = (0..vocab_size)
            .map(|t| {
                let mut s = r.gen_range(0..vocab_size as u32 - 1);
                if s as usize >= t {
                    s += 1;
                }
                s
            })
            .collect();
        Self {
            vocab_size,
            successor,
        }
    }

    /// Size of the vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The preferred successor of `token`.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn successor(&self, token: u32) -> u32 {
        self.successor[token as usize]
    }

    /// The full successor table.
    pub fn successor_table(&self) -> &[u32] {
        &self.successor
    }
}

/// Token embedding table plus the channels designated as outliers.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Embedding table of shape `(vocab, hidden)`.
    pub table: MatF32,
    /// Indices of the outlier channels shared by all tokens.
    pub outlier_channels: Vec<usize>,
}

/// Generates the token-embedding table.
///
/// Every token receives an i.i.d. Gaussian embedding plus a shared outlier vector that is
/// non-zero only on `outlier_fraction` of the channels, scaled by `outlier_gain`. The shared
/// vector gives hidden states the strongly non-Gaussian, outlier-dominated per-token
/// distribution reported for real LLMs.
pub fn embedding(config: &ModelConfig, rng_: &mut SeededRng) -> Embedding {
    use rand::Rng;
    let hidden = config.hidden_size;
    let outlier_channels: Vec<usize> = (0..hidden)
        .filter(|_| rng_.gen::<f32>() < config.outlier_fraction)
        .collect();
    // Guarantee at least one outlier channel when the fraction is non-zero so tiny test
    // configurations still exhibit the phenomenon.
    let outlier_channels = if outlier_channels.is_empty() && config.outlier_fraction > 0.0 {
        vec![hidden / 2]
    } else {
        outlier_channels
    };
    let mut outlier_vector = vec![0.0f32; hidden];
    for &c in &outlier_channels {
        let sign = if rng_.gen::<bool>() { 1.0 } else { -1.0 };
        outlier_vector[c] = sign * config.outlier_gain * EMBEDDING_STD;
    }
    let table = MatF32::from_fn(config.vocab_size, hidden, |_, c| {
        EMBEDDING_STD * rng::standard_normal(rng_) + outlier_vector[c]
    });
    Embedding {
        table,
        outlier_channels,
    }
}

/// Generates a projection weight matrix of shape `(in_features, out_features)`.
///
/// The scale is kept small relative to the embeddings so that the residual stream carries the
/// token identity through the network (real pretrained transformers behave the same way:
/// block outputs are small updates to the residual stream).
pub fn projection(rng_: &mut SeededRng, in_features: usize, out_features: usize) -> MatF32 {
    let scale = PROJECTION_STD / (in_features as f32).sqrt().max(1.0);
    rng::gaussian_matrix(
        rng_,
        in_features,
        out_features,
        0.0,
        scale * (in_features as f32).sqrt(),
    )
}

/// Builds the language-model head of shape `(hidden, vocab)` that predicts each token's
/// successor.
///
/// The column for token `j` is the sum of the *non-outlier* part of the embeddings of all
/// tokens whose successor is `j`. Excluding the outlier channels keeps the shared outlier
/// vector from leaking a constant bias into every logit, preserving the separation between
/// the correct successor's logit and the rest.
pub fn lm_head(embedding: &Embedding, language: &SyntheticLanguage) -> MatF32 {
    let (vocab, hidden) = embedding.table.shape();
    debug_assert_eq!(vocab, language.vocab_size());
    let mut head = MatF32::zeros(hidden, vocab);
    let outlier: std::collections::HashSet<usize> =
        embedding.outlier_channels.iter().copied().collect();
    for t in 0..vocab {
        let succ = language.successor(t as u32) as usize;
        for c in 0..hidden {
            if outlier.contains(&c) {
                continue;
            }
            head[(c, succ)] += embedding.table[(t, c)];
        }
    }
    head
}

/// Per-channel normalization scale with mild variation, as found in trained models.
pub fn norm_gamma(rng_: &mut SeededRng, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|_| 1.0 + 0.1 * rng::standard_normal(rng_))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::stats;

    fn cfg() -> ModelConfig {
        ModelConfig::tiny_opt()
    }

    #[test]
    fn synthetic_language_is_deterministic_and_self_avoiding() {
        let a = SyntheticLanguage::new(64, 7);
        let b = SyntheticLanguage::new(64, 7);
        assert_eq!(a, b);
        for t in 0..64u32 {
            assert_ne!(a.successor(t), t, "token {t} must not be its own successor");
            assert!((a.successor(t) as usize) < 64);
        }
        let c = SyntheticLanguage::new(64, 8);
        assert_ne!(a.successor_table(), c.successor_table());
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn synthetic_language_rejects_tiny_vocab() {
        let _ = SyntheticLanguage::new(1, 0);
    }

    #[test]
    fn embedding_has_outlier_channels() {
        let config = cfg();
        let mut r = rng::seeded(3);
        let emb = embedding(&config, &mut r);
        assert_eq!(emb.table.shape(), (config.vocab_size, config.hidden_size));
        assert!(!emb.outlier_channels.is_empty());
        // Rows should be heavy-tailed because of the shared outlier vector.
        let row = MatF32::from_vec(1, config.hidden_size, emb.table.row(0).to_vec()).unwrap();
        assert!(stats::outlier_count(&row, 3.0) >= 1);
    }

    #[test]
    fn embedding_without_outliers_is_gaussian() {
        let config = cfg().without_outliers();
        let mut r = rng::seeded(3);
        let emb = embedding(&config, &mut r);
        assert!(emb.outlier_channels.is_empty());
        let row = MatF32::from_vec(1, config.hidden_size, emb.table.row(0).to_vec()).unwrap();
        assert_eq!(stats::outlier_count(&row, 6.0), 0);
    }

    #[test]
    fn lm_head_scores_successor_highest() {
        let config = cfg();
        let language = SyntheticLanguage::new(config.vocab_size, 11);
        let mut r = rng::seeded(11);
        let emb = embedding(&config, &mut r);
        let head = lm_head(&emb, &language);
        let mut correct = 0;
        for t in 0..config.vocab_size {
            let e = emb.table.row(t);
            let mut best = (0usize, f32::NEG_INFINITY);
            for j in 0..config.vocab_size {
                let score: f32 = (0..config.hidden_size).map(|c| e[c] * head[(c, j)]).sum();
                if score > best.1 {
                    best = (j, score);
                }
            }
            if best.0 == language.successor(t as u32) as usize {
                correct += 1;
            }
        }
        let accuracy = correct as f32 / config.vocab_size as f32;
        assert!(
            accuracy > 0.8,
            "lm head should recover the successor for most tokens, got {accuracy}"
        );
    }

    #[test]
    fn projection_scale_is_small() {
        let mut r = rng::seeded(5);
        let w = projection(&mut r, 64, 64);
        let s = stats::summary(&w);
        assert!(s.std < 0.1, "projection std {} too large", s.std);
        assert!(s.mean.abs() < 0.02);
    }

    #[test]
    fn norm_gamma_is_near_one() {
        let mut r = rng::seeded(5);
        let g = norm_gamma(&mut r, 256);
        let m = g.iter().sum::<f32>() / 256.0;
        assert!((m - 1.0).abs() < 0.05);
    }
}
