//! Non-linear activation functions, kept in floating point as in the paper's setup.

use realm_tensor::MatF32;

/// Rectified linear unit, applied elementwise (OPT-style MLP).
pub fn relu(x: &MatF32) -> MatF32 {
    x.map(|v| v.max(0.0))
}

/// [`relu`] applied in place (bit-identical; the workspace-threaded MLP path rectifies the
/// pooled hidden activations without a fresh allocation).
pub fn relu_in_place(x: &mut MatF32) {
    x.apply(|v| v.max(0.0));
}

/// Sigmoid-weighted linear unit `x * sigmoid(x)`, applied elementwise (LLaMA-style MLP).
pub fn silu(x: &MatF32) -> MatF32 {
    x.map(|v| v * sigmoid(v))
}

/// [`silu`] applied in place (bit-identical).
pub fn silu_in_place(x: &mut MatF32) {
    x.apply(|v| v * sigmoid(v));
}

/// Logistic sigmoid.
pub fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Numerically stable softmax applied independently to each row.
///
/// Softmax bounds every output to `(0, 1)` and makes each row sum to 1; this is why the paper
/// finds that errors in the `QKᵀ` component stay confined (Sec. IV-A3).
pub fn softmax_rows(x: &MatF32) -> MatF32 {
    let mut out = x.clone();
    softmax_rows_in_place(&mut out);
    out
}

/// [`softmax_rows`] applied in place.
///
/// Bit-identical to the allocating path: each element becomes `exp(v − max) * inv`, with
/// the exponentials staged in the row itself instead of a per-row scratch vector — the
/// attention-score path of the allocation-free decode loop.
pub fn softmax_rows_in_place(x: &mut MatF32) {
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            let e = (*v - max).exp();
            sum += e;
            *v = e;
        }
        let inv = if sum > 0.0 { 1.0 / sum } else { 0.0 };
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Applies a causal mask in place: positions `col > row + offset` receive `-inf` before softmax.
///
/// `offset` is the number of cached tokens already attended to (0 during prefill; the current
/// cache length during decode, where each query row corresponds to one new token).
pub fn apply_causal_mask(scores: &mut MatF32, offset: usize) {
    let (rows, cols) = scores.shape();
    for r in 0..rows {
        for c in 0..cols {
            if c > r + offset {
                scores[(r, c)] = f32::NEG_INFINITY;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::MatF32;

    #[test]
    fn relu_clamps_negatives() {
        let x = MatF32::from_vec(1, 4, vec![-2.0, -0.1, 0.0, 3.0]).unwrap();
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn silu_matches_definition() {
        let x = MatF32::from_vec(1, 2, vec![0.0, 2.0]).unwrap();
        let y = silu(&x);
        assert_eq!(y[(0, 0)], 0.0);
        assert!((y[(0, 1)] - 2.0 * sigmoid(2.0)).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_bounded_and_centred() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(50.0) <= 1.0);
        assert!(sigmoid(-50.0) >= 0.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = MatF32::from_fn(3, 5, |r, c| (r as f32) - (c as f32) * 0.3);
        let s = softmax_rows(&x);
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_stable_for_huge_inputs() {
        // A corrupted accumulator can push scores to enormous values; softmax must not NaN.
        let x = MatF32::from_vec(1, 3, vec![1e30, 0.0, -1e30]).unwrap();
        let s = softmax_rows(&x);
        assert!(s.iter().all(|v| v.is_finite()));
        assert!((s[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn causal_mask_blocks_future_positions() {
        let mut scores = MatF32::zeros(3, 3);
        apply_causal_mask(&mut scores, 0);
        assert_eq!(scores[(0, 1)], f32::NEG_INFINITY);
        assert_eq!(scores[(1, 2)], f32::NEG_INFINITY);
        assert_eq!(scores[(2, 2)], 0.0);
        let s = softmax_rows(&scores);
        assert_eq!(s[(0, 0)], 1.0);
        assert_eq!(s[(0, 2)], 0.0);
    }

    #[test]
    fn causal_mask_with_offset_allows_cached_positions() {
        let mut scores = MatF32::zeros(1, 5);
        // One new query token attending to 4 cached tokens plus itself.
        apply_causal_mask(&mut scores, 4);
        assert!(scores.iter().all(|&v| v == 0.0));
    }
}
