use std::error::Error;
use std::fmt;

use realm_tensor::TensorError;

/// Errors produced by model construction and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LlmError {
    /// A configuration value is inconsistent (e.g. hidden size not divisible by heads).
    InvalidConfig {
        /// Explanation of the inconsistency.
        detail: String,
    },
    /// A token id is outside the vocabulary.
    TokenOutOfRange {
        /// The offending token id.
        token: u32,
        /// Size of the vocabulary.
        vocab: usize,
    },
    /// The prompt or generation request is empty or exceeds the configured context length.
    InvalidSequence {
        /// Explanation of the problem.
        detail: String,
    },
    /// An underlying tensor operation failed (almost always a shape bug).
    Tensor(TensorError),
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::InvalidConfig { detail } => {
                write!(f, "invalid model configuration: {detail}")
            }
            LlmError::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} out of range for vocabulary of {vocab}")
            }
            LlmError::InvalidSequence { detail } => write!(f, "invalid sequence: {detail}"),
            LlmError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
        }
    }
}

impl Error for LlmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LlmError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for LlmError {
    fn from(e: TensorError) -> Self {
        LlmError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LlmError::TokenOutOfRange {
            token: 900,
            vocab: 512,
        };
        assert!(e.to_string().contains("900"));
        let e = LlmError::InvalidConfig {
            detail: "hidden % heads != 0".into(),
        };
        assert!(e.to_string().contains("hidden"));
    }

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::InvalidDimension {
            op: "x",
            detail: "bad".into(),
        };
        let le: LlmError = te.clone().into();
        assert!(matches!(le, LlmError::Tensor(_)));
        assert!(le.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LlmError>();
    }
}
