//! GEMM interception hooks: the seam between the model, the error injector and ABFT.
//!
//! Every quantized GEMM executed by the model calls [`GemmHook::on_gemm`] with the INT8
//! operands and a mutable reference to the INT32 accumulator result, together with a
//! [`GemmContext`] describing *which* GEMM this is (component, layer, stage). This mirrors
//! the hardware picture in the paper:
//!
//! * the **error injector** mutates the accumulator in place, emulating timing errors in the
//!   systolic array's datapath;
//! * the **ABFT protector** recomputes checksums from the (assumed-correct) operands,
//!   compares them with checksums of the possibly-corrupted accumulator, and may trigger a
//!   recovery that restores the accumulator.
//!
//! Hooks compose with [`HookChain`], which applies them in order — injection first, then
//! protection, matching the physical order of fault and detection.

use crate::component::{Component, Stage};
use realm_tensor::{ChecksummedGemm, MatI32, MatI8, RowPartition};
use serde::{Deserialize, Serialize};

/// Which sequence(s) of a batch the accumulator rows of a GEMM belong to.
///
/// The batched forward path stacks every sequence's activations into one matrix for the
/// shared projections (`Q`/`K`/`V`/`O` and the MLP components) while the attention-internal
/// GEMMs (`QKᵀ`, `SV`) stay per-sequence (each sequence has its own cache length and causal
/// mask). Hooks that attribute work to sequences — injection campaigns, ABFT protectors —
/// read this tag to know which case they are looking at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GemmOrigin {
    /// Every accumulator row belongs to the batch sequence with this index. The
    /// single-sequence forward path always reports `Sequence(0)`.
    Sequence(usize),
    /// Accumulator rows are stacked across the whole batch; the row → sequence map is the
    /// [`RowPartition`] most recently announced through [`GemmHook::on_batch_begin`].
    BatchedRows,
}

impl Default for GemmOrigin {
    fn default() -> Self {
        GemmOrigin::Sequence(0)
    }
}

/// Metadata describing a single GEMM invocation inside the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmContext {
    /// Which network component this GEMM implements.
    pub component: Component,
    /// Zero-based index of the Transformer block.
    pub layer: usize,
    /// Inference stage (prefill or decode).
    pub stage: Stage,
    /// Monotonically increasing index of the GEMM within the current forward pass.
    pub sequence: usize,
    /// Batch provenance of the accumulator rows (defaults to [`GemmOrigin::Sequence`] 0).
    pub origin: GemmOrigin,
}

impl GemmContext {
    /// Creates a context; `sequence` is assigned by the model as it walks the graph.
    pub fn new(component: Component, layer: usize, stage: Stage, sequence: usize) -> Self {
        Self {
            component,
            layer,
            stage,
            sequence,
            origin: GemmOrigin::default(),
        }
    }

    /// Tags the context as belonging entirely to batch sequence `seq` (per-sequence
    /// attention GEMMs inside a batched forward).
    pub fn for_sequence(mut self, seq: usize) -> Self {
        self.origin = GemmOrigin::Sequence(seq);
        self
    }

    /// Tags the context as a batch-stacked GEMM whose rows span every sequence.
    pub fn batched(mut self) -> Self {
        self.origin = GemmOrigin::BatchedRows;
        self
    }
}

/// Observer/mutator invoked for every quantized GEMM in the model.
///
/// Implementors may inspect the INT8 operands (`w`, `x`) and mutate the INT32 accumulator
/// `acc` in place. The model treats the accumulator contents after all hooks ran as the
/// result of the GEMM.
///
/// The operand naming follows the paper's ABFT formulation `Y = W · X`: `w` is the
/// left-hand operand of shape `(m, k)` and `x` the right-hand operand of shape `(k, n)`.
pub trait GemmHook {
    /// Called after the accumulator has been computed and before it is converted back to
    /// floating point (or re-quantized).
    fn on_gemm(&mut self, ctx: &GemmContext, w: &MatI8, x: &MatI8, acc: &mut MatI32);

    /// Checksummed variant: called when the GEMM ran through a fused-checksum
    /// [`realm_tensor::GemmEngine`] pass, handing the hook the accumulator *with* its ABFT
    /// column checksums so protectors can skip the operand re-read.
    ///
    /// The default implementation forwards to [`GemmHook::on_gemm`] on the accumulator
    /// (which conservatively marks the observed checksum stale); checksum-aware hooks such
    /// as `SchemeProtector` override it to consume the fused checksums directly.
    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        w: &MatI8,
        x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        self.on_gemm(ctx, w, x, result.acc_mut());
    }

    /// Whether this hook consumes the fused ABFT checksums.
    ///
    /// The model queries this before each GEMM: when no hook in the chain wants checksums
    /// (fault-free baselines, unprotected runs), the plain GEMM runs and the checksum
    /// reductions are skipped entirely. Defaults to `true` so custom hooks are safe; pure
    /// observers and mutators (recorders, injectors) override it to `false`.
    fn wants_checksums(&self) -> bool {
        true
    }

    /// Announces the row partition of an upcoming batched forward pass.
    ///
    /// The model calls this once before each batched prefill and before every lockstep
    /// decode step, handing hooks the map from stacked accumulator rows to batch sequence
    /// indices. GEMMs tagged [`GemmOrigin::BatchedRows`] until the next announcement use
    /// this partition. Hooks that do not care (the default) ignore it.
    fn on_batch_begin(&mut self, partition: &RowPartition) {
        let _ = partition;
    }

    /// Announces the start of engine step `step` (a serving engine's monotone step
    /// counter).
    ///
    /// Unlike [`GemmHook::on_batch_begin`] — which fires before *every* batched forward
    /// pass, up to twice per step (prefill pass, then decode pass) — this is a true step
    /// clock: the serving layer calls it exactly once per scheduler step, before any
    /// forward of that step runs. Time-correlated hooks (e.g. a burst-mode error
    /// injector) key their schedules off it. Hooks that do not care (the default) ignore
    /// it; standalone (non-serving) runs never call it.
    fn on_step_begin(&mut self, step: u64) {
        let _ = step;
    }
}

/// A hook that does nothing: fault-free, unprotected inference.
///
/// # Example
///
/// ```
/// use realm_llm::hooks::{GemmHook, NoopHook, GemmContext};
/// use realm_llm::{Component, Stage};
/// use realm_tensor::{MatI8, MatI32};
///
/// let mut hook = NoopHook;
/// let w = MatI8::filled(2, 2, 1);
/// let x = MatI8::filled(2, 2, 1);
/// let mut acc = MatI32::filled(2, 2, 2);
/// let ctx = GemmContext::new(Component::Q, 0, Stage::Prefill, 0);
/// hook.on_gemm(&ctx, &w, &x, &mut acc);
/// assert_eq!(acc, MatI32::filled(2, 2, 2));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopHook;

impl GemmHook for NoopHook {
    fn on_gemm(&mut self, _ctx: &GemmContext, _w: &MatI8, _x: &MatI8, _acc: &mut MatI32) {}

    fn wants_checksums(&self) -> bool {
        false
    }
}

impl<H: GemmHook + ?Sized> GemmHook for &mut H {
    fn on_gemm(&mut self, ctx: &GemmContext, w: &MatI8, x: &MatI8, acc: &mut MatI32) {
        (**self).on_gemm(ctx, w, x, acc);
    }

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        w: &MatI8,
        x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        (**self).on_gemm_checksummed(ctx, w, x, result);
    }

    fn wants_checksums(&self) -> bool {
        (**self).wants_checksums()
    }

    fn on_batch_begin(&mut self, partition: &RowPartition) {
        (**self).on_batch_begin(partition);
    }

    fn on_step_begin(&mut self, step: u64) {
        (**self).on_step_begin(step);
    }
}

impl<H: GemmHook + ?Sized> GemmHook for Box<H> {
    fn on_gemm(&mut self, ctx: &GemmContext, w: &MatI8, x: &MatI8, acc: &mut MatI32) {
        (**self).on_gemm(ctx, w, x, acc);
    }

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        w: &MatI8,
        x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        (**self).on_gemm_checksummed(ctx, w, x, result);
    }

    fn wants_checksums(&self) -> bool {
        (**self).wants_checksums()
    }

    fn on_batch_begin(&mut self, partition: &RowPartition) {
        (**self).on_batch_begin(partition);
    }

    fn on_step_begin(&mut self, step: u64) {
        (**self).on_step_begin(step);
    }
}

/// Applies a sequence of hooks in order (typically: injector first, protector second).
#[derive(Default)]
pub struct HookChain<'a> {
    hooks: Vec<&'a mut dyn GemmHook>,
}

impl<'a> HookChain<'a> {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self { hooks: Vec::new() }
    }

    /// Appends a hook to the end of the chain and returns the chain for chaining calls.
    pub fn with(mut self, hook: &'a mut dyn GemmHook) -> Self {
        self.hooks.push(hook);
        self
    }

    /// Appends a hook to the end of the chain.
    pub fn push(&mut self, hook: &'a mut dyn GemmHook) {
        self.hooks.push(hook);
    }

    /// Number of hooks in the chain.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// Returns `true` if the chain contains no hooks.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }
}

impl std::fmt::Debug for HookChain<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookChain")
            .field("len", &self.hooks.len())
            .finish()
    }
}

impl GemmHook for HookChain<'_> {
    fn on_gemm(&mut self, ctx: &GemmContext, w: &MatI8, x: &MatI8, acc: &mut MatI32) {
        for hook in &mut self.hooks {
            hook.on_gemm(ctx, w, x, acc);
        }
    }

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        w: &MatI8,
        x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        // Each hook sees the checksummed result in turn: an injector mutates the accumulator
        // (marking the observed checksum stale), a downstream protector then inspects the
        // deviations of exactly what the injector left behind.
        for hook in &mut self.hooks {
            hook.on_gemm_checksummed(ctx, w, x, result);
        }
    }

    fn wants_checksums(&self) -> bool {
        self.hooks.iter().any(|h| h.wants_checksums())
    }

    fn on_batch_begin(&mut self, partition: &RowPartition) {
        for hook in &mut self.hooks {
            hook.on_batch_begin(partition);
        }
    }

    fn on_step_begin(&mut self, step: u64) {
        for hook in &mut self.hooks {
            hook.on_step_begin(step);
        }
    }
}

/// A hook that records which GEMMs were executed; useful in tests and for workload accounting.
#[derive(Debug, Default, Clone)]
pub struct RecordingHook {
    /// Contexts of every observed GEMM, in execution order.
    pub calls: Vec<GemmContext>,
    /// Total number of multiply-accumulate operations observed (`m * n * k` per GEMM).
    pub total_macs: u64,
}

impl RecordingHook {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of GEMMs observed.
    pub fn count(&self) -> usize {
        self.calls.len()
    }

    /// Number of GEMMs observed for a specific component.
    pub fn count_for(&self, component: Component) -> usize {
        self.calls
            .iter()
            .filter(|c| c.component == component)
            .count()
    }

    /// Number of GEMMs observed for a specific stage.
    pub fn count_for_stage(&self, stage: Stage) -> usize {
        self.calls.iter().filter(|c| c.stage == stage).count()
    }
}

impl GemmHook for RecordingHook {
    fn on_gemm(&mut self, ctx: &GemmContext, w: &MatI8, x: &MatI8, _acc: &mut MatI32) {
        self.calls.push(*ctx);
        self.total_macs += (w.rows() * w.cols() * x.cols()) as u64;
    }

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        w: &MatI8,
        x: &MatI8,
        _result: &mut ChecksummedGemm,
    ) {
        // Pure observer: avoid the default's `acc_mut` so the fused observed checksum stays
        // fresh for hooks later in the chain.
        self.calls.push(*ctx);
        self.total_macs += (w.rows() * w.cols() * x.cols()) as u64;
    }

    fn wants_checksums(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AddOne;
    impl GemmHook for AddOne {
        fn on_gemm(&mut self, _ctx: &GemmContext, _w: &MatI8, _x: &MatI8, acc: &mut MatI32) {
            for v in acc.iter_mut() {
                *v += 1;
            }
        }
    }

    struct Double;
    impl GemmHook for Double {
        fn on_gemm(&mut self, _ctx: &GemmContext, _w: &MatI8, _x: &MatI8, acc: &mut MatI32) {
            for v in acc.iter_mut() {
                *v *= 2;
            }
        }
    }

    fn ctx() -> GemmContext {
        GemmContext::new(Component::Q, 0, Stage::Prefill, 0)
    }

    #[test]
    fn noop_leaves_accumulator_untouched() {
        let mut acc = MatI32::filled(2, 2, 7);
        NoopHook.on_gemm(&ctx(), &MatI8::zeros(2, 2), &MatI8::zeros(2, 2), &mut acc);
        assert_eq!(acc, MatI32::filled(2, 2, 7));
    }

    #[test]
    fn chain_applies_hooks_in_order() {
        let mut add = AddOne;
        let mut double = Double;
        let mut chain = HookChain::new().with(&mut add).with(&mut double);
        let mut acc = MatI32::filled(1, 1, 3);
        chain.on_gemm(&ctx(), &MatI8::zeros(1, 1), &MatI8::zeros(1, 1), &mut acc);
        // (3 + 1) * 2 = 8, not 3 * 2 + 1 = 7.
        assert_eq!(acc[(0, 0)], 8);
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
    }

    #[test]
    fn recording_hook_counts_macs() {
        let mut rec = RecordingHook::new();
        let w = MatI8::zeros(2, 3);
        let x = MatI8::zeros(3, 4);
        let mut acc = MatI32::zeros(2, 4);
        rec.on_gemm(&ctx(), &w, &x, &mut acc);
        assert_eq!(rec.count(), 1);
        assert_eq!(rec.total_macs, 24);
        assert_eq!(rec.count_for(Component::Q), 1);
        assert_eq!(rec.count_for(Component::O), 0);
        assert_eq!(rec.count_for_stage(Stage::Prefill), 1);
    }

    #[test]
    fn step_clock_forwards_through_chain_and_box() {
        #[derive(Default)]
        struct StepRecorder {
            steps: Vec<u64>,
        }
        impl GemmHook for StepRecorder {
            fn on_gemm(&mut self, _: &GemmContext, _: &MatI8, _: &MatI8, _: &mut MatI32) {}
            fn on_step_begin(&mut self, step: u64) {
                self.steps.push(step);
            }
        }

        let mut a = StepRecorder::default();
        let mut boxed: Box<dyn GemmHook> = Box::new(StepRecorder::default());
        let mut chain = HookChain::new().with(&mut a).with(&mut boxed);
        chain.on_step_begin(3);
        chain.on_step_begin(4);
        drop(chain);
        assert_eq!(a.steps, vec![3, 4]);
        // The default implementation is a no-op, so arbitrary hooks stay valid.
        NoopHook.on_step_begin(9);
    }

    #[test]
    fn mutable_reference_implements_hook() {
        fn takes_hook(h: &mut dyn GemmHook) {
            let mut acc = MatI32::filled(1, 1, 0);
            h.on_gemm(&ctx(), &MatI8::zeros(1, 1), &MatI8::zeros(1, 1), &mut acc);
        }
        let mut rec = RecordingHook::new();
        takes_hook(&mut rec);
        assert_eq!(rec.count(), 1);
    }
}
