//! Feed-forward (MLP) blocks: ReLU MLP for OPT-style models, SiLU-gated MLP for LLaMA-style.
//!
//! These contribute the remaining network components of the paper's Fig. 2: `FC1`/`FC2` for
//! OPT-style blocks and `Gate`/`Up`/`Down` for LLaMA-style blocks. `FC2` and `Down` feed the
//! residual stream (and therefore the next normalization), which makes them the sensitive
//! MLP components in the paper's characterization.

use crate::activation::{relu_in_place, silu_in_place};
use crate::component::{Component, Stage};
use crate::config::ModelConfig;
use crate::hooks::{GemmContext, GemmHook};
use crate::quantized::{OutputMode, QuantLinear};
use crate::weights;
use crate::Result;
use realm_tensor::rng::SeededRng;
use realm_tensor::{GemmEngine, MatF32, RowPartition, Workspace};

/// OPT-style MLP: `FC2(ReLU(FC1(x)))`.
#[derive(Debug, Clone)]
pub struct OptMlp {
    fc1: QuantLinear,
    fc2: QuantLinear,
}

impl OptMlp {
    /// Creates an OPT-style MLP with synthetic weights.
    pub fn new(config: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            fc1: QuantLinear::from_f32(
                &weights::projection(rng, config.hidden_size, config.ffn_size),
                OutputMode::Float,
            ),
            fc2: QuantLinear::from_f32(
                &weights::projection(rng, config.ffn_size, config.hidden_size),
                OutputMode::Float,
            ),
        }
    }

    /// Routes this MLP's projection GEMMs through the packed (default) or unpacked
    /// weight path — see [`QuantLinear::set_packing`].
    pub fn set_weight_packing(&mut self, enabled: bool) {
        self.fc1.set_packing(enabled);
        self.fc2.set_packing(enabled);
    }

    /// Shards (or, with `None`, un-shards) both projection weights over a tensor-parallel
    /// rank group — see [`QuantLinear::set_tensor_parallel`].
    pub fn set_tensor_parallel(&mut self, group: Option<&std::sync::Arc<realm_tensor::TpGroup>>) {
        self.fc1.set_tensor_parallel(group);
        self.fc2.set_tensor_parallel(group);
    }

    /// Runs the MLP over `x` of shape `(tokens, hidden)`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    pub fn forward(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_ws(x, layer, stage, sequence, engine, hook, &mut ws)
    }

    /// [`OptMlp::forward`] drawing every intermediate from `ws`: the hidden activations
    /// are rectified in place and recycled after the second projection. The returned
    /// matrix is workspace-pooled; output is bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_ws(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let ctx1 = GemmContext::new(Component::Fc1, layer, stage, *sequence);
        *sequence += 1;
        let mut hidden = self.fc1.forward_ws(x, engine, &ctx1, hook, ws)?;
        relu_in_place(&mut hidden);
        let ctx2 = GemmContext::new(Component::Fc2, layer, stage, *sequence);
        *sequence += 1;
        let out = self.fc2.forward_ws(&hidden, engine, &ctx2, hook, ws);
        ws.recycle_mat_f32(hidden);
        out
    }

    /// Runs the MLP over a batch-stacked `x` (rows grouped by `parts`): one shared GEMM per
    /// component, per-group quantization, ReLU applied elementwise in between.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_batch_ws(x, parts, layer, stage, sequence, engine, hook, &mut ws)
    }

    /// [`OptMlp::forward_batch`] drawing every intermediate from `ws` (workspace-pooled
    /// result, bit-identical output).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch_ws(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let ctx1 = GemmContext::new(Component::Fc1, layer, stage, *sequence).batched();
        *sequence += 1;
        let mut hidden = self
            .fc1
            .forward_batched_ws(x, parts, engine, &ctx1, hook, ws)?;
        relu_in_place(&mut hidden);
        let ctx2 = GemmContext::new(Component::Fc2, layer, stage, *sequence).batched();
        *sequence += 1;
        let out = self
            .fc2
            .forward_batched_ws(&hidden, parts, engine, &ctx2, hook, ws);
        ws.recycle_mat_f32(hidden);
        out
    }
}

/// LLaMA-style gated MLP: `Down(SiLU(Gate(x)) ⊙ Up(x))`.
#[derive(Debug, Clone)]
pub struct LlamaMlp {
    gate: QuantLinear,
    up: QuantLinear,
    down: QuantLinear,
}

impl LlamaMlp {
    /// Creates a LLaMA-style MLP with synthetic weights.
    pub fn new(config: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            gate: QuantLinear::from_f32(
                &weights::projection(rng, config.hidden_size, config.ffn_size),
                OutputMode::Float,
            ),
            up: QuantLinear::from_f32(
                &weights::projection(rng, config.hidden_size, config.ffn_size),
                OutputMode::Float,
            ),
            down: QuantLinear::from_f32(
                &weights::projection(rng, config.ffn_size, config.hidden_size),
                OutputMode::Float,
            ),
        }
    }

    /// Routes this MLP's projection GEMMs through the packed (default) or unpacked
    /// weight path — see [`QuantLinear::set_packing`].
    pub fn set_weight_packing(&mut self, enabled: bool) {
        self.gate.set_packing(enabled);
        self.up.set_packing(enabled);
        self.down.set_packing(enabled);
    }

    /// Shards (or, with `None`, un-shards) the three projection weights over a
    /// tensor-parallel rank group — see [`QuantLinear::set_tensor_parallel`].
    pub fn set_tensor_parallel(&mut self, group: Option<&std::sync::Arc<realm_tensor::TpGroup>>) {
        self.gate.set_tensor_parallel(group);
        self.up.set_tensor_parallel(group);
        self.down.set_tensor_parallel(group);
    }

    /// Runs the gated MLP over `x` of shape `(tokens, hidden)`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    pub fn forward(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_ws(x, layer, stage, sequence, engine, hook, &mut ws)
    }

    /// [`LlamaMlp::forward`] drawing every intermediate from `ws`: the gate activations
    /// are SiLU'd and multiplied by the up projection in place. The returned matrix is
    /// workspace-pooled; output is bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_ws(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let ctx_gate = GemmContext::new(Component::Gate, layer, stage, *sequence);
        *sequence += 1;
        let mut gate_out = self.gate.forward_ws(x, engine, &ctx_gate, hook, ws)?;
        let ctx_up = GemmContext::new(Component::Up, layer, stage, *sequence);
        *sequence += 1;
        let up_out = match self.up.forward_ws(x, engine, &ctx_up, hook, ws) {
            Ok(up_out) => up_out,
            Err(e) => {
                ws.recycle_mat_f32(gate_out);
                return Err(e);
            }
        };
        silu_in_place(&mut gate_out);
        let gated = gate_out.hadamard_assign(&up_out);
        ws.recycle_mat_f32(up_out);
        if let Err(e) = gated {
            ws.recycle_mat_f32(gate_out);
            return Err(e.into());
        }
        let ctx_down = GemmContext::new(Component::Down, layer, stage, *sequence);
        *sequence += 1;
        let out = self.down.forward_ws(&gate_out, engine, &ctx_down, hook, ws);
        ws.recycle_mat_f32(gate_out);
        out
    }

    /// Runs the gated MLP over a batch-stacked `x` (rows grouped by `parts`): one shared
    /// GEMM per component, per-group quantization, SiLU gating elementwise in between.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_batch_ws(x, parts, layer, stage, sequence, engine, hook, &mut ws)
    }

    /// [`LlamaMlp::forward_batch`] drawing every intermediate from `ws` (workspace-pooled
    /// result, bit-identical output).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch_ws(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let ctx_gate = GemmContext::new(Component::Gate, layer, stage, *sequence).batched();
        *sequence += 1;
        let mut gate_out = self
            .gate
            .forward_batched_ws(x, parts, engine, &ctx_gate, hook, ws)?;
        let ctx_up = GemmContext::new(Component::Up, layer, stage, *sequence).batched();
        *sequence += 1;
        let up_out = match self
            .up
            .forward_batched_ws(x, parts, engine, &ctx_up, hook, ws)
        {
            Ok(up_out) => up_out,
            Err(e) => {
                ws.recycle_mat_f32(gate_out);
                return Err(e);
            }
        };
        silu_in_place(&mut gate_out);
        let gated = gate_out.hadamard_assign(&up_out);
        ws.recycle_mat_f32(up_out);
        if let Err(e) = gated {
            ws.recycle_mat_f32(gate_out);
            return Err(e.into());
        }
        let ctx_down = GemmContext::new(Component::Down, layer, stage, *sequence).batched();
        *sequence += 1;
        let out = self
            .down
            .forward_batched_ws(&gate_out, parts, engine, &ctx_down, hook, ws);
        ws.recycle_mat_f32(gate_out);
        out
    }
}

/// Either MLP variant; the block picks one based on the model architecture.
#[derive(Debug, Clone)]
pub enum Mlp {
    /// OPT-style ReLU MLP.
    Opt(OptMlp),
    /// LLaMA-style SiLU-gated MLP.
    Llama(LlamaMlp),
}

impl Mlp {
    /// Creates the MLP variant matching the model architecture.
    pub fn new(config: &ModelConfig, rng: &mut SeededRng) -> Self {
        match config.architecture {
            crate::Architecture::OptStyle => Mlp::Opt(OptMlp::new(config, rng)),
            crate::Architecture::LlamaStyle => Mlp::Llama(LlamaMlp::new(config, rng)),
        }
    }

    /// Routes the MLP's projection GEMMs through the packed (default) or unpacked
    /// weight path — see [`QuantLinear::set_packing`].
    pub fn set_weight_packing(&mut self, enabled: bool) {
        match self {
            Mlp::Opt(m) => m.set_weight_packing(enabled),
            Mlp::Llama(m) => m.set_weight_packing(enabled),
        }
    }

    /// Shards (or, with `None`, un-shards) the MLP's projection weights over a
    /// tensor-parallel rank group — see [`QuantLinear::set_tensor_parallel`].
    pub fn set_tensor_parallel(&mut self, group: Option<&std::sync::Arc<realm_tensor::TpGroup>>) {
        match self {
            Mlp::Opt(m) => m.set_tensor_parallel(group),
            Mlp::Llama(m) => m.set_tensor_parallel(group),
        }
    }

    /// Runs the MLP over `x` of shape `(tokens, hidden)`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    pub fn forward(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        match self {
            Mlp::Opt(m) => m.forward(x, layer, stage, sequence, engine, hook),
            Mlp::Llama(m) => m.forward(x, layer, stage, sequence, engine, hook),
        }
    }

    /// [`Mlp::forward`] drawing every intermediate from `ws` (workspace-pooled result,
    /// bit-identical output).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_ws(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        match self {
            Mlp::Opt(m) => m.forward_ws(x, layer, stage, sequence, engine, hook, ws),
            Mlp::Llama(m) => m.forward_ws(x, layer, stage, sequence, engine, hook, ws),
        }
    }

    /// Runs the MLP over a batch-stacked `x` whose rows are grouped by `parts`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        match self {
            Mlp::Opt(m) => m.forward_batch(x, parts, layer, stage, sequence, engine, hook),
            Mlp::Llama(m) => m.forward_batch(x, parts, layer, stage, sequence, engine, hook),
        }
    }

    /// [`Mlp::forward_batch`] drawing every intermediate from `ws` (workspace-pooled
    /// result, bit-identical output).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch_ws(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        match self {
            Mlp::Opt(m) => m.forward_batch_ws(x, parts, layer, stage, sequence, engine, hook, ws),
            Mlp::Llama(m) => m.forward_batch_ws(x, parts, layer, stage, sequence, engine, hook, ws),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{NoopHook, RecordingHook};
    use realm_tensor::rng;
    use realm_tensor::ReferenceEngine;

    #[test]
    fn opt_mlp_preserves_shape_and_reports_components() {
        let config = ModelConfig::tiny_opt();
        let mut r = rng::seeded(2);
        let mlp = OptMlp::new(&config, &mut r);
        let x = rng::gaussian_matrix(&mut r, 3, config.hidden_size, 0.0, 1.0);
        let mut seq = 10;
        let mut rec = RecordingHook::new();
        let y = mlp
            .forward(&x, 1, Stage::Prefill, &mut seq, &ReferenceEngine, &mut rec)
            .unwrap();
        assert_eq!(y.shape(), (3, config.hidden_size));
        assert_eq!(rec.count_for(Component::Fc1), 1);
        assert_eq!(rec.count_for(Component::Fc2), 1);
        assert_eq!(seq, 12);
    }

    #[test]
    fn llama_mlp_preserves_shape_and_reports_components() {
        let config = ModelConfig::tiny_llama();
        let mut r = rng::seeded(2);
        let mlp = LlamaMlp::new(&config, &mut r);
        let x = rng::gaussian_matrix(&mut r, 4, config.hidden_size, 0.0, 1.0);
        let mut seq = 0;
        let mut rec = RecordingHook::new();
        let y = mlp
            .forward(&x, 0, Stage::Decode, &mut seq, &ReferenceEngine, &mut rec)
            .unwrap();
        assert_eq!(y.shape(), (4, config.hidden_size));
        assert_eq!(rec.count_for(Component::Gate), 1);
        assert_eq!(rec.count_for(Component::Up), 1);
        assert_eq!(rec.count_for(Component::Down), 1);
        assert!(rec.calls.iter().all(|c| c.stage == Stage::Decode));
    }

    #[test]
    fn mlp_variant_matches_architecture() {
        let mut r = rng::seeded(1);
        assert!(matches!(
            Mlp::new(&ModelConfig::tiny_opt(), &mut r),
            Mlp::Opt(_)
        ));
        assert!(matches!(
            Mlp::new(&ModelConfig::tiny_llama(), &mut r),
            Mlp::Llama(_)
        ));
    }

    #[test]
    fn outputs_are_finite_and_small_relative_to_input() {
        // MLP outputs are residual updates; they should not dwarf the residual stream.
        let config = ModelConfig::tiny_llama();
        let mut r = rng::seeded(8);
        let mlp = Mlp::new(&config, &mut r);
        let x = rng::gaussian_matrix(&mut r, 2, config.hidden_size, 0.0, 1.0);
        let mut seq = 0;
        let y = mlp
            .forward(
                &x,
                0,
                Stage::Prefill,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(y.abs_max() < x.abs_max() * 5.0);
    }
}
