//! Transformer blocks in the two variants studied by the paper (Fig. 2).
//!
//! Both variants are pre-normalization blocks:
//!
//! ```text
//! x = x + Attention(Norm1(x))
//! x = x + Mlp(Norm2(x))
//! ```
//!
//! so the outputs of the attention output projection `O` and of the last MLP projection
//! (`FC2` or `Down`) are added onto the residual stream, which is then consumed by the *next*
//! normalization layer. That wiring is what makes them the paper's "sensitive" components: a
//! corrupted residual element skews the next normalization's statistics and perturbs every
//! channel downstream.

use crate::attention::MultiHeadAttention;
use crate::batch::BatchedLayerCache;
use crate::component::Stage;
use crate::config::{Architecture, ModelConfig};
use crate::hooks::GemmHook;
use crate::kv_cache::LayerCache;
use crate::mlp::Mlp;
use crate::norm::{LayerNorm, RmsNorm};
use crate::weights;
use crate::Result;
use realm_tensor::rng::SeededRng;
use realm_tensor::{GemmEngine, MatF32, RowPartition, Workspace};

/// Normalization layer variant used by a block.
#[derive(Debug, Clone)]
pub enum Norm {
    /// LayerNorm (OPT-style blocks).
    Layer(LayerNorm),
    /// RMSNorm (LLaMA-style blocks).
    Rms(RmsNorm),
}

impl Norm {
    /// Creates the normalization variant matching the architecture.
    pub fn new(config: &ModelConfig, rng: &mut SeededRng) -> Self {
        let gamma = weights::norm_gamma(rng, config.hidden_size);
        match config.architecture {
            Architecture::OptStyle => {
                Norm::Layer(LayerNorm::new(gamma, vec![0.0; config.hidden_size]))
            }
            Architecture::LlamaStyle => Norm::Rms(RmsNorm::new(gamma)),
        }
    }

    /// Applies the normalization to every row of `x`.
    pub fn forward(&self, x: &MatF32) -> MatF32 {
        match self {
            Norm::Layer(n) => n.forward(x),
            Norm::Rms(n) => n.forward(x),
        }
    }

    /// [`Norm::forward`] into caller-provided storage (reshaped in place, bit-identical).
    pub fn forward_into(&self, x: &MatF32, out: &mut MatF32) {
        match self {
            Norm::Layer(n) => n.forward_into(x, out),
            Norm::Rms(n) => n.forward_into(x, out),
        }
    }

    /// Number of channels the normalization expects.
    pub fn dim(&self) -> usize {
        match self {
            Norm::Layer(n) => n.dim(),
            Norm::Rms(n) => n.dim(),
        }
    }
}

/// A single pre-normalization Transformer block.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    norm1: Norm,
    norm2: Norm,
    attention: MultiHeadAttention,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Creates a block with synthetic weights drawn from `rng`.
    pub fn new(config: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            norm1: Norm::new(config, rng),
            norm2: Norm::new(config, rng),
            attention: MultiHeadAttention::new(config, rng),
            mlp: Mlp::new(config, rng),
        }
    }

    /// Accesses the attention sub-layer (used by tests and workload accounting).
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attention
    }

    /// Routes every static-weight GEMM in this block through the packed (default) or
    /// unpacked weight path — see [`crate::quantized::QuantLinear::set_packing`].
    pub fn set_weight_packing(&mut self, enabled: bool) {
        self.attention.set_weight_packing(enabled);
        self.mlp.set_weight_packing(enabled);
    }

    /// Shards (or, with `None`, un-shards) every static-weight GEMM in this block over a
    /// tensor-parallel rank group — see [`crate::quantized::QuantLinear::set_tensor_parallel`].
    pub fn set_tensor_parallel(&mut self, group: Option<&std::sync::Arc<realm_tensor::TpGroup>>) {
        self.attention.set_tensor_parallel(group);
        self.mlp.set_tensor_parallel(group);
    }

    /// Runs the block over `x` of shape `(new_tokens, hidden)`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the attention and MLP sub-layers.
    #[allow(clippy::too_many_arguments)] // mirrors the attention-forward plumbing: ctx + engine + hook
    pub fn forward(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        cache: &mut LayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_ws(
            x.clone(),
            layer,
            stage,
            cache,
            sequence,
            engine,
            hook,
            &mut ws,
        )
    }

    /// [`TransformerBlock::forward`] operating on an owned (typically workspace-pooled)
    /// residual stream: the attention and MLP outputs are added onto `x` in place, every
    /// intermediate comes from `ws`, and `x` is returned as the block output. Bit-identical
    /// to the allocating path.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the attention and MLP sub-layers.
    #[allow(clippy::too_many_arguments)] // mirrors the attention-forward plumbing: ctx + engine + hook
    pub fn forward_ws(
        &self,
        mut x: MatF32,
        layer: usize,
        stage: Stage,
        cache: &mut LayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let mut run = |x: &mut MatF32, ws: &mut Workspace, sequence: &mut usize| -> Result<()> {
            let mut attn_in = ws.take_mat_f32(x.rows(), x.cols());
            self.norm1.forward_into(x, &mut attn_in);
            let attn_out = self
                .attention
                .forward_ws(&attn_in, layer, stage, cache, sequence, engine, hook, ws);
            ws.recycle_mat_f32(attn_in);
            let attn_out = attn_out?;
            let added = x.add_assign(&attn_out);
            ws.recycle_mat_f32(attn_out);
            added?;

            let mut mlp_in = ws.take_mat_f32(x.rows(), x.cols());
            self.norm2.forward_into(x, &mut mlp_in);
            let mlp_out = self
                .mlp
                .forward_ws(&mlp_in, layer, stage, sequence, engine, hook, ws);
            ws.recycle_mat_f32(mlp_in);
            let mlp_out = mlp_out?;
            let added = x.add_assign(&mlp_out);
            ws.recycle_mat_f32(mlp_out);
            added?;
            Ok(())
        };
        match run(&mut x, ws, sequence) {
            Ok(()) => Ok(x),
            Err(e) => {
                ws.recycle_mat_f32(x);
                Err(e)
            }
        }
    }

    /// Runs the block over a batch-stacked `x` of shape `(sum_new_tokens, hidden)` whose
    /// rows are grouped by `parts`.
    ///
    /// Normalization and residual additions are row-wise, so only the attention and MLP
    /// sub-layers need batch awareness; the result is bit-exact with running
    /// [`TransformerBlock::forward`] once per sequence.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the attention and MLP sub-layers.
    #[allow(clippy::too_many_arguments)] // mirrors the attention-forward plumbing: ctx + engine + hook
    pub fn forward_batch(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        cache: &mut BatchedLayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_batch_ws(
            x.clone(),
            parts,
            layer,
            stage,
            cache,
            sequence,
            engine,
            hook,
            &mut ws,
        )
    }

    /// [`TransformerBlock::forward_batch`] operating on an owned (typically
    /// workspace-pooled) residual stream with every intermediate drawn from `ws`.
    /// Bit-identical to the allocating path.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the attention and MLP sub-layers.
    #[allow(clippy::too_many_arguments)] // mirrors the attention-forward plumbing: ctx + engine + hook
    pub fn forward_batch_ws(
        &self,
        mut x: MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        cache: &mut BatchedLayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let mut run = |x: &mut MatF32, ws: &mut Workspace, sequence: &mut usize| -> Result<()> {
            let mut attn_in = ws.take_mat_f32(x.rows(), x.cols());
            self.norm1.forward_into(x, &mut attn_in);
            let attn_out = self.attention.forward_batch_ws(
                &attn_in, parts, layer, stage, cache, sequence, engine, hook, ws,
            );
            ws.recycle_mat_f32(attn_in);
            let attn_out = attn_out?;
            let added = x.add_assign(&attn_out);
            ws.recycle_mat_f32(attn_out);
            added?;

            let mut mlp_in = ws.take_mat_f32(x.rows(), x.cols());
            self.norm2.forward_into(x, &mut mlp_in);
            let mlp_out = self
                .mlp
                .forward_batch_ws(&mlp_in, parts, layer, stage, sequence, engine, hook, ws);
            ws.recycle_mat_f32(mlp_in);
            let mlp_out = mlp_out?;
            let added = x.add_assign(&mlp_out);
            ws.recycle_mat_f32(mlp_out);
            added?;
            Ok(())
        };
        match run(&mut x, ws, sequence) {
            Ok(()) => Ok(x),
            Err(e) => {
                ws.recycle_mat_f32(x);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{NoopHook, RecordingHook};
    use crate::Component;
    use realm_tensor::rng;
    use realm_tensor::ReferenceEngine;

    #[test]
    fn block_preserves_shape_for_both_architectures() {
        for config in [ModelConfig::tiny_opt(), ModelConfig::tiny_llama()] {
            let mut r = rng::seeded(6);
            let block = TransformerBlock::new(&config, &mut r);
            let x = rng::gaussian_matrix(&mut r, 4, config.hidden_size, 0.0, 1.0);
            let mut cache = LayerCache::new();
            let mut seq = 0;
            let y = block
                .forward(
                    &x,
                    0,
                    Stage::Prefill,
                    &mut cache,
                    &mut seq,
                    &ReferenceEngine,
                    &mut NoopHook,
                )
                .unwrap();
            assert_eq!(y.shape(), x.shape(), "{}", config.name);
            assert!(y.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn block_reports_architecture_specific_components() {
        let config = ModelConfig::tiny_llama();
        let mut r = rng::seeded(6);
        let block = TransformerBlock::new(&config, &mut r);
        let x = rng::gaussian_matrix(&mut r, 2, config.hidden_size, 0.0, 1.0);
        let mut cache = LayerCache::new();
        let mut seq = 0;
        let mut rec = RecordingHook::new();
        block
            .forward(
                &x,
                0,
                Stage::Prefill,
                &mut cache,
                &mut seq,
                &ReferenceEngine,
                &mut rec,
            )
            .unwrap();
        assert_eq!(rec.count_for(Component::Down), 1);
        assert_eq!(rec.count_for(Component::Fc2), 0);
    }

    #[test]
    fn residual_stream_carries_input_identity() {
        // Because projections are small, the block output stays close to its input: the
        // residual connection dominates, as in pretrained transformers. This is the property
        // that lets the synthetic lm-head predict successors from the final hidden state.
        let config = ModelConfig::tiny_opt();
        let mut r = rng::seeded(12);
        let block = TransformerBlock::new(&config, &mut r);
        let x = rng::gaussian_matrix(&mut r, 3, config.hidden_size, 0.0, 1.0);
        let mut cache = LayerCache::new();
        let mut seq = 0;
        let y = block
            .forward(
                &x,
                0,
                Stage::Prefill,
                &mut cache,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();
        let relative_change =
            y.distance(&x).unwrap() / x.distance(&MatF32::zeros(3, config.hidden_size)).unwrap();
        assert!(
            relative_change < 0.6,
            "block output should stay close to the residual input, change={relative_change}"
        );
    }

    #[test]
    fn norm_variant_matches_architecture() {
        let mut r = rng::seeded(1);
        assert!(matches!(
            Norm::new(&ModelConfig::tiny_opt(), &mut r),
            Norm::Layer(_)
        ));
        assert!(matches!(
            Norm::new(&ModelConfig::tiny_llama(), &mut r),
            Norm::Rms(_)
        ));
        let n = Norm::new(&ModelConfig::tiny_opt(), &mut r);
        assert_eq!(n.dim(), ModelConfig::tiny_opt().hidden_size);
    }
}
