//! Normalization layers: LayerNorm (OPT-style) and RMSNorm (LLaMA-style).
//!
//! The paper's central characterization insight (Fig. 5) is that these layers are the reason
//! some components are error-sensitive: the mean and standard deviation (or RMS) computed
//! per token are dominated by a handful of outlier channels, so a single large injected error
//! becomes an artificial outlier that skews the statistics and corrupts *every* element of
//! the normalized vector — not just the one that was hit.

use realm_tensor::MatF32;
use serde::{Deserialize, Serialize};

/// Per-token LayerNorm with learned scale and bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Learned per-channel scale (γ).
    pub gamma: Vec<f32>,
    /// Learned per-channel bias (β).
    pub beta: Vec<f32>,
    /// Numerical-stability epsilon added to the variance.
    pub eps: f32,
}

impl LayerNorm {
    /// Creates a LayerNorm with unit scale and zero bias over `dim` channels.
    pub fn identity(dim: usize) -> Self {
        Self {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Creates a LayerNorm with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` and `beta` have different lengths.
    pub fn new(gamma: Vec<f32>, beta: Vec<f32>) -> Self {
        assert_eq!(
            gamma.len(),
            beta.len(),
            "gamma and beta must have equal length"
        );
        Self {
            gamma,
            beta,
            eps: 1e-5,
        }
    }

    /// Number of channels.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Normalizes each row of `x` to zero mean / unit variance and applies γ, β.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()`.
    pub fn forward(&self, x: &MatF32) -> MatF32 {
        let mut out = MatF32::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// [`LayerNorm::forward`] into caller-provided storage (reshaped in place,
    /// bit-identical output).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()`.
    pub fn forward_into(&self, x: &MatF32, out: &mut MatF32) {
        assert_eq!(x.cols(), self.dim(), "LayerNorm dimension mismatch");
        out.resize_overwrite(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let (mean, var) = mean_variance(row);
            let inv = 1.0 / (var + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                out.row_mut(r)[c] = (v - mean) * inv * self.gamma[c] + self.beta[c];
            }
        }
    }

    /// Returns the per-row `(mean, std)` statistics the normalization would use.
    ///
    /// Exposed so the characterization study (Fig. 5) can report how much an injected error
    /// skews µ and σ without re-deriving the internals.
    pub fn row_statistics(&self, x: &MatF32) -> Vec<(f32, f32)> {
        (0..x.rows())
            .map(|r| {
                let (m, v) = mean_variance(x.row(r));
                (m, v.sqrt())
            })
            .collect()
    }
}

/// Per-token RMSNorm with learned scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmsNorm {
    /// Learned per-channel scale (γ).
    pub gamma: Vec<f32>,
    /// Numerical-stability epsilon added to the mean square.
    pub eps: f32,
}

impl RmsNorm {
    /// Creates an RMSNorm with unit scale over `dim` channels.
    pub fn identity(dim: usize) -> Self {
        Self {
            gamma: vec![1.0; dim],
            eps: 1e-5,
        }
    }

    /// Creates an RMSNorm with an explicit scale vector.
    pub fn new(gamma: Vec<f32>) -> Self {
        Self { gamma, eps: 1e-5 }
    }

    /// Number of channels.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Normalizes each row of `x` by its root-mean-square and applies γ.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()`.
    pub fn forward(&self, x: &MatF32) -> MatF32 {
        let mut out = MatF32::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// [`RmsNorm::forward`] into caller-provided storage (reshaped in place, bit-identical
    /// output).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()`.
    pub fn forward_into(&self, x: &MatF32, out: &mut MatF32) {
        assert_eq!(x.cols(), self.dim(), "RMSNorm dimension mismatch");
        out.resize_overwrite(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
            let inv = 1.0 / (ms + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                out.row_mut(r)[c] = v * inv * self.gamma[c];
            }
        }
    }

    /// Returns the per-row RMS values the normalization would use.
    pub fn row_rms(&self, x: &MatF32) -> Vec<f32> {
        (0..x.rows())
            .map(|r| {
                let row = x.row(r);
                (row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32).sqrt()
            })
            .collect()
    }
}

fn mean_variance(row: &[f32]) -> (f32, f32) {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::stats;

    #[test]
    fn layernorm_output_has_zero_mean_unit_variance() {
        let ln = LayerNorm::identity(64);
        let x = MatF32::from_fn(4, 64, |r, c| (r as f32 + 1.0) * ((c % 9) as f32 - 4.0));
        let y = ln.forward(&x);
        for r in 0..4 {
            let row = MatF32::from_vec(1, 64, y.row(r).to_vec()).unwrap();
            let s = stats::summary(&row);
            assert!(s.mean.abs() < 1e-4, "mean {}", s.mean);
            assert!((s.std - 1.0).abs() < 1e-2, "std {}", s.std);
        }
    }

    #[test]
    fn layernorm_applies_gamma_beta() {
        let ln = LayerNorm::new(vec![2.0; 8], vec![1.0; 8]);
        let x = MatF32::from_fn(1, 8, |_, c| c as f32);
        let y = ln.forward(&x);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 8.0;
        assert!(
            (mean - 1.0).abs() < 1e-5,
            "beta shifts the mean to 1, got {mean}"
        );
    }

    #[test]
    fn rmsnorm_output_has_unit_rms() {
        let rn = RmsNorm::identity(32);
        let x = MatF32::from_fn(2, 32, |_, c| (c as f32 - 16.0) * 0.3);
        let y = rn.forward(&x);
        for r in 0..2 {
            let rms: f32 = (y.row(r).iter().map(|v| v * v).sum::<f32>() / 32.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-3, "rms {rms}");
        }
    }

    #[test]
    fn single_large_error_skews_every_normalized_element() {
        // Reproduces the Fig. 5 phenomenon in miniature: one corrupted element before the
        // normalization perturbs *all* elements after it.
        let ln = LayerNorm::identity(128);
        let clean = MatF32::from_fn(1, 128, |_, c| ((c % 11) as f32 - 5.0) * 0.2);
        let mut corrupted = clean.clone();
        corrupted.set(0, 64, 500.0).unwrap();

        let y_clean = ln.forward(&clean);
        let y_corrupted = ln.forward(&corrupted);

        let changed = y_clean
            .row(0)
            .iter()
            .zip(y_corrupted.row(0).iter())
            .enumerate()
            .filter(|(c, (a, b))| *c != 64 && (*a - *b).abs() > 0.05)
            .count();
        assert!(
            changed > 100,
            "a single pre-norm error should disturb most elements, changed={changed}"
        );
    }

    #[test]
    fn rmsnorm_is_scale_invariant_in_shape() {
        let rn = RmsNorm::identity(16);
        let x = MatF32::from_fn(1, 16, |_, c| (c as f32) - 8.0);
        let y1 = rn.forward(&x);
        let y2 = rn.forward(&x.scale(10.0));
        // RMS normalization removes the global scale (up to epsilon effects).
        assert!(y1.distance(&y2).unwrap() < 1e-2);
    }

    #[test]
    fn row_statistics_report_skew() {
        let ln = LayerNorm::identity(64);
        let clean = MatF32::from_fn(1, 64, |_, c| ((c % 7) as f32 - 3.0) * 0.5);
        let mut corrupted = clean.clone();
        corrupted.set(0, 10, 300.0).unwrap();
        let s_clean = ln.row_statistics(&clean)[0];
        let s_corr = ln.row_statistics(&corrupted)[0];
        assert!(s_corr.0 > s_clean.0, "mean should increase");
        assert!(s_corr.1 > s_clean.1 * 2.0, "std should blow up");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn layernorm_rejects_wrong_width() {
        let ln = LayerNorm::identity(8);
        let x = MatF32::zeros(1, 9);
        let _ = ln.forward(&x);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn layernorm_rejects_mismatched_params() {
        let _ = LayerNorm::new(vec![1.0; 4], vec![0.0; 5]);
    }
}
