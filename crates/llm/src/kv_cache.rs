//! Key/value cache for autoregressive decoding.
//!
//! The KV cache is the mechanism behind the paper's prefill-vs-decode asymmetry (Q2.1):
//! keys and values computed during prefill are reused by every later decode step, so an error
//! injected during prefill contaminates all subsequent token generations, while an error in a
//! single decode step only perturbs that step's small contribution to the cache.

use crate::{LlmError, Result};
use realm_tensor::MatF32;

/// Cached keys and values for a single Transformer layer.
///
/// The cache remembers which layer it belongs to so shape-mismatch errors name the layer —
/// when a batched shape bug first bites at layer 3, "at layer 3" is the difference between a
/// one-glance diagnosis and bisecting the whole stack.
#[derive(Debug, Clone, Default)]
pub struct LayerCache {
    layer: usize,
    keys: Option<MatF32>,
    values: Option<MatF32>,
    /// Rows reserved up front at the first append so that steady-state decode appends
    /// (one row per token) never re-allocate; 0 means no reservation.
    capacity_rows: usize,
}

impl LayerCache {
    /// Creates an empty per-layer cache (reporting layer index 0 in errors).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache that reports `layer` in its error messages.
    pub fn for_layer(layer: usize) -> Self {
        Self {
            layer,
            ..Self::default()
        }
    }

    /// Creates an empty cache that reserves storage for `capacity_rows` token positions at
    /// its first append — the allocation-free decode loop's way of keeping per-token cache
    /// growth off the allocator.
    pub fn with_capacity(layer: usize, capacity_rows: usize) -> Self {
        Self {
            layer,
            capacity_rows,
            ..Self::default()
        }
    }

    /// The layer index this cache reports in error messages.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Number of cached token positions.
    pub fn len(&self) -> usize {
        self.keys.as_ref().map_or(0, |k| k.rows())
    }

    /// Returns `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends new key/value rows (one per new token position).
    ///
    /// # Errors
    ///
    /// Returns an error naming this cache's layer index if `keys` and `values` have
    /// different shapes, or if their width does not match previously cached entries.
    pub fn append(&mut self, keys: &MatF32, values: &MatF32) -> Result<()> {
        if keys.shape() != values.shape() {
            return Err(LlmError::InvalidSequence {
                detail: format!(
                    "KV cache at layer {}: key shape {:?} and value shape {:?} differ",
                    self.layer,
                    keys.shape(),
                    values.shape()
                ),
            });
        }
        let layer = self.layer;
        let capacity_rows = self.capacity_rows;
        // Rows are appended in place: the first append reserves `capacity_rows` rows, so
        // the one-row-per-token growth of the decode loop stays off the allocator.
        let stack = |existing: &mut Option<MatF32>, new: &MatF32, what: &str| -> Result<()> {
            match existing {
                None => {
                    let mut fresh = new.clone();
                    fresh.reserve_rows(capacity_rows);
                    *existing = Some(fresh);
                    Ok(())
                }
                Some(existing) => {
                    existing
                        .extend_rows(new)
                        .map_err(|e| LlmError::InvalidSequence {
                            detail: format!("KV cache at layer {layer}: cannot append {what}: {e}"),
                        })
                }
            }
        };
        stack(&mut self.keys, keys, "keys")?;
        stack(&mut self.values, values, "values")?;
        Ok(())
    }

    /// All cached keys, shape `(cached_tokens, hidden)`.
    ///
    /// Returns `None` if the cache is empty.
    pub fn keys(&self) -> Option<&MatF32> {
        self.keys.as_ref()
    }

    /// All cached values, shape `(cached_tokens, hidden)`.
    ///
    /// Returns `None` if the cache is empty.
    pub fn values(&self) -> Option<&MatF32> {
        self.values.as_ref()
    }
}

/// KV cache covering every layer of the model.
#[derive(Debug, Clone)]
pub struct KvCache {
    layers: Vec<LayerCache>,
}

impl KvCache {
    /// Creates an empty cache for a model with `num_layers` layers.
    pub fn new(num_layers: usize) -> Self {
        Self {
            layers: (0..num_layers).map(LayerCache::for_layer).collect(),
        }
    }

    /// Creates an empty cache whose layers reserve storage for `capacity_rows` token
    /// positions at their first append (see [`LayerCache::with_capacity`]). The model
    /// passes its context window here so steady-state decode never re-allocates the cache.
    pub fn with_capacity(num_layers: usize, capacity_rows: usize) -> Self {
        Self {
            layers: (0..num_layers)
                .map(|layer| LayerCache::with_capacity(layer, capacity_rows))
                .collect(),
        }
    }

    /// Number of layers the cache covers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of cached token positions (identical across layers once populated).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerCache::len)
    }

    /// Accesses the cache of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer(&self, layer: usize) -> &LayerCache {
        &self.layers[layer]
    }

    /// Mutably accesses the cache of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_mut(&mut self, layer: usize) -> &mut LayerCache {
        &mut self.layers[layer]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_reports_zero_length() {
        let cache = KvCache::new(3);
        assert_eq!(cache.num_layers(), 3);
        assert_eq!(cache.seq_len(), 0);
        assert!(cache.layer(0).is_empty());
        assert!(cache.layer(0).keys().is_none());
    }

    #[test]
    fn append_accumulates_rows() {
        let mut cache = LayerCache::new();
        let k1 = MatF32::filled(4, 8, 1.0);
        let v1 = MatF32::filled(4, 8, 2.0);
        cache.append(&k1, &v1).unwrap();
        assert_eq!(cache.len(), 4);
        let k2 = MatF32::filled(1, 8, 3.0);
        let v2 = MatF32::filled(1, 8, 4.0);
        cache.append(&k2, &v2).unwrap();
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.keys().unwrap()[(4, 0)], 3.0);
        assert_eq!(cache.values().unwrap()[(0, 0)], 2.0);
    }

    #[test]
    fn append_rejects_mismatched_shapes() {
        let mut cache = LayerCache::new();
        let k = MatF32::zeros(2, 8);
        let v = MatF32::zeros(3, 8);
        assert!(cache.append(&k, &v).is_err());
    }

    #[test]
    fn append_rejects_width_change() {
        let mut cache = LayerCache::new();
        cache
            .append(&MatF32::zeros(2, 8), &MatF32::zeros(2, 8))
            .unwrap();
        assert!(cache
            .append(&MatF32::zeros(1, 16), &MatF32::zeros(1, 16))
            .is_err());
    }

    #[test]
    fn append_errors_name_the_layer() {
        let mut cache = KvCache::new(4);
        let err = cache
            .layer_mut(3)
            .append(&MatF32::zeros(2, 8), &MatF32::zeros(3, 8))
            .unwrap_err();
        assert!(
            err.to_string().contains("layer 3"),
            "shape mismatch should name the layer: {err}"
        );
        cache
            .layer_mut(3)
            .append(&MatF32::zeros(2, 8), &MatF32::zeros(2, 8))
            .unwrap();
        let err = cache
            .layer_mut(3)
            .append(&MatF32::zeros(1, 16), &MatF32::zeros(1, 16))
            .unwrap_err();
        assert!(
            err.to_string().contains("layer 3"),
            "width change should name the layer: {err}"
        );
        assert_eq!(cache.layer(3).layer(), 3);
    }

    #[test]
    fn per_layer_caches_are_independent() {
        let mut cache = KvCache::new(2);
        cache
            .layer_mut(0)
            .append(&MatF32::zeros(3, 4), &MatF32::zeros(3, 4))
            .unwrap();
        assert_eq!(cache.layer(0).len(), 3);
        assert_eq!(cache.layer(1).len(), 0);
    }
}
