//! # realm-llm
//!
//! A from-scratch, INT8-quantized transformer inference engine with GEMM interception hooks.
//!
//! This crate is the substrate that the ReaLM paper's error-injection study and statistical
//! ABFT protection run on. It reproduces the two Transformer-block variants studied in the
//! paper (Fig. 2):
//!
//! * **OPT-style** blocks — LayerNorm, attention, ReLU MLP (`FC1`/`FC2`);
//! * **LLaMA-style** blocks — RMSNorm, attention, SiLU-gated MLP (`Gate`/`Up`/`Down`).
//!
//! Every linear-algebra component named in the paper (`Q`, `K`, `V`, `QKᵀ`, `SV`, `O`, `FC1`,
//! `FC2`, `Gate`, `Up`, `Down`) runs through the same quantized GEMM datapath: operands are
//! quantized to INT8, accumulated in INT32 and only then converted back — exactly the point
//! where the paper injects transient hardware errors and where ABFT checksums are verified.
//! The [`hooks::GemmHook`] trait exposes that point to downstream crates: the error injector
//! (`realm-inject`) and the ABFT protectors (`realm-abft`, via `realm-core`) are both just
//! hooks.
//!
//! Model weights are synthetic (see [`weights`]): there is no pretrained checkpoint, but the
//! generator reproduces the statistical structure — a near-zero bulk plus a few large outlier
//! channels — that the paper identifies as the root cause of the sensitivity of
//! post-normalization components.
//!
//! # Example
//!
//! ```
//! use realm_llm::{config::ModelConfig, model::Model, hooks::NoopHook};
//!
//! # fn main() -> Result<(), realm_llm::LlmError> {
//! let config = ModelConfig::tiny_opt();
//! let model = Model::new(&config, 42)?;
//! let prompt = vec![1, 5, 9, 3];
//! let mut hook = NoopHook;
//! let output = model.generate(&prompt, 4, &mut hook)?;
//! assert_eq!(output.tokens.len(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod attention;
pub mod batch;
pub mod block;
pub mod component;
pub mod config;
pub mod hooks;
pub mod kv_cache;
pub mod mlp;
pub mod model;
pub mod norm;
pub mod quantized;
pub mod weights;

mod error;

pub use batch::{BatchRequest, BatchScheduler, BatchedKvCache};
pub use component::{Component, Stage};
pub use config::{Architecture, ModelConfig};
pub use error::LlmError;
pub use hooks::{GemmContext, GemmHook, GemmOrigin, NoopHook};
pub use model::Model;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LlmError>;
