//! Multi-head self-attention with KV cache, built entirely from quantized GEMMs.
//!
//! The attention path contributes six of the paper's network components: the `Q`, `K`, `V`
//! projections, the score GEMM `QKᵀ`, the context GEMM `SV`, and the output projection `O`.
//! `Q`/`K`/`V` outputs are re-quantized to INT8 (they feed further quantized GEMMs), while the
//! score and context GEMMs return floating point; `O` feeds the residual stream and the next
//! normalization, which is why the paper finds it to be the most sensitive attention
//! component.

use crate::activation::softmax_rows_in_place;
use crate::batch::BatchedLayerCache;
use crate::component::{Component, Stage};
use crate::config::ModelConfig;
use crate::hooks::{GemmContext, GemmHook};
use crate::kv_cache::LayerCache;
use crate::quantized::{quant_matmul_ws, OutputMode, QuantLinear};
use crate::weights;
use crate::Result;
use realm_tensor::rng::SeededRng;
use realm_tensor::{GemmEngine, MatF32, RowPartition, Workspace};

/// Multi-head self-attention for a single Transformer layer.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: QuantLinear,
    wk: QuantLinear,
    wv: QuantLinear,
    wo: QuantLinear,
    num_heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention layer with synthetic weights drawn from `rng`.
    pub fn new(config: &ModelConfig, rng: &mut SeededRng) -> Self {
        let h = config.hidden_size;
        let make = |rng: &mut SeededRng, mode| {
            QuantLinear::from_f32(&weights::projection(rng, h, h), mode)
        };
        Self {
            wq: make(rng, OutputMode::RequantizedInt8),
            wk: make(rng, OutputMode::RequantizedInt8),
            wv: make(rng, OutputMode::RequantizedInt8),
            wo: make(rng, OutputMode::Float),
            num_heads: config.num_heads,
            head_dim: config.head_dim(),
        }
    }

    /// Routes this layer's projection GEMMs through the packed (default) or unpacked
    /// weight path — see [`QuantLinear::set_packing`]. The attention-internal `QKᵀ`/`SV`
    /// GEMMs multiply two activations and are unaffected.
    pub fn set_weight_packing(&mut self, enabled: bool) {
        self.wq.set_packing(enabled);
        self.wk.set_packing(enabled);
        self.wv.set_packing(enabled);
        self.wo.set_packing(enabled);
    }

    /// Shards (or, with `None`, un-shards) the four projection weights over a
    /// tensor-parallel rank group — see [`QuantLinear::set_tensor_parallel`]. The
    /// attention-internal `QKᵀ`/`SV` GEMMs multiply two activations and are unaffected.
    pub fn set_tensor_parallel(&mut self, group: Option<&std::sync::Arc<realm_tensor::TpGroup>>) {
        self.wq.set_tensor_parallel(group);
        self.wk.set_tensor_parallel(group);
        self.wv.set_tensor_parallel(group);
        self.wo.set_tensor_parallel(group);
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Dimension of each head.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Runs attention over `x` (shape `(new_tokens, hidden)`), reading and updating the
    /// layer's KV cache.
    ///
    /// During prefill `x` holds the whole prompt and the cache starts empty; during decode
    /// `x` holds a single new token and the cache holds everything generated so far.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs and cache operations.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        cache: &mut LayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_ws(x, layer, stage, cache, sequence, engine, hook, &mut ws)
    }

    /// [`MultiHeadAttention::forward`] drawing every intermediate — projections, per-head
    /// slices, transposed keys, scores, probabilities and the context matrix — from `ws`.
    /// The returned matrix is workspace-pooled; output is bit-identical.
    ///
    /// The score/context GEMMs run **per query row** against exactly that row's visible
    /// prefix of the cache (rows `0..=p` for the query at global position `p`), so no
    /// causal mask is needed and — together with the per-row quantization of the
    /// projections — processing a prompt in chunks of any size is bit-identical to
    /// processing it monolithically: prefilling `n` tokens is the same arithmetic as `n`
    /// decode steps. This is the invariant `tests/chunked_parity.rs` proves end to end.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs and cache operations.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_ws(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        cache: &mut LayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let offset = cache.len();
        let ctx = |component: Component, sequence: &mut usize| {
            let c = GemmContext::new(component, layer, stage, *sequence);
            *sequence += 1;
            c
        };

        let q = self
            .wq
            .forward_ws(x, engine, &ctx(Component::Q, sequence), hook, ws)?;
        let k = self
            .wk
            .forward_ws(x, engine, &ctx(Component::K, sequence), hook, ws)?;
        let v = self
            .wv
            .forward_ws(x, engine, &ctx(Component::V, sequence), hook, ws)?;

        let appended = cache.append(&k, &v);
        ws.recycle_mat_f32(k);
        ws.recycle_mat_f32(v);
        if let Err(e) = appended {
            ws.recycle_mat_f32(q);
            return Err(e);
        }

        let new_tokens = x.rows();
        let hidden = self.num_heads * self.head_dim;
        let mut context = ws.take_mat_f32(new_tokens, hidden);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let cached = cache.len();
        let mut q_h = ws.take_mat_f32(1, self.head_dim);
        let mut k_h_t = ws.take_mat_f32(self.head_dim, cached);
        let mut v_h = ws.take_mat_f32(cached, self.head_dim);
        let ran = (|| -> Result<()> {
            let keys = cache.keys().expect("cache populated by append");
            let values = cache.values().expect("cache populated by append");
            for i in 0..new_tokens {
                // Query row i sits at global position offset + i and attends to exactly
                // the cache rows 0..=offset+i; truncating the operands replaces the
                // causal mask and keeps each row's GEMM shapes a function of its global
                // position alone — never of the chunk boundaries.
                let visible = offset + i + 1;
                for h in 0..self.num_heads {
                    let start = h * self.head_dim;
                    rows_cols_slice_into(&q, i, 1, start, self.head_dim, &mut q_h);
                    limited_cols_slice_transposed_into(
                        keys,
                        visible,
                        start,
                        self.head_dim,
                        &mut k_h_t,
                    );
                    limited_cols_slice_into(values, visible, start, self.head_dim, &mut v_h);

                    let mut scores = quant_matmul_ws(
                        &q_h,
                        &k_h_t,
                        engine,
                        &ctx(Component::QkT, sequence),
                        hook,
                        OutputMode::Float,
                        ws,
                    )?;
                    scores.apply(|s| s * scale);
                    softmax_rows_in_place(&mut scores);

                    let ctx_h = quant_matmul_ws(
                        &scores,
                        &v_h,
                        engine,
                        &ctx(Component::Sv, sequence),
                        hook,
                        OutputMode::Float,
                        ws,
                    );
                    ws.recycle_mat_f32(scores);
                    let ctx_h = ctx_h?;
                    context.row_mut(i)[start..start + self.head_dim].copy_from_slice(ctx_h.row(0));
                    ws.recycle_mat_f32(ctx_h);
                }
            }
            Ok(())
        })();
        ws.recycle_mat_f32(q_h);
        ws.recycle_mat_f32(k_h_t);
        ws.recycle_mat_f32(v_h);
        ws.recycle_mat_f32(q);
        if let Err(e) = ran {
            ws.recycle_mat_f32(context);
            return Err(e);
        }

        let out = self
            .wo
            .forward_ws(&context, engine, &ctx(Component::O, sequence), hook, ws);
        ws.recycle_mat_f32(context);
        out
    }

    /// Runs attention over a batch-stacked `x` (shape `(sum_new_tokens, hidden)`, rows
    /// grouped by `parts`), reading and updating the shared layer cache.
    ///
    /// The `Q`/`K`/`V`/`O` projections each run as **one** batch-wide GEMM (per-row
    /// quantization keeps them bit-exact with per-sequence execution); the score and
    /// context GEMMs run per query row and per head against that row's visible prefix of
    /// the cache, because each sequence has its own cache length. Empty groups (completed
    /// sequences in lockstep decode) are skipped.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs and cache operations.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        cache: &mut BatchedLayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let mut ws = Workspace::new();
        self.forward_batch_ws(
            x, parts, layer, stage, cache, sequence, engine, hook, &mut ws,
        )
    }

    /// [`MultiHeadAttention::forward_batch`] drawing every intermediate — including each
    /// sequence's cached key/value views — from `ws`. The returned matrix is
    /// workspace-pooled; output is bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs and cache operations.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch_ws(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        cache: &mut BatchedLayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
    ) -> Result<MatF32> {
        let shared_ctx = |component: Component, sequence: &mut usize| {
            let c = GemmContext::new(component, layer, stage, *sequence).batched();
            *sequence += 1;
            c
        };

        let q = self.wq.forward_batched_ws(
            x,
            parts,
            engine,
            &shared_ctx(Component::Q, sequence),
            hook,
            ws,
        )?;
        let k = self.wk.forward_batched_ws(
            x,
            parts,
            engine,
            &shared_ctx(Component::K, sequence),
            hook,
            ws,
        );
        let k = match k {
            Ok(k) => k,
            Err(e) => {
                ws.recycle_mat_f32(q);
                return Err(e);
            }
        };
        let v = self.wv.forward_batched_ws(
            x,
            parts,
            engine,
            &shared_ctx(Component::V, sequence),
            hook,
            ws,
        );
        let v = match v {
            Ok(v) => v,
            Err(e) => {
                ws.recycle_mat_f32(q);
                ws.recycle_mat_f32(k);
                return Err(e);
            }
        };

        // Cache lengths before the append are each sequence's resident-prefix offset.
        let result = self.attend_batch_ws(
            x, parts, layer, stage, cache, sequence, engine, hook, ws, &q, &k, &v,
        );
        ws.recycle_mat_f32(q);
        ws.recycle_mat_f32(k);
        ws.recycle_mat_f32(v);
        let context = result?;
        let out = self.wo.forward_batched_ws(
            &context,
            parts,
            engine,
            &shared_ctx(Component::O, sequence),
            hook,
            ws,
        );
        ws.recycle_mat_f32(context);
        out
    }

    /// The per-sequence half of the batched attention pass: appends the new keys/values,
    /// then runs the score/context GEMMs per query row and per head against that row's
    /// visible prefix (each sequence has its own cache length), assembling the
    /// workspace-pooled context matrix.
    #[allow(clippy::too_many_arguments)] // internal splice of the batched forward
    fn attend_batch_ws(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        cache: &mut BatchedLayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
        ws: &mut Workspace,
        q: &MatF32,
        k: &MatF32,
        v: &MatF32,
    ) -> Result<MatF32> {
        // Cache lengths before the append are each sequence's resident-prefix offset; the
        // buffer is pooled (as i64, the workspace's integer-scratch type) so the serving
        // loop does not re-allocate it every layer of every step.
        let mut prior = ws.take_vec_i64(parts.num_groups());
        for (g, p) in prior.iter_mut().enumerate() {
            *p = cache.seq_len(g) as i64;
        }
        if let Err(e) = cache.append_batch(k, v, parts) {
            ws.recycle_vec_i64(prior);
            return Err(e);
        }

        let hidden = self.num_heads * self.head_dim;
        let mut context = ws.take_mat_f32(x.rows(), hidden);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        // Checkouts sized for the longest sequence of the batch: the per-group
        // `*_into` refills below then always stay within capacity.
        let max_len = (0..parts.num_groups())
            .map(|g| cache.seq_len(g))
            .max()
            .unwrap_or(0);
        let mut keys_g = ws.take_mat_f32(max_len, hidden);
        let mut values_g = ws.take_mat_f32(max_len, hidden);
        let mut q_h = ws.take_mat_f32(1, self.head_dim);
        let mut k_h_t = ws.take_mat_f32(self.head_dim, max_len);
        let mut v_h = ws.take_mat_f32(max_len, self.head_dim);
        let ran = (|| -> Result<()> {
            for (g, &prior_len) in prior.iter().enumerate() {
                let prior_len = prior_len as usize;
                let range = parts.range(g);
                if range.is_empty() {
                    continue;
                }
                let new_tokens = range.len();
                cache.seq_keys_into(g, &mut keys_g)?;
                cache.seq_values_into(g, &mut values_g)?;
                let seq_ctx = |component: Component, sequence: &mut usize| {
                    let c = GemmContext::new(component, layer, stage, *sequence).for_sequence(g);
                    *sequence += 1;
                    c
                };

                for i in 0..new_tokens {
                    // Same visible-prefix truncation as the solo path: query row i of
                    // this group sits at global position prior_len + i, so its score and
                    // context GEMMs see exactly the rows a solo forward at that position
                    // would — chunk- and batch-invariant by construction.
                    let visible = prior_len + i + 1;
                    for h in 0..self.num_heads {
                        let start = h * self.head_dim;
                        rows_cols_slice_into(q, range.start + i, 1, start, self.head_dim, &mut q_h);
                        limited_cols_slice_transposed_into(
                            &keys_g,
                            visible,
                            start,
                            self.head_dim,
                            &mut k_h_t,
                        );
                        limited_cols_slice_into(&values_g, visible, start, self.head_dim, &mut v_h);

                        let mut scores = quant_matmul_ws(
                            &q_h,
                            &k_h_t,
                            engine,
                            &seq_ctx(Component::QkT, sequence),
                            hook,
                            OutputMode::Float,
                            ws,
                        )?;
                        scores.apply(|s| s * scale);
                        softmax_rows_in_place(&mut scores);

                        let ctx_h = quant_matmul_ws(
                            &scores,
                            &v_h,
                            engine,
                            &seq_ctx(Component::Sv, sequence),
                            hook,
                            OutputMode::Float,
                            ws,
                        );
                        ws.recycle_mat_f32(scores);
                        let ctx_h = ctx_h?;
                        context.row_mut(range.start + i)[start..start + self.head_dim]
                            .copy_from_slice(ctx_h.row(0));
                        ws.recycle_mat_f32(ctx_h);
                    }
                }
            }
            Ok(())
        })();
        ws.recycle_vec_i64(prior);
        ws.recycle_mat_f32(keys_g);
        ws.recycle_mat_f32(values_g);
        ws.recycle_mat_f32(q_h);
        ws.recycle_mat_f32(k_h_t);
        ws.recycle_mat_f32(v_h);
        match ran {
            Ok(()) => Ok(context),
            Err(e) => {
                ws.recycle_mat_f32(context);
                Err(e)
            }
        }
    }
}

/// Extracts a contiguous block of columns as a new matrix (the allocating oracle the
/// `_into` slice helpers are tested against).
#[cfg(test)]
pub(crate) fn cols_slice(m: &MatF32, start: usize, count: usize) -> MatF32 {
    MatF32::from_fn(m.rows(), count, |r, c| m[(r, start + c)])
}

/// A row range of [`cols_slice`] into caller-provided storage (identical values to
/// `rows_slice(row_start, rows)` followed by `cols_slice(start, count)`).
fn rows_cols_slice_into(
    m: &MatF32,
    row_start: usize,
    rows: usize,
    start: usize,
    count: usize,
    out: &mut MatF32,
) {
    out.resize_overwrite(rows, count);
    for r in 0..rows {
        out.row_mut(r)
            .copy_from_slice(&m.row(row_start + r)[start..start + count]);
    }
}

/// The first `rows` rows of a column block of `m` into caller-provided storage: identical
/// values to `cols_slice(m, start, count)` truncated to its leading rows. The truncation
/// is how the attention path limits a query to its visible prefix of the KV cache.
fn limited_cols_slice_into(m: &MatF32, rows: usize, start: usize, count: usize, out: &mut MatF32) {
    out.resize_overwrite(rows, count);
    for r in 0..rows {
        out.row_mut(r)
            .copy_from_slice(&m.row(r)[start..start + count]);
    }
}

/// The transpose of [`limited_cols_slice_into`] into caller-provided storage: identical
/// values to `cols_slice(m, start, count)` truncated to `rows` rows and transposed,
/// written without the intermediate.
fn limited_cols_slice_transposed_into(
    m: &MatF32,
    rows: usize,
    start: usize,
    count: usize,
    out: &mut MatF32,
) {
    out.resize_overwrite(count, rows);
    for r in 0..rows {
        for c in 0..count {
            out[(c, r)] = m[(r, start + c)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{NoopHook, RecordingHook};
    use realm_tensor::rng;
    use realm_tensor::ReferenceEngine;

    fn attention_and_input() -> (MultiHeadAttention, MatF32, ModelConfig) {
        let config = ModelConfig::tiny_opt();
        let mut r = rng::seeded(17);
        let attn = MultiHeadAttention::new(&config, &mut r);
        let x = rng::gaussian_matrix(&mut r, 5, config.hidden_size, 0.0, 1.0);
        (attn, x, config)
    }

    #[test]
    fn forward_produces_hidden_sized_output() {
        let (attn, x, config) = attention_and_input();
        let mut cache = LayerCache::new();
        let mut seq = 0;
        let y = attn
            .forward(
                &x,
                0,
                Stage::Prefill,
                &mut cache,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();
        assert_eq!(y.shape(), (5, config.hidden_size));
        assert_eq!(cache.len(), 5);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gemm_components_are_reported_in_order() {
        let (attn, x, _) = attention_and_input();
        let mut cache = LayerCache::new();
        let mut seq = 0;
        let mut rec = RecordingHook::new();
        attn.forward(
            &x,
            3,
            Stage::Prefill,
            &mut cache,
            &mut seq,
            &ReferenceEngine,
            &mut rec,
        )
        .unwrap();
        // Q, K, V once each; QK^T and SV once per query row per head; O once.
        assert_eq!(rec.count_for(Component::Q), 1);
        assert_eq!(rec.count_for(Component::K), 1);
        assert_eq!(rec.count_for(Component::V), 1);
        assert_eq!(rec.count_for(Component::QkT), x.rows() * attn.num_heads());
        assert_eq!(rec.count_for(Component::Sv), x.rows() * attn.num_heads());
        assert_eq!(rec.count_for(Component::O), 1);
        assert!(rec.calls.iter().all(|c| c.layer == 3));
        // Sequence numbers are strictly increasing.
        let seqs: Vec<usize> = rec.calls.iter().map(|c| c.sequence).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn decode_step_attends_to_cached_prefix() {
        let (attn, x, config) = attention_and_input();
        let mut cache = LayerCache::new();
        let mut seq = 0;
        attn.forward(
            &x,
            0,
            Stage::Prefill,
            &mut cache,
            &mut seq,
            &ReferenceEngine,
            &mut NoopHook,
        )
        .unwrap();
        assert_eq!(cache.len(), 5);
        let mut r = rng::seeded(99);
        let new = rng::gaussian_matrix(&mut r, 1, config.hidden_size, 0.0, 1.0);
        let y = attn
            .forward(
                &new,
                0,
                Stage::Decode,
                &mut cache,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();
        assert_eq!(y.shape(), (1, config.hidden_size));
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn prefill_then_decode_matches_full_prefill_bit_exactly() {
        // Processing the six tokens in any chunking must give bit-identical outputs to
        // processing all six at once: every projection row is quantized with its own
        // scale and every query row's score/context GEMMs see exactly its visible prefix,
        // so nothing in the arithmetic depends on the chunk boundaries.
        let config = ModelConfig::tiny_opt();
        let mut r = rng::seeded(4);
        let attn = MultiHeadAttention::new(&config, &mut r);
        let full = rng::gaussian_matrix(&mut r, 6, config.hidden_size, 0.0, 1.0);

        let mut cache_full = LayerCache::new();
        let mut seq = 0;
        let y_full = attn
            .forward(
                &full,
                0,
                Stage::Prefill,
                &mut cache_full,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();

        for split in 1..full.rows() {
            let head = full.rows_slice(0, split).unwrap();
            let tail = full.rows_slice(split, full.rows() - split).unwrap();
            let mut cache_inc = LayerCache::new();
            let mut seq = 0;
            let y_head = attn
                .forward(
                    &head,
                    0,
                    Stage::Prefill,
                    &mut cache_inc,
                    &mut seq,
                    &ReferenceEngine,
                    &mut NoopHook,
                )
                .unwrap();
            let y_tail = attn
                .forward(
                    &tail,
                    0,
                    if tail.rows() == 1 {
                        Stage::Decode
                    } else {
                        Stage::Prefill
                    },
                    &mut cache_inc,
                    &mut seq,
                    &ReferenceEngine,
                    &mut NoopHook,
                )
                .unwrap();
            assert_eq!(cache_inc.len(), full.rows());
            for rr in 0..split {
                assert_eq!(
                    y_full.row(rr),
                    y_head.row(rr),
                    "split {split} head row {rr}"
                );
            }
            for rr in split..full.rows() {
                assert_eq!(
                    y_full.row(rr),
                    y_tail.row(rr - split),
                    "split {split} tail row {rr}"
                );
            }
        }
    }

    #[test]
    fn cols_slice_extracts_expected_columns() {
        let m = MatF32::from_fn(2, 6, |r, c| (r * 6 + c) as f32);
        let s = cols_slice(&m, 2, 3);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(s[(1, 2)], 10.0);
    }
}
