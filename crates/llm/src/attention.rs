//! Multi-head self-attention with KV cache, built entirely from quantized GEMMs.
//!
//! The attention path contributes six of the paper's network components: the `Q`, `K`, `V`
//! projections, the score GEMM `QKᵀ`, the context GEMM `SV`, and the output projection `O`.
//! `Q`/`K`/`V` outputs are re-quantized to INT8 (they feed further quantized GEMMs), while the
//! score and context GEMMs return floating point; `O` feeds the residual stream and the next
//! normalization, which is why the paper finds it to be the most sensitive attention
//! component.

use crate::activation::{apply_causal_mask, softmax_rows};
use crate::batch::BatchedLayerCache;
use crate::component::{Component, Stage};
use crate::config::ModelConfig;
use crate::hooks::{GemmContext, GemmHook};
use crate::kv_cache::LayerCache;
use crate::quantized::{quant_matmul, OutputMode, QuantLinear};
use crate::weights;
use crate::Result;
use realm_tensor::rng::SeededRng;
use realm_tensor::{GemmEngine, MatF32, RowPartition};

/// Multi-head self-attention for a single Transformer layer.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: QuantLinear,
    wk: QuantLinear,
    wv: QuantLinear,
    wo: QuantLinear,
    num_heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention layer with synthetic weights drawn from `rng`.
    pub fn new(config: &ModelConfig, rng: &mut SeededRng) -> Self {
        let h = config.hidden_size;
        let make = |rng: &mut SeededRng, mode| {
            QuantLinear::from_f32(&weights::projection(rng, h, h), mode)
        };
        Self {
            wq: make(rng, OutputMode::RequantizedInt8),
            wk: make(rng, OutputMode::RequantizedInt8),
            wv: make(rng, OutputMode::RequantizedInt8),
            wo: make(rng, OutputMode::Float),
            num_heads: config.num_heads,
            head_dim: config.head_dim(),
        }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Dimension of each head.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Runs attention over `x` (shape `(new_tokens, hidden)`), reading and updating the
    /// layer's KV cache.
    ///
    /// During prefill `x` holds the whole prompt and the cache starts empty; during decode
    /// `x` holds a single new token and the cache holds everything generated so far.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs and cache operations.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward(
        &self,
        x: &MatF32,
        layer: usize,
        stage: Stage,
        cache: &mut LayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        let offset = cache.len();
        let ctx = |component: Component, sequence: &mut usize| {
            let c = GemmContext::new(component, layer, stage, *sequence);
            *sequence += 1;
            c
        };

        let q = self
            .wq
            .forward(x, engine, &ctx(Component::Q, sequence), hook)?;
        let k = self
            .wk
            .forward(x, engine, &ctx(Component::K, sequence), hook)?;
        let v = self
            .wv
            .forward(x, engine, &ctx(Component::V, sequence), hook)?;

        cache.append(&k, &v)?;
        let keys = cache.keys().expect("cache populated by append");
        let values = cache.values().expect("cache populated by append");

        let new_tokens = x.rows();
        let hidden = self.num_heads * self.head_dim;
        let mut context = MatF32::zeros(new_tokens, hidden);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        for h in 0..self.num_heads {
            let start = h * self.head_dim;
            let q_h = cols_slice(&q, start, self.head_dim);
            let k_h = cols_slice(keys, start, self.head_dim);
            let v_h = cols_slice(values, start, self.head_dim);

            let mut scores = quant_matmul(
                &q_h,
                &k_h.transposed(),
                engine,
                &ctx(Component::QkT, sequence),
                hook,
                OutputMode::Float,
            )?;
            scores.apply(|s| s * scale);
            apply_causal_mask(&mut scores, offset);
            let probs = softmax_rows(&scores);

            let ctx_h = quant_matmul(
                &probs,
                &v_h,
                engine,
                &ctx(Component::Sv, sequence),
                hook,
                OutputMode::Float,
            )?;
            for r in 0..new_tokens {
                for c in 0..self.head_dim {
                    context[(r, start + c)] = ctx_h[(r, c)];
                }
            }
        }

        self.wo
            .forward(&context, engine, &ctx(Component::O, sequence), hook)
    }

    /// Runs attention over a batch-stacked `x` (shape `(sum_new_tokens, hidden)`, rows
    /// grouped by `parts`), reading and updating the shared layer cache.
    ///
    /// The `Q`/`K`/`V`/`O` projections each run as **one** batch-wide GEMM (per-group
    /// quantization keeps them bit-exact with per-sequence execution); the score and
    /// context GEMMs run per sequence and per head because each sequence has its own cache
    /// length and causal mask. Empty groups (completed sequences in lockstep decode) are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying GEMMs and cache operations.
    #[allow(clippy::too_many_arguments)] // mirrors the block-forward plumbing: ctx + engine + hook
    pub fn forward_batch(
        &self,
        x: &MatF32,
        parts: &RowPartition,
        layer: usize,
        stage: Stage,
        cache: &mut BatchedLayerCache,
        sequence: &mut usize,
        engine: &dyn GemmEngine,
        hook: &mut dyn GemmHook,
    ) -> Result<MatF32> {
        // Cache lengths before the append are each sequence's causal-mask offset.
        let prior: Vec<usize> = (0..parts.num_groups()).map(|g| cache.seq_len(g)).collect();
        let shared_ctx = |component: Component, sequence: &mut usize| {
            let c = GemmContext::new(component, layer, stage, *sequence).batched();
            *sequence += 1;
            c
        };

        let q =
            self.wq
                .forward_batched(x, parts, engine, &shared_ctx(Component::Q, sequence), hook)?;
        let k =
            self.wk
                .forward_batched(x, parts, engine, &shared_ctx(Component::K, sequence), hook)?;
        let v =
            self.wv
                .forward_batched(x, parts, engine, &shared_ctx(Component::V, sequence), hook)?;

        cache.append_batch(&k, &v, parts)?;

        let hidden = self.num_heads * self.head_dim;
        let mut context = MatF32::zeros(x.rows(), hidden);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        for (g, &mask_offset) in prior.iter().enumerate() {
            let range = parts.range(g);
            if range.is_empty() {
                continue;
            }
            let new_tokens = range.len();
            let q_g = q.rows_slice(range.start, new_tokens)?;
            let keys_g = cache.seq_keys(g)?;
            let values_g = cache.seq_values(g)?;
            let seq_ctx = |component: Component, sequence: &mut usize| {
                let c = GemmContext::new(component, layer, stage, *sequence).for_sequence(g);
                *sequence += 1;
                c
            };

            for h in 0..self.num_heads {
                let start = h * self.head_dim;
                let q_h = cols_slice(&q_g, start, self.head_dim);
                let k_h = cols_slice(&keys_g, start, self.head_dim);
                let v_h = cols_slice(&values_g, start, self.head_dim);

                let mut scores = quant_matmul(
                    &q_h,
                    &k_h.transposed(),
                    engine,
                    &seq_ctx(Component::QkT, sequence),
                    hook,
                    OutputMode::Float,
                )?;
                scores.apply(|s| s * scale);
                apply_causal_mask(&mut scores, mask_offset);
                let probs = softmax_rows(&scores);

                let ctx_h = quant_matmul(
                    &probs,
                    &v_h,
                    engine,
                    &seq_ctx(Component::Sv, sequence),
                    hook,
                    OutputMode::Float,
                )?;
                for r in 0..new_tokens {
                    for c in 0..self.head_dim {
                        context[(range.start + r, start + c)] = ctx_h[(r, c)];
                    }
                }
            }
        }

        self.wo.forward_batched(
            &context,
            parts,
            engine,
            &shared_ctx(Component::O, sequence),
            hook,
        )
    }
}

/// Extracts a contiguous block of columns as a new matrix.
pub(crate) fn cols_slice(m: &MatF32, start: usize, count: usize) -> MatF32 {
    MatF32::from_fn(m.rows(), count, |r, c| m[(r, start + c)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{NoopHook, RecordingHook};
    use realm_tensor::rng;
    use realm_tensor::ReferenceEngine;

    fn attention_and_input() -> (MultiHeadAttention, MatF32, ModelConfig) {
        let config = ModelConfig::tiny_opt();
        let mut r = rng::seeded(17);
        let attn = MultiHeadAttention::new(&config, &mut r);
        let x = rng::gaussian_matrix(&mut r, 5, config.hidden_size, 0.0, 1.0);
        (attn, x, config)
    }

    #[test]
    fn forward_produces_hidden_sized_output() {
        let (attn, x, config) = attention_and_input();
        let mut cache = LayerCache::new();
        let mut seq = 0;
        let y = attn
            .forward(
                &x,
                0,
                Stage::Prefill,
                &mut cache,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();
        assert_eq!(y.shape(), (5, config.hidden_size));
        assert_eq!(cache.len(), 5);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gemm_components_are_reported_in_order() {
        let (attn, x, _) = attention_and_input();
        let mut cache = LayerCache::new();
        let mut seq = 0;
        let mut rec = RecordingHook::new();
        attn.forward(
            &x,
            3,
            Stage::Prefill,
            &mut cache,
            &mut seq,
            &ReferenceEngine,
            &mut rec,
        )
        .unwrap();
        // Q, K, V once each; QK^T and SV once per head; O once.
        assert_eq!(rec.count_for(Component::Q), 1);
        assert_eq!(rec.count_for(Component::K), 1);
        assert_eq!(rec.count_for(Component::V), 1);
        assert_eq!(rec.count_for(Component::QkT), attn.num_heads());
        assert_eq!(rec.count_for(Component::Sv), attn.num_heads());
        assert_eq!(rec.count_for(Component::O), 1);
        assert!(rec.calls.iter().all(|c| c.layer == 3));
        // Sequence numbers are strictly increasing.
        let seqs: Vec<usize> = rec.calls.iter().map(|c| c.sequence).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn decode_step_attends_to_cached_prefix() {
        let (attn, x, config) = attention_and_input();
        let mut cache = LayerCache::new();
        let mut seq = 0;
        attn.forward(
            &x,
            0,
            Stage::Prefill,
            &mut cache,
            &mut seq,
            &ReferenceEngine,
            &mut NoopHook,
        )
        .unwrap();
        assert_eq!(cache.len(), 5);
        let mut r = rng::seeded(99);
        let new = rng::gaussian_matrix(&mut r, 1, config.hidden_size, 0.0, 1.0);
        let y = attn
            .forward(
                &new,
                0,
                Stage::Decode,
                &mut cache,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();
        assert_eq!(y.shape(), (1, config.hidden_size));
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn prefill_then_decode_matches_full_prefill() {
        // Processing tokens [0..5) then token 5 must give the same final-token output as
        // processing all six at once: the KV-cache path is numerically consistent (up to
        // re-quantization of the incremental activations, which is exact here because each
        // row is quantized with the same per-tensor scale derived from identical data).
        let config = ModelConfig::tiny_opt();
        let mut r = rng::seeded(4);
        let attn = MultiHeadAttention::new(&config, &mut r);
        let full = rng::gaussian_matrix(&mut r, 6, config.hidden_size, 0.0, 1.0);
        let prefix = full.rows_slice(0, 5).unwrap();
        let last = full.rows_slice(5, 1).unwrap();

        let mut cache_full = LayerCache::new();
        let mut seq = 0;
        let y_full = attn
            .forward(
                &full,
                0,
                Stage::Prefill,
                &mut cache_full,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();

        let mut cache_inc = LayerCache::new();
        let mut seq = 0;
        attn.forward(
            &prefix,
            0,
            Stage::Prefill,
            &mut cache_inc,
            &mut seq,
            &ReferenceEngine,
            &mut NoopHook,
        )
        .unwrap();
        let y_inc = attn
            .forward(
                &last,
                0,
                Stage::Decode,
                &mut cache_inc,
                &mut seq,
                &ReferenceEngine,
                &mut NoopHook,
            )
            .unwrap();

        for c in 0..config.hidden_size {
            let a = y_full[(5, c)];
            let b = y_inc[(0, c)];
            assert!(
                (a - b).abs() < 0.35,
                "channel {c}: full {a} vs incremental {b}"
            );
        }
    }

    #[test]
    fn cols_slice_extracts_expected_columns() {
        let m = MatF32::from_fn(2, 6, |r, c| (r * 6 + c) as f32);
        let s = cols_slice(&m, 2, 3);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(s[(1, 2)], 10.0);
    }
}
