//! Model configuration and scaled-down proxies of the paper's evaluation models.
//!
//! The paper evaluates OPT-1.3B, LLaMA-2-7B and LLaMA-3-8B. Pretrained checkpoints are not
//! available in this environment, so each is represented by a *proxy configuration*: the same
//! block architecture and component set, with hidden sizes scaled down far enough that
//! thousands of Monte-Carlo error-injection trials complete in seconds. The characterization
//! results depend on the architecture (normalization placement, softmax bounding, KV-cache
//! reuse) and on the activation statistics, both of which are preserved.

use crate::{LlmError, Result};
use realm_tensor::EngineKind;
use serde::{Deserialize, Serialize};

/// The Transformer block variant (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// OPT-style: LayerNorm + ReLU MLP (`FC1`/`FC2`).
    OptStyle,
    /// LLaMA-style: RMSNorm + SiLU-gated MLP (`Gate`/`Up`/`Down`).
    LlamaStyle,
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Architecture::OptStyle => f.write_str("OPT-style"),
            Architecture::LlamaStyle => f.write_str("LLaMA-style"),
        }
    }
}

/// Hyper-parameters of a synthetic quantized LLM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name used in reports (e.g. `"OPT-1.3B-proxy"`).
    pub name: String,
    /// Block architecture variant.
    pub architecture: Architecture,
    /// Hidden (embedding) dimension.
    pub hidden_size: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Number of Transformer blocks.
    pub num_layers: usize,
    /// Inner dimension of the MLP.
    pub ffn_size: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum sequence length (prompt + generated tokens).
    pub max_seq_len: usize,
    /// Fraction of hidden channels that carry large outlier magnitudes.
    pub outlier_fraction: f32,
    /// Magnitude gain of outlier channels relative to the bulk.
    pub outlier_gain: f32,
    /// GEMM execution backend the model's quantized datapath runs on. All backends are
    /// bit-exact (see `realm_tensor::engine`), so this only changes wall-clock speed; the
    /// presets default to [`EngineKind::auto`] (the SIMD parallel backend on AVX2 hosts).
    pub engine: EngineKind,
    /// Tensor-parallel degree: the number of persistent simulated ranks every linear
    /// layer's weights are column-sharded over (`realm_tensor::tp`). `1` (the presets'
    /// default) runs the unsharded single-device path; any degree is bit-exact with it.
    pub tp_degree: usize,
}

impl ModelConfig {
    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] if any dimension is zero, the hidden size is not
    /// divisible by the number of heads, or the outlier fraction is outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.hidden_size == 0
            || self.num_heads == 0
            || self.num_layers == 0
            || self.ffn_size == 0
            || self.vocab_size == 0
            || self.max_seq_len == 0
        {
            return Err(LlmError::InvalidConfig {
                detail: "all dimensions must be non-zero".into(),
            });
        }
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return Err(LlmError::InvalidConfig {
                detail: format!(
                    "hidden_size {} is not divisible by num_heads {}",
                    self.hidden_size, self.num_heads
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.outlier_fraction) {
            return Err(LlmError::InvalidConfig {
                detail: format!(
                    "outlier_fraction {} must be in [0, 1]",
                    self.outlier_fraction
                ),
            });
        }
        if self.outlier_gain < 1.0 {
            return Err(LlmError::InvalidConfig {
                detail: format!("outlier_gain {} must be >= 1", self.outlier_gain),
            });
        }
        if self.tp_degree == 0 {
            return Err(LlmError::InvalidConfig {
                detail: "tp_degree must be >= 1 (1 disables tensor parallelism)".into(),
            });
        }
        Ok(())
    }

    /// Dimension of each attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Components present in one block of this architecture, in execution order.
    pub fn block_components(&self) -> &'static [crate::Component] {
        match self.architecture {
            Architecture::OptStyle => &crate::Component::OPT_BLOCK,
            Architecture::LlamaStyle => &crate::Component::LLAMA_BLOCK,
        }
    }

    /// Number of GEMM invocations per block per forward pass (one per component).
    pub fn gemms_per_block(&self) -> usize {
        self.block_components().len()
    }

    /// Scaled-down proxy of OPT-1.3B (OPT-style block, 24 layers in the original).
    pub fn opt_1_3b_proxy() -> Self {
        Self {
            name: "OPT-1.3B-proxy".into(),
            architecture: Architecture::OptStyle,
            hidden_size: 128,
            num_heads: 4,
            num_layers: 6,
            ffn_size: 512,
            vocab_size: 512,
            max_seq_len: 64,
            outlier_fraction: 0.03,
            outlier_gain: 24.0,
            engine: EngineKind::auto(),
            tp_degree: 1,
        }
    }

    /// Scaled-down proxy of LLaMA-2-7B (LLaMA-style block, 32 layers in the original).
    pub fn llama_2_7b_proxy() -> Self {
        Self {
            name: "LLaMA-2-7B-proxy".into(),
            architecture: Architecture::LlamaStyle,
            hidden_size: 128,
            num_heads: 4,
            num_layers: 8,
            ffn_size: 384,
            vocab_size: 512,
            max_seq_len: 64,
            outlier_fraction: 0.03,
            outlier_gain: 24.0,
            engine: EngineKind::auto(),
            tp_degree: 1,
        }
    }

    /// Scaled-down proxy of LLaMA-3-8B (used in the paper's evaluation section).
    pub fn llama_3_8b_proxy() -> Self {
        Self {
            name: "LLaMA-3-8B-proxy".into(),
            architecture: Architecture::LlamaStyle,
            hidden_size: 160,
            num_heads: 5,
            num_layers: 8,
            ffn_size: 448,
            vocab_size: 640,
            max_seq_len: 64,
            outlier_fraction: 0.03,
            outlier_gain: 24.0,
            engine: EngineKind::auto(),
            tp_degree: 1,
        }
    }

    /// A very small OPT-style model for unit tests and doc examples.
    pub fn tiny_opt() -> Self {
        Self {
            name: "tiny-opt".into(),
            architecture: Architecture::OptStyle,
            hidden_size: 32,
            num_heads: 2,
            num_layers: 2,
            ffn_size: 64,
            vocab_size: 64,
            max_seq_len: 32,
            outlier_fraction: 0.05,
            outlier_gain: 16.0,
            engine: EngineKind::auto(),
            tp_degree: 1,
        }
    }

    /// A very small LLaMA-style model for unit tests and doc examples.
    pub fn tiny_llama() -> Self {
        Self {
            name: "tiny-llama".into(),
            architecture: Architecture::LlamaStyle,
            hidden_size: 32,
            num_heads: 2,
            num_layers: 2,
            ffn_size: 48,
            vocab_size: 64,
            max_seq_len: 32,
            outlier_fraction: 0.05,
            outlier_gain: 16.0,
            engine: EngineKind::auto(),
            tp_degree: 1,
        }
    }

    /// Returns a copy with the outlier channels disabled (used by the ablation benches).
    pub fn without_outliers(&self) -> Self {
        Self {
            outlier_fraction: 0.0,
            outlier_gain: 1.0,
            name: format!("{}-no-outliers", self.name),
            ..self.clone()
        }
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::tiny_opt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            ModelConfig::opt_1_3b_proxy(),
            ModelConfig::llama_2_7b_proxy(),
            ModelConfig::llama_3_8b_proxy(),
            ModelConfig::tiny_opt(),
            ModelConfig::tiny_llama(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn invalid_head_split_is_rejected() {
        let mut cfg = ModelConfig::tiny_opt();
        cfg.hidden_size = 30;
        cfg.num_heads = 4;
        assert!(matches!(
            cfg.validate(),
            Err(LlmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn zero_dimension_is_rejected() {
        let mut cfg = ModelConfig::tiny_llama();
        cfg.num_layers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn invalid_outlier_settings_are_rejected() {
        let mut cfg = ModelConfig::tiny_opt();
        cfg.outlier_fraction = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::tiny_opt();
        cfg.outlier_gain = 0.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_tp_degree_is_rejected() {
        let mut cfg = ModelConfig::tiny_opt();
        assert_eq!(cfg.tp_degree, 1, "presets default to the unsharded path");
        cfg.tp_degree = 0;
        assert!(cfg.validate().is_err());
        cfg.tp_degree = 4;
        cfg.validate().unwrap();
    }

    #[test]
    fn head_dim_divides_hidden() {
        let cfg = ModelConfig::opt_1_3b_proxy();
        assert_eq!(cfg.head_dim() * cfg.num_heads, cfg.hidden_size);
    }

    #[test]
    fn block_components_match_architecture() {
        assert_eq!(ModelConfig::tiny_opt().gemms_per_block(), 8);
        assert_eq!(ModelConfig::tiny_llama().gemms_per_block(), 9);
    }

    #[test]
    fn without_outliers_flattens_distribution() {
        let cfg = ModelConfig::opt_1_3b_proxy().without_outliers();
        assert_eq!(cfg.outlier_fraction, 0.0);
        assert!(cfg.name.contains("no-outliers"));
        cfg.validate().unwrap();
    }
}
