//! Network-component and inference-stage identifiers.
//!
//! The paper analyses resilience per *network component* (the individual GEMMs inside a
//! Transformer block, labelled `Q`, `K`, ..., `Down` in Fig. 2) and per *inference stage*
//! (prefill vs decode). These enums are the keys used everywhere in the workspace to target
//! error injection, attach ABFT protection and report results.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the GEMM-bearing network components of a Transformer block.
///
/// The OPT-style block contains `Q, K, V, QKᵀ, SV, O, FC1, FC2`; the LLaMA-style block
/// contains `Q, K, V, QKᵀ, SV, O, Gate, Up, Down`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Component {
    /// Query projection.
    Q,
    /// Key projection (re-quantized to INT8 for the attention score GEMM).
    K,
    /// Value projection.
    V,
    /// Attention score GEMM `Q·Kᵀ` (followed by softmax).
    QkT,
    /// Attention context GEMM `softmax(S)·V`.
    Sv,
    /// Attention output projection (feeds the residual stream and the next normalization).
    O,
    /// First MLP projection of the OPT-style block (followed by ReLU).
    Fc1,
    /// Second MLP projection of the OPT-style block (feeds the residual stream / next norm).
    Fc2,
    /// Gate projection of the LLaMA-style block (followed by SiLU).
    Gate,
    /// Up projection of the LLaMA-style block.
    Up,
    /// Down projection of the LLaMA-style block (feeds the residual stream / next norm).
    Down,
}

impl Component {
    /// All components, across both architectures.
    pub const ALL: [Component; 11] = [
        Component::Q,
        Component::K,
        Component::V,
        Component::QkT,
        Component::Sv,
        Component::O,
        Component::Fc1,
        Component::Fc2,
        Component::Gate,
        Component::Up,
        Component::Down,
    ];

    /// Components present in an OPT-style block, in execution order.
    pub const OPT_BLOCK: [Component; 8] = [
        Component::Q,
        Component::K,
        Component::V,
        Component::QkT,
        Component::Sv,
        Component::O,
        Component::Fc1,
        Component::Fc2,
    ];

    /// Components present in a LLaMA-style block, in execution order.
    pub const LLAMA_BLOCK: [Component; 9] = [
        Component::Q,
        Component::K,
        Component::V,
        Component::QkT,
        Component::Sv,
        Component::O,
        Component::Gate,
        Component::Up,
        Component::Down,
    ];

    /// Whether the paper classifies this component as *sensitive*.
    ///
    /// Sensitive components are the ones whose outputs feed a normalization layer through the
    /// residual stream (`O` in both architectures, `FC2` in OPT, `Down` in LLaMA); everything
    /// else is *resilient* (Sec. IV-A3).
    pub fn is_sensitive(self) -> bool {
        matches!(self, Component::O | Component::Fc2 | Component::Down)
    }

    /// Whether the component's output passes through a softmax before further use.
    ///
    /// Softmax bounds its outputs to `[0, 1]`, which is why `QKᵀ` errors remain confined.
    pub fn is_softmax_bounded(self) -> bool {
        matches!(self, Component::QkT)
    }

    /// Whether this component is an attention-internal activation GEMM (both operands are
    /// activations rather than static weights).
    pub fn is_activation_gemm(self) -> bool {
        matches!(self, Component::QkT | Component::Sv)
    }

    /// Short label used in reports, matching the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            Component::Q => "Q",
            Component::K => "K",
            Component::V => "V",
            Component::QkT => "QK^T",
            Component::Sv => "SV",
            Component::O => "O",
            Component::Fc1 => "FC1",
            Component::Fc2 => "FC2",
            Component::Gate => "Gate",
            Component::Up => "Up",
            Component::Down => "Down",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The generative-inference stage a GEMM executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Prompt processing: the whole prompt is consumed at once and the KV cache is populated.
    Prefill,
    /// Autoregressive generation: one token is produced per step using the KV cache.
    Decode,
}

impl Stage {
    /// Both stages in order of execution.
    pub const ALL: [Stage; 2] = [Stage::Prefill, Stage::Decode];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Prefill => f.write_str("prefill"),
            Stage::Decode => f.write_str("decode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitive_components_match_paper() {
        let sensitive: Vec<Component> = Component::ALL
            .iter()
            .copied()
            .filter(|c| c.is_sensitive())
            .collect();
        assert_eq!(
            sensitive,
            vec![Component::O, Component::Fc2, Component::Down]
        );
    }

    #[test]
    fn block_layouts_contain_expected_components() {
        assert!(Component::OPT_BLOCK.contains(&Component::Fc2));
        assert!(!Component::OPT_BLOCK.contains(&Component::Down));
        assert!(Component::LLAMA_BLOCK.contains(&Component::Gate));
        assert!(!Component::LLAMA_BLOCK.contains(&Component::Fc1));
    }

    #[test]
    fn qkt_is_softmax_bounded_and_activation_gemm() {
        assert!(Component::QkT.is_softmax_bounded());
        assert!(Component::QkT.is_activation_gemm());
        assert!(Component::Sv.is_activation_gemm());
        assert!(!Component::Q.is_activation_gemm());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Component::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Component::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Component::QkT.to_string(), "QK^T");
        assert_eq!(Stage::Prefill.to_string(), "prefill");
        assert_eq!(Stage::Decode.to_string(), "decode");
    }
}
