//! Systolic-array geometry, GEMM tiling and cycle counts.

use serde::{Deserialize, Serialize};

/// Dataflow of the systolic array (Sec. V-B, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weight-stationary: weights are pinned in the PEs, activations stream horizontally,
    /// partial sums move down the columns.
    WeightStationary,
    /// Output-stationary: outputs accumulate in place, weights and activations stream through.
    OutputStationary,
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataflow::WeightStationary => f.write_str("WS"),
            Dataflow::OutputStationary => f.write_str("OS"),
        }
    }
}

/// A rectangular systolic array of INT8 multiply-accumulate processing elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystolicArray {
    /// Number of PE rows.
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
    /// Dataflow the array is operated in.
    pub dataflow: Dataflow,
    /// Clock period in picoseconds (the paper uses 500 ps with a 439 ps critical path).
    pub clock_period_ps: f64,
}

/// Tiling of a GEMM onto the array, with the resulting cycle estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmSchedule {
    /// Number of tiles along the `m` (output rows) dimension.
    pub tiles_m: usize,
    /// Number of tiles along the `k` (inner) dimension.
    pub tiles_k: usize,
    /// Number of tiles along the `n` (output columns) dimension.
    pub tiles_n: usize,
    /// Total cycles to execute the GEMM, including pipeline fill/drain per tile.
    pub cycles: u64,
    /// Total multiply-accumulate operations.
    pub macs: u64,
}

impl GemmSchedule {
    /// Total number of tiles.
    pub fn total_tiles(&self) -> usize {
        self.tiles_m * self.tiles_k * self.tiles_n
    }

    /// Average PE utilization over the run (MACs per PE-cycle).
    pub fn utilization(&self, array: &SystolicArray) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles as f64 * (array.rows * array.cols) as f64)
    }
}

impl SystolicArray {
    /// The paper's evaluation platform: a 256×256 array, WS dataflow, 500 ps clock.
    pub fn paper_256x256_ws() -> Self {
        Self {
            rows: 256,
            cols: 256,
            dataflow: Dataflow::WeightStationary,
            clock_period_ps: 500.0,
        }
    }

    /// The paper's evaluation platform operated with the OS dataflow.
    pub fn paper_256x256_os() -> Self {
        Self {
            dataflow: Dataflow::OutputStationary,
            ..Self::paper_256x256_ws()
        }
    }

    /// A small array for unit tests.
    pub fn small(dataflow: Dataflow) -> Self {
        Self {
            rows: 8,
            cols: 8,
            dataflow,
            clock_period_ps: 500.0,
        }
    }

    /// Total number of processing elements.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Clock frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        1000.0 / self.clock_period_ps
    }

    /// Schedules a GEMM of shape `(m, k) × (k, n)` onto the array.
    ///
    /// The model tiles the operand dimensions onto the physical array and charges, per tile,
    /// the streaming cycles plus the pipeline fill/drain latency of the wavefront. It is a
    /// first-order model — adequate for relative energy/latency comparisons between
    /// protection schemes, which is all the evaluation needs.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn schedule_gemm(&self, m: usize, k: usize, n: usize) -> GemmSchedule {
        assert!(m > 0 && k > 0 && n > 0, "GEMM dimensions must be non-zero");
        let (tiles_m, tiles_k, tiles_n, cycles_per_tile) = match self.dataflow {
            Dataflow::WeightStationary => {
                // Weights (k × n) are pinned: k maps to rows, n to columns. Activations
                // stream m rows through each tile.
                let tiles_k = div_ceil(k, self.rows);
                let tiles_n = div_ceil(n, self.cols);
                let fill = (self.rows + self.cols) as u64;
                let stream = m as u64;
                (1, tiles_k, tiles_n, fill + stream)
            }
            Dataflow::OutputStationary => {
                // Outputs (m × n) are pinned: m maps to rows, n to columns. The k dimension
                // streams through each tile.
                let tiles_m = div_ceil(m, self.rows);
                let tiles_n = div_ceil(n, self.cols);
                let fill = (self.rows + self.cols) as u64;
                let stream = k as u64;
                (tiles_m, 1, tiles_n, fill + stream)
            }
        };
        let total_tiles = (tiles_m * tiles_k * tiles_n) as u64;
        GemmSchedule {
            tiles_m,
            tiles_k,
            tiles_n,
            cycles: total_tiles * cycles_per_tile,
            macs: (m as u64) * (k as u64) * (n as u64),
        }
    }

    /// Cycles needed to execute a GEMM of shape `(m, k) × (k, n)`.
    pub fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        self.schedule_gemm(m, k, n).cycles
    }

    /// Wall-clock time for a GEMM in nanoseconds.
    pub fn gemm_latency_ns(&self, m: usize, k: usize, n: usize) -> f64 {
        self.gemm_cycles(m, k, n) as f64 * self.clock_period_ps / 1000.0
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arrays_have_expected_geometry() {
        let ws = SystolicArray::paper_256x256_ws();
        assert_eq!(ws.num_pes(), 65536);
        assert_eq!(ws.dataflow, Dataflow::WeightStationary);
        assert!((ws.frequency_ghz() - 2.0).abs() < 1e-9);
        let os = SystolicArray::paper_256x256_os();
        assert_eq!(os.dataflow, Dataflow::OutputStationary);
        assert_eq!(os.rows, 256);
    }

    #[test]
    fn small_gemm_fits_in_one_tile() {
        let array = SystolicArray::small(Dataflow::WeightStationary);
        let s = array.schedule_gemm(4, 8, 8);
        assert_eq!(s.total_tiles(), 1);
        assert_eq!(s.macs, 4 * 8 * 8);
        assert!(s.cycles >= 4);
    }

    #[test]
    fn tiling_grows_with_oversized_operands() {
        let array = SystolicArray::small(Dataflow::WeightStationary);
        let s = array.schedule_gemm(4, 32, 20);
        assert_eq!(s.tiles_k, 4);
        assert_eq!(s.tiles_n, 3);
        assert_eq!(s.total_tiles(), 12);
        let one = array.schedule_gemm(4, 8, 8);
        assert!(s.cycles > one.cycles);
    }

    #[test]
    fn os_dataflow_tiles_output_dimensions() {
        let array = SystolicArray::small(Dataflow::OutputStationary);
        let s = array.schedule_gemm(20, 64, 10);
        assert_eq!(s.tiles_m, 3);
        assert_eq!(s.tiles_n, 2);
        assert_eq!(s.tiles_k, 1);
    }

    #[test]
    fn cycles_scale_with_streaming_dimension() {
        let ws = SystolicArray::small(Dataflow::WeightStationary);
        assert!(ws.gemm_cycles(100, 8, 8) > ws.gemm_cycles(10, 8, 8));
        let os = SystolicArray::small(Dataflow::OutputStationary);
        assert!(os.gemm_cycles(8, 100, 8) > os.gemm_cycles(8, 10, 8));
    }

    #[test]
    fn utilization_is_bounded() {
        let array = SystolicArray::paper_256x256_ws();
        let s = array.schedule_gemm(512, 256, 256);
        let u = s.utilization(&array);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn latency_uses_clock_period() {
        let array = SystolicArray::small(Dataflow::WeightStationary);
        let cycles = array.gemm_cycles(4, 8, 8);
        let ns = array.gemm_latency_ns(4, 8, 8);
        assert!((ns - cycles as f64 * 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_is_rejected() {
        let array = SystolicArray::small(Dataflow::WeightStationary);
        let _ = array.schedule_gemm(0, 8, 8);
    }
}
