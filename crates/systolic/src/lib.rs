//! # realm-systolic
//!
//! Behavioural model of a TPU-like systolic array (SA) accelerator with algorithm-based
//! fault-tolerance hardware, covering the circuit half of the ReaLM co-design (Sec. V-B and
//! the evaluation's overhead/energy results).
//!
//! The paper integrates its statistical ABFT into a 256×256 SA supporting both
//! weight-stationary (WS) and output-stationary (OS) dataflows, synthesised on a commercial
//! 14 nm PDK. RTL synthesis is not available in this environment, so this crate provides an
//! analytical model with consistent relative unit costs:
//!
//! * [`mod@array`] — array geometry, GEMM tiling and cycle counts for WS/OS dataflows;
//! * [`protection`] — the protection schemes compared in the evaluation (none, DMR, Razor,
//!   ThunderVolt, classical ABFT, ApproxABFT, statistical ABFT) and the extra hardware each
//!   one adds;
//! * [`area_power`] — area and power accounting per scheme, calibrated so that the statistical
//!   ABFT overhead lands at the ~1.4% area / ~1.8% power the paper reports (Fig. 8);
//! * [`timing`] — critical-path delay vs supply voltage and the induced timing-error rate
//!   (the circuit-level justification for the voltage→BER curve);
//! * [`energy`] — energy accounting for compute, detection and recovery at scaled voltages
//!   (the substrate for Fig. 9, Fig. 10 and Table II).
//!
//! # Example
//!
//! ```
//! use realm_systolic::{array::SystolicArray, protection::ProtectionScheme, area_power::AreaPowerModel};
//!
//! let array = SystolicArray::paper_256x256_ws();
//! let model = AreaPowerModel::default_14nm(&array);
//! let overhead = model.overhead(ProtectionScheme::StatisticalAbft);
//! assert!(overhead.area_percent < 2.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area_power;
pub mod array;
pub mod energy;
pub mod protection;
pub mod timing;

pub use area_power::{AreaPowerModel, Overhead};
pub use array::{Dataflow, SystolicArray};
pub use energy::EnergyModel;
pub use protection::ProtectionScheme;
pub use timing::TimingModel;
