//! Area and power accounting for the protected systolic array (Fig. 8 of the paper).
//!
//! Absolute synthesis numbers require the paper's 14 nm PDK and Design Compiler flow. What
//! the evaluation actually reports — and what this model reproduces — are *relative*
//! overheads of each protection scheme over the unprotected array. The per-block unit costs
//! below are expressed relative to one INT8 MAC PE and are calibrated so that the statistical
//! ABFT lands at the paper's reported ≈1.4% area and ≈1.8% power overhead on a 256×256 array,
//! with classical ABFT slightly cheaper and ApproxABFT in between.

use crate::array::SystolicArray;
use crate::protection::{ExtraHardware, ProtectionScheme};
use serde::{Deserialize, Serialize};

/// Relative cost of one hardware block, in units of one baseline INT8 MAC PE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitCosts {
    /// Area of a baseline INT8 MAC PE (definitionally 1.0).
    pub pe_area: f64,
    /// Dynamic + leakage power of a baseline PE under LLM-inference toggle rates (1.0).
    pub pe_power: f64,
    /// Area factor of a checksum PE (wider multipliers/accumulators for 32-bit checksums).
    pub wide_pe_area: f64,
    /// Power factor of a checksum PE (toggles every cycle on wide operands).
    pub wide_pe_power: f64,
    /// 32-bit adder used in the checksum reduction row/column.
    pub adder_area: f64,
    /// 32-bit adder power.
    pub adder_power: f64,
    /// Area added to a PE by Razor/ThunderVolt shadow flip-flops and error muxes.
    pub shadow_ff_area: f64,
    /// Power added to a PE by shadow flip-flops.
    pub shadow_ff_power: f64,
    /// 32-bit buffer register in the statistical unit.
    pub stat_buffer_area: f64,
    /// 32-bit buffer register power.
    pub stat_buffer_power: f64,
    /// Comparator in the `countif` stage.
    pub comparator_area: f64,
    /// Comparator power.
    pub comparator_power: f64,
    /// Fixed-function block (subtractor / accumulator / Log2LinearFunction unit).
    pub stat_fixed_area: f64,
    /// Fixed-function block power.
    pub stat_fixed_power: f64,
}

impl UnitCosts {
    /// Unit costs calibrated against the paper's 14 nm synthesis results.
    pub fn calibrated_14nm() -> Self {
        Self {
            pe_area: 1.0,
            pe_power: 1.0,
            wide_pe_area: 2.9,
            wide_pe_power: 3.8,
            adder_area: 0.45,
            adder_power: 0.55,
            shadow_ff_area: 0.18,
            shadow_ff_power: 0.22,
            stat_buffer_area: 0.14,
            stat_buffer_power: 0.12,
            comparator_area: 0.06,
            comparator_power: 0.05,
            stat_fixed_area: 1.5,
            stat_fixed_power: 1.2,
        }
    }
}

impl Default for UnitCosts {
    fn default() -> Self {
        Self::calibrated_14nm()
    }
}

/// Area/power overhead of a protection scheme relative to the unprotected array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overhead {
    /// Scheme the overhead refers to.
    pub scheme: ProtectionScheme,
    /// Absolute area in PE-equivalents (baseline array plus extra hardware).
    pub total_area: f64,
    /// Absolute power in PE-equivalents.
    pub total_power: f64,
    /// Extra area as a percentage of the unprotected array.
    pub area_percent: f64,
    /// Extra power as a percentage of the unprotected array.
    pub power_percent: f64,
}

/// Analytical area/power model of a protected systolic array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerModel {
    array: SystolicArray,
    costs: UnitCosts,
}

impl AreaPowerModel {
    /// Builds the model with the calibrated 14 nm unit costs.
    pub fn default_14nm(array: &SystolicArray) -> Self {
        Self {
            array: *array,
            costs: UnitCosts::calibrated_14nm(),
        }
    }

    /// Builds the model with custom unit costs.
    pub fn with_costs(array: &SystolicArray, costs: UnitCosts) -> Self {
        Self {
            array: *array,
            costs,
        }
    }

    /// The array the model describes.
    pub fn array(&self) -> &SystolicArray {
        &self.array
    }

    /// The unit costs in use.
    pub fn costs(&self) -> &UnitCosts {
        &self.costs
    }

    /// Area of the unprotected array in PE-equivalents.
    pub fn baseline_area(&self) -> f64 {
        self.array.num_pes() as f64 * self.costs.pe_area
    }

    /// Power of the unprotected array in PE-equivalents.
    pub fn baseline_power(&self) -> f64 {
        self.array.num_pes() as f64 * self.costs.pe_power
    }

    /// Extra area added by a protection scheme, in PE-equivalents.
    pub fn extra_area(&self, scheme: ProtectionScheme) -> f64 {
        let hw = ExtraHardware::for_scheme(scheme, &self.array);
        let c = &self.costs;
        hw.duplicate_pes as f64 * c.pe_area
            + hw.wide_pes as f64 * c.wide_pe_area
            + hw.adders as f64 * c.adder_area
            + hw.shadow_ff_pes as f64 * c.shadow_ff_area
            + hw.stat_buffers as f64 * c.stat_buffer_area
            + hw.comparators as f64 * c.comparator_area
            + hw.stat_fixed_units as f64 * c.stat_fixed_area
    }

    /// Extra power added by a protection scheme, in PE-equivalents.
    pub fn extra_power(&self, scheme: ProtectionScheme) -> f64 {
        let hw = ExtraHardware::for_scheme(scheme, &self.array);
        let c = &self.costs;
        hw.duplicate_pes as f64 * c.pe_power
            + hw.wide_pes as f64 * c.wide_pe_power
            + hw.adders as f64 * c.adder_power
            + hw.shadow_ff_pes as f64 * c.shadow_ff_power
            + hw.stat_buffers as f64 * c.stat_buffer_power
            + hw.comparators as f64 * c.comparator_power
            + hw.stat_fixed_units as f64 * c.stat_fixed_power
    }

    /// Full overhead report for a protection scheme.
    pub fn overhead(&self, scheme: ProtectionScheme) -> Overhead {
        let base_area = self.baseline_area();
        let base_power = self.baseline_power();
        let extra_area = self.extra_area(scheme);
        let extra_power = self.extra_power(scheme);
        Overhead {
            scheme,
            total_area: base_area + extra_area,
            total_power: base_power + extra_power,
            area_percent: 100.0 * extra_area / base_area,
            power_percent: 100.0 * extra_power / base_power,
        }
    }

    /// Overhead reports for every scheme, in the evaluation's order.
    pub fn all_overheads(&self) -> Vec<Overhead> {
        ProtectionScheme::ALL
            .iter()
            .map(|&s| self.overhead(s))
            .collect()
    }

    /// Fraction of the protected array's power spent in the detection hardware while running.
    ///
    /// Used by the energy model to charge a detection-energy tax proportional to compute
    /// energy for ABFT schemes (the checksum path is active whenever the array is).
    pub fn detection_power_fraction(&self, scheme: ProtectionScheme) -> f64 {
        self.extra_power(scheme) / self.baseline_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_ws() -> AreaPowerModel {
        AreaPowerModel::default_14nm(&SystolicArray::paper_256x256_ws())
    }

    fn model_os() -> AreaPowerModel {
        AreaPowerModel::default_14nm(&SystolicArray::paper_256x256_os())
    }

    #[test]
    fn statistical_abft_overhead_matches_paper_magnitude() {
        for model in [model_ws(), model_os()] {
            let o = model.overhead(ProtectionScheme::StatisticalAbft);
            assert!(
                (1.0..=2.0).contains(&o.area_percent),
                "area overhead {}% out of the paper's ~1.4% range",
                o.area_percent
            );
            assert!(
                (1.2..=2.5).contains(&o.power_percent),
                "power overhead {}% out of the paper's ~1.8% range",
                o.power_percent
            );
        }
    }

    #[test]
    fn abft_family_ordering_matches_paper() {
        let model = model_ws();
        let classical = model.overhead(ProtectionScheme::ClassicalAbft);
        let approx = model.overhead(ProtectionScheme::ApproxAbft);
        let statistical = model.overhead(ProtectionScheme::StatisticalAbft);
        assert!(classical.area_percent <= approx.area_percent);
        assert!(approx.area_percent <= statistical.area_percent);
        assert!(classical.power_percent <= statistical.power_percent);
        // The statistical unit is cheap: going from classical to statistical costs well under
        // one additional percentage point.
        assert!(statistical.area_percent - classical.area_percent < 0.5);
    }

    #[test]
    fn dmr_costs_roughly_double() {
        let model = model_ws();
        let dmr = model.overhead(ProtectionScheme::Dmr);
        assert!(dmr.area_percent > 99.0);
        assert!(dmr.power_percent > 99.0);
    }

    #[test]
    fn razor_and_thundervolt_cost_more_than_abft() {
        let model = model_ws();
        let razor = model.overhead(ProtectionScheme::RazorFfs);
        let statistical = model.overhead(ProtectionScheme::StatisticalAbft);
        assert!(razor.area_percent > statistical.area_percent);
        let tv = model.overhead(ProtectionScheme::ThunderVolt);
        assert!(tv.area_percent >= razor.area_percent);
    }

    #[test]
    fn no_protection_has_zero_overhead() {
        let model = model_os();
        let o = model.overhead(ProtectionScheme::None);
        assert_eq!(o.area_percent, 0.0);
        assert_eq!(o.power_percent, 0.0);
        assert_eq!(o.total_area, model.baseline_area());
    }

    #[test]
    fn ws_and_os_overheads_are_close() {
        // Fig. 8 reports near-identical overheads for the two dataflows (1.43% vs 1.42% area).
        let ws = model_ws().overhead(ProtectionScheme::StatisticalAbft);
        let os = model_os().overhead(ProtectionScheme::StatisticalAbft);
        assert!((ws.area_percent - os.area_percent).abs() < 0.2);
        assert!((ws.power_percent - os.power_percent).abs() < 0.2);
    }

    #[test]
    fn all_overheads_cover_every_scheme() {
        let all = model_ws().all_overheads();
        assert_eq!(all.len(), ProtectionScheme::ALL.len());
        assert!(all.iter().any(|o| o.scheme == ProtectionScheme::ApproxAbft));
    }

    #[test]
    fn detection_power_fraction_is_small_for_abft() {
        let model = model_ws();
        let f = model.detection_power_fraction(ProtectionScheme::StatisticalAbft);
        assert!(f > 0.0 && f < 0.03);
        assert!(model.detection_power_fraction(ProtectionScheme::Dmr) > 0.99);
    }
}
