//! Critical-path timing vs supply voltage and the resulting timing-error rate.
//!
//! The paper's platform runs a 500 ps clock against a 439 ps critical path at the nominal
//! 0.9 V; Synopsys PrimeTime/HSPICE analysis (with LLM-inference toggle rates) gives the BER
//! at each reduced voltage. This module reproduces that chain analytically:
//!
//! 1. gate delay grows as the supply approaches the threshold voltage (alpha-power law);
//! 2. path delays are spread around the critical path (process variation), modelled with a
//!    Gaussian tail;
//! 3. a timing error occurs when an exercised path no longer fits the clock period, scaled by
//!    the datapath toggle rate.
//!
//! The resulting curve has the same log-linear shape as `realm_inject::VoltageBerCurve`
//! (Fig. 1(a)); the inject crate's curve is the calibrated summary used by experiments, while
//! this model exposes the underlying circuit quantities (slack, delay) for the overhead and
//! trade-off analyses.

use serde::{Deserialize, Serialize};

/// Alpha-power-law timing model of the systolic array's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Nominal supply voltage in volts.
    pub nominal_voltage: f64,
    /// Critical-path delay at nominal voltage, in picoseconds (439 ps in the paper).
    pub nominal_delay_ps: f64,
    /// Clock period in picoseconds (500 ps in the paper).
    pub clock_period_ps: f64,
    /// Device threshold voltage in volts.
    pub threshold_voltage: f64,
    /// Velocity-saturation exponent of the alpha-power law (≈1.3 for deep submicron).
    pub alpha: f64,
    /// Relative standard deviation of path delay due to variation.
    pub delay_sigma_fraction: f64,
    /// Average fraction of accumulator bits that toggle per cycle during LLM inference.
    pub toggle_rate: f64,
}

impl TimingModel {
    /// The paper's platform: 0.9 V nominal, 439 ps critical path, 500 ps clock.
    pub fn paper_14nm() -> Self {
        Self {
            nominal_voltage: 0.9,
            nominal_delay_ps: 439.0,
            clock_period_ps: 500.0,
            threshold_voltage: 0.35,
            alpha: 1.3,
            delay_sigma_fraction: 0.05,
            toggle_rate: 0.25,
        }
    }

    /// Critical-path delay at the given supply voltage (alpha-power law).
    ///
    /// # Panics
    ///
    /// Panics if `voltage` is at or below the threshold voltage.
    pub fn delay_at(&self, voltage: f64) -> f64 {
        assert!(
            voltage > self.threshold_voltage,
            "voltage {voltage} V is below the threshold voltage"
        );
        let nominal_drive =
            (self.nominal_voltage - self.threshold_voltage).powf(self.alpha) / self.nominal_voltage;
        let drive = (voltage - self.threshold_voltage).powf(self.alpha) / voltage;
        self.nominal_delay_ps * nominal_drive / drive
    }

    /// Timing slack (clock period minus critical-path delay) at the given voltage, in ps.
    ///
    /// Negative slack means the nominal critical path no longer fits in the clock period.
    pub fn slack_at(&self, voltage: f64) -> f64 {
        self.clock_period_ps - self.delay_at(voltage)
    }

    /// Voltage at which the critical path exactly meets the clock period.
    pub fn zero_slack_voltage(&self) -> f64 {
        // Bisection over the monotone delay function.
        let mut lo = self.threshold_voltage + 1e-3;
        let mut hi = self.nominal_voltage + 0.5;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.delay_at(mid) > self.clock_period_ps {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Probability that a single exercised bit suffers a timing violation at the given
    /// voltage (the computation bit-error rate).
    ///
    /// Path delays are modelled as Gaussian around the scaled critical path with relative
    /// sigma [`TimingModel::delay_sigma_fraction`]; the violation probability is the Gaussian
    /// tail beyond the clock period, scaled by the toggle rate (a bit that does not toggle
    /// cannot capture a wrong value).
    pub fn ber_at(&self, voltage: f64) -> f64 {
        let delay = self.delay_at(voltage);
        let sigma = delay * self.delay_sigma_fraction;
        let z = (self.clock_period_ps - delay) / sigma;
        let violation = 0.5 * erfc(z / std::f64::consts::SQRT_2);
        (violation * self.toggle_rate).min(0.5)
    }

    /// Convenience sweep of `(voltage, BER)` pairs, mirroring
    /// `realm_inject::VoltageBerCurve::sweep`.
    pub fn ber_sweep(&self, v_low: f64, v_high: f64, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps >= 2 && v_low < v_high, "invalid sweep range");
        (0..steps)
            .map(|i| {
                let v = v_low + (v_high - v_low) * i as f64 / (steps - 1) as f64;
                (v, self.ber_at(v))
            })
            .collect()
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::paper_14nm()
    }
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 rational approximation).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    let erf = if sign_negative { -erf } else { erf };
    1.0 - erf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_operating_point_matches_paper() {
        let t = TimingModel::paper_14nm();
        assert!((t.delay_at(0.9) - 439.0).abs() < 1e-9);
        assert!((t.slack_at(0.9) - 61.0).abs() < 1e-9);
        assert!(t.ber_at(0.9) < 1e-3, "nominal BER should be tiny");
    }

    #[test]
    fn delay_increases_as_voltage_drops() {
        let t = TimingModel::paper_14nm();
        let mut prev = 0.0;
        for step in 0..30 {
            let v = 0.9 - step as f64 * 0.01;
            let d = t.delay_at(v);
            assert!(d > prev, "delay must grow monotonically as voltage drops");
            prev = d;
        }
    }

    #[test]
    fn ber_increases_as_voltage_drops() {
        let t = TimingModel::paper_14nm();
        let high = t.ber_at(0.85);
        let mid = t.ber_at(0.70);
        let low = t.ber_at(0.60);
        assert!(high <= mid && mid <= low);
        assert!(low <= 0.5);
    }

    #[test]
    fn zero_slack_voltage_is_between_threshold_and_nominal() {
        let t = TimingModel::paper_14nm();
        let v0 = t.zero_slack_voltage();
        assert!(v0 > t.threshold_voltage && v0 < t.nominal_voltage);
        assert!(
            t.slack_at(v0).abs() < 1.0,
            "slack at v0 is {}",
            t.slack_at(v0)
        );
        assert!(t.ber_at(v0) > 1e-3, "at zero slack errors are frequent");
    }

    #[test]
    #[should_panic(expected = "below the threshold")]
    fn delay_rejects_subthreshold_voltage() {
        let _ = TimingModel::paper_14nm().delay_at(0.2);
    }

    #[test]
    fn sweep_produces_monotone_ber_series() {
        let t = TimingModel::paper_14nm();
        let points = t.ber_sweep(0.6, 0.9, 13);
        assert_eq!(points.len(), 13);
        for w in points.windows(2) {
            assert!(w[0].1 >= w[1].1, "BER must fall as voltage rises");
        }
    }

    #[test]
    fn erfc_matches_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!(erfc(3.0) < 1e-4);
        assert!((erfc(-3.0) - 2.0).abs() < 1e-4);
    }
}
