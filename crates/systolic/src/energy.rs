//! Energy accounting for protected LLM inference at scaled supply voltages.
//!
//! The evaluation's headline metric (Fig. 9, Fig. 10, Table II) is the *total* energy of a
//! workload at a given operating voltage: the energy of the main computation (which shrinks
//! roughly with V² as the supply is lowered), plus the always-on detection hardware of the
//! chosen protection scheme, plus the energy of every recovery the scheme triggers
//! (re-execution at nominal voltage, per the paper's recovery assumption).

use serde::{Deserialize, Serialize};

/// Dynamic-energy model of the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Nominal supply voltage in volts.
    pub nominal_voltage: f64,
    /// Energy of one INT8 multiply-accumulate at nominal voltage, in picojoules.
    pub mac_energy_pj: f64,
    /// Leakage/static energy charged per MAC-slot regardless of voltage, as a fraction of
    /// the nominal MAC energy. Leakage does not scale with V² and therefore limits the
    /// benefit of aggressive undervolting.
    pub leakage_fraction: f64,
}

impl EnergyModel {
    /// Energy model calibrated to a 14 nm-class INT8 MAC (≈0.5 pJ/MAC at 0.9 V).
    pub fn default_14nm() -> Self {
        Self {
            nominal_voltage: 0.9,
            mac_energy_pj: 0.5,
            leakage_fraction: 0.08,
        }
    }

    /// Creates a custom energy model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or the leakage fraction is negative.
    pub fn new(nominal_voltage: f64, mac_energy_pj: f64, leakage_fraction: f64) -> Self {
        assert!(nominal_voltage > 0.0, "nominal voltage must be positive");
        assert!(mac_energy_pj > 0.0, "MAC energy must be positive");
        assert!(
            leakage_fraction >= 0.0,
            "leakage fraction cannot be negative"
        );
        Self {
            nominal_voltage,
            mac_energy_pj,
            leakage_fraction,
        }
    }

    /// Energy of one MAC at the given supply voltage, in picojoules.
    ///
    /// Dynamic energy scales with V²; the leakage component does not scale.
    pub fn mac_energy_at(&self, voltage: f64) -> f64 {
        let dynamic = self.mac_energy_pj * (voltage / self.nominal_voltage).powi(2);
        let leakage = self.mac_energy_pj * self.leakage_fraction;
        dynamic + leakage
    }

    /// Energy of `macs` multiply-accumulates at the given voltage, in joules.
    pub fn compute_energy_j(&self, macs: u64, voltage: f64) -> f64 {
        macs as f64 * self.mac_energy_at(voltage) * 1e-12
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_14nm()
    }
}

/// Energy breakdown of a protected workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEnergy {
    /// Energy of the main computation at the scaled voltage, in joules.
    pub compute_j: f64,
    /// Energy of the always-on detection hardware, in joules.
    pub detection_j: f64,
    /// Energy of recovery re-execution, in joules.
    pub recovery_j: f64,
}

impl WorkloadEnergy {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.detection_j + self.recovery_j
    }

    /// Fraction of the total spent on recovery.
    pub fn recovery_fraction(&self) -> f64 {
        let total = self.total_j();
        if total == 0.0 {
            0.0
        } else {
            self.recovery_j / total
        }
    }
}

/// Parameters of one protected-workload energy evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// MACs of the main computation.
    pub macs: u64,
    /// Operating voltage of the main computation, in volts.
    pub voltage: f64,
    /// Power of the detection hardware relative to the array
    /// (`AreaPowerModel::detection_power_fraction`). DMR-style schemes have a fraction near
    /// 1.0, ABFT schemes a fraction near 0.015.
    pub detection_power_fraction: f64,
    /// MACs re-executed by recovery events.
    pub recovery_macs: u64,
    /// Voltage at which recovery re-executes (nominal voltage in the paper).
    pub recovery_voltage: f64,
}

impl EnergyModel {
    /// Evaluates the energy breakdown of a protected workload.
    pub fn workload_energy(&self, spec: &WorkloadSpec) -> WorkloadEnergy {
        let compute_j = self.compute_energy_j(spec.macs, spec.voltage);
        let detection_j = compute_j * spec.detection_power_fraction;
        let recovery_j = self.compute_energy_j(spec.recovery_macs, spec.recovery_voltage);
        WorkloadEnergy {
            compute_j,
            detection_j,
            recovery_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_energy_scales_quadratically() {
        let m = EnergyModel::default_14nm();
        let nominal = m.mac_energy_at(0.9);
        let scaled = m.mac_energy_at(0.45);
        // Dynamic part drops to a quarter; leakage stays, so the ratio is slightly above 0.25.
        let dynamic_only = (scaled - m.mac_energy_pj * m.leakage_fraction)
            / (nominal - m.mac_energy_pj * m.leakage_fraction);
        assert!((dynamic_only - 0.25).abs() < 1e-9);
        assert!(scaled < nominal);
    }

    #[test]
    fn undervolting_saves_compute_energy() {
        let m = EnergyModel::default_14nm();
        let high = m.compute_energy_j(1_000_000, 0.9);
        let low = m.compute_energy_j(1_000_000, 0.7);
        assert!(low < high);
        assert!(low > high * 0.4, "leakage bounds the saving");
    }

    #[test]
    fn workload_energy_components_add_up() {
        let m = EnergyModel::default_14nm();
        let spec = WorkloadSpec {
            macs: 10_000_000,
            voltage: 0.72,
            detection_power_fraction: 0.016,
            recovery_macs: 500_000,
            recovery_voltage: 0.9,
        };
        let e = m.workload_energy(&spec);
        assert!(e.compute_j > 0.0 && e.detection_j > 0.0 && e.recovery_j > 0.0);
        assert!((e.total_j() - (e.compute_j + e.detection_j + e.recovery_j)).abs() < 1e-18);
        assert!(e.detection_j < e.compute_j * 0.02);
        assert!(e.recovery_fraction() > 0.0 && e.recovery_fraction() < 1.0);
    }

    #[test]
    fn zero_recovery_means_zero_recovery_energy() {
        let m = EnergyModel::default_14nm();
        let spec = WorkloadSpec {
            macs: 1_000,
            voltage: 0.8,
            detection_power_fraction: 0.0,
            recovery_macs: 0,
            recovery_voltage: 0.9,
        };
        let e = m.workload_energy(&spec);
        assert_eq!(e.recovery_j, 0.0);
        assert_eq!(e.detection_j, 0.0);
        assert_eq!(e.recovery_fraction(), 0.0);
    }

    #[test]
    fn full_recovery_can_erase_undervolting_gains() {
        // If every GEMM has to be recomputed at nominal voltage, the total exceeds simply
        // running at nominal voltage in the first place — the effect that makes classical
        // ABFT expensive at low voltages (Fig. 1(b)).
        let m = EnergyModel::default_14nm();
        let macs = 1_000_000;
        let protected_low_voltage = m.workload_energy(&WorkloadSpec {
            macs,
            voltage: 0.65,
            detection_power_fraction: 0.015,
            recovery_macs: macs,
            recovery_voltage: 0.9,
        });
        let unprotected_nominal = m.compute_energy_j(macs, 0.9);
        assert!(protected_low_voltage.total_j() > unprotected_nominal);
    }

    #[test]
    #[should_panic(expected = "MAC energy must be positive")]
    fn invalid_energy_is_rejected() {
        let _ = EnergyModel::new(0.9, 0.0, 0.1);
    }
}
