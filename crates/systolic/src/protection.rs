//! Protection schemes and the extra hardware each one adds to the systolic array.
//!
//! The paper compares its statistical ABFT against the fault-mitigation landscape of
//! Table I / Fig. 9: no protection, double-modular redundancy (DMR), Razor-style timing-error
//! detection flip-flops, ThunderVolt-style per-MAC error detection and replay, classical ABFT
//! and ApproxABFT. This module enumerates those schemes and describes the additional hardware
//! blocks they require; `area_power` prices those blocks and `energy` charges their runtime
//! costs.

use crate::array::{Dataflow, SystolicArray};
use serde::{Deserialize, Serialize};

/// A fault-mitigation scheme applied to the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtectionScheme {
    /// No protection: errors flow silently into the results.
    None,
    /// Double-modular redundancy: every computation is executed twice and compared.
    Dmr,
    /// Razor-style shadow flip-flops on the PE pipeline registers.
    RazorFfs,
    /// ThunderVolt-style timing-error detection with per-error replay inside the array.
    ThunderVolt,
    /// Classical ABFT: full checksum comparison, recovery on any mismatch.
    ClassicalAbft,
    /// ApproxABFT: matrix-sum-deviation thresholding before triggering recovery.
    ApproxAbft,
    /// The paper's statistical ABFT with the online statistical unit.
    StatisticalAbft,
}

impl ProtectionScheme {
    /// All schemes in the order the evaluation reports them.
    pub const ALL: [ProtectionScheme; 7] = [
        ProtectionScheme::None,
        ProtectionScheme::Dmr,
        ProtectionScheme::RazorFfs,
        ProtectionScheme::ThunderVolt,
        ProtectionScheme::ClassicalAbft,
        ProtectionScheme::ApproxAbft,
        ProtectionScheme::StatisticalAbft,
    ];

    /// The ABFT family (checksum-based detection on top of an unmodified PE array).
    pub const ABFT_FAMILY: [ProtectionScheme; 3] = [
        ProtectionScheme::ClassicalAbft,
        ProtectionScheme::ApproxAbft,
        ProtectionScheme::StatisticalAbft,
    ];

    /// Whether this scheme detects errors at all.
    pub fn detects_errors(self) -> bool {
        !matches!(self, ProtectionScheme::None)
    }

    /// Whether the scheme belongs to the checksum (ABFT) family.
    pub fn is_abft(self) -> bool {
        Self::ABFT_FAMILY.contains(&self)
    }

    /// Strictness ranking used when several schemes protect one batched GEMM: the
    /// strictest requested scheme wins. Higher is stricter. The order reflects coverage,
    /// not enum declaration order: no protection < thresholded checksums (ApproxABFT) <
    /// statistical checksums < timing-error schemes (ThunderVolt, Razor) < full
    /// duplication (DMR) < classical ABFT, which recovers every detected deviation.
    pub fn strictness(self) -> u8 {
        match self {
            ProtectionScheme::None => 0,
            ProtectionScheme::ApproxAbft => 1,
            ProtectionScheme::StatisticalAbft => 2,
            ProtectionScheme::ThunderVolt => 3,
            ProtectionScheme::RazorFfs => 4,
            ProtectionScheme::Dmr => 5,
            ProtectionScheme::ClassicalAbft => 6,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ProtectionScheme::None => "No protection",
            ProtectionScheme::Dmr => "DMR",
            ProtectionScheme::RazorFfs => "Razor FFs",
            ProtectionScheme::ThunderVolt => "ThunderVolt",
            ProtectionScheme::ClassicalAbft => "Classical ABFT",
            ProtectionScheme::ApproxAbft => "ApproxABFT",
            ProtectionScheme::StatisticalAbft => "Statistical ABFT (ours)",
        }
    }
}

impl std::fmt::Display for ProtectionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Count of extra hardware blocks a protection scheme adds to a given array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtraHardware {
    /// Extra full PE copies (DMR duplicates the whole array).
    pub duplicate_pes: usize,
    /// Extra higher-bit-width PEs for checksum accumulation (one column or row).
    pub wide_pes: usize,
    /// Extra 32-bit adders (checksum reduction row/column).
    pub adders: usize,
    /// Shadow flip-flops added inside existing PEs (Razor/ThunderVolt), counted per PE.
    pub shadow_ff_pes: usize,
    /// 32-bit buffer registers in the statistical unit (one per output column).
    pub stat_buffers: usize,
    /// Comparators in the statistical unit's `countif` stage.
    pub comparators: usize,
    /// Fixed-function units: subtractor + accumulator + Log2LinearFunction unit.
    pub stat_fixed_units: usize,
}

impl ExtraHardware {
    /// Extra hardware required by `scheme` on `array` (Fig. 7 of the paper).
    pub fn for_scheme(scheme: ProtectionScheme, array: &SystolicArray) -> Self {
        let n_cols = array.cols;
        let n_rows = array.rows;
        // The checksum datapath differs slightly between dataflows (Fig. 7a vs 7b): WS adds a
        // column of wide PEs and a row of adders; OS adds a column of adders and a row of wide
        // PEs. The totals are symmetric for a square array.
        let (checksum_wide, checksum_adders) = match array.dataflow {
            Dataflow::WeightStationary => (n_rows, n_cols),
            Dataflow::OutputStationary => (n_cols, n_rows),
        };
        match scheme {
            ProtectionScheme::None => Self::default(),
            ProtectionScheme::Dmr => Self {
                duplicate_pes: array.num_pes(),
                adders: n_cols, // output comparison
                ..Self::default()
            },
            ProtectionScheme::RazorFfs => Self {
                shadow_ff_pes: array.num_pes(),
                ..Self::default()
            },
            ProtectionScheme::ThunderVolt => Self {
                shadow_ff_pes: array.num_pes(),
                adders: n_cols, // replay steering logic approximated as an adder per column
                ..Self::default()
            },
            ProtectionScheme::ClassicalAbft => Self {
                wide_pes: checksum_wide,
                adders: checksum_adders,
                ..Self::default()
            },
            ProtectionScheme::ApproxAbft => Self {
                wide_pes: checksum_wide,
                adders: checksum_adders,
                // MSD thresholding needs a subtractor + accumulator + comparator.
                stat_fixed_units: 2,
                comparators: 1,
                ..Self::default()
            },
            ProtectionScheme::StatisticalAbft => Self {
                wide_pes: checksum_wide,
                adders: checksum_adders,
                // Statistical unit (Fig. 7c): subtractor, accumulator, Log2LinearFunction
                // unit, a buffer per output column and a parallel countif comparator per
                // buffer.
                stat_fixed_units: 3,
                stat_buffers: n_cols,
                comparators: n_cols,
                ..Self::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_scheme_once() {
        let mut labels: Vec<&str> = ProtectionScheme::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn abft_family_classification() {
        assert!(ProtectionScheme::StatisticalAbft.is_abft());
        assert!(ProtectionScheme::ClassicalAbft.is_abft());
        assert!(!ProtectionScheme::Dmr.is_abft());
        assert!(!ProtectionScheme::None.detects_errors());
        assert!(ProtectionScheme::RazorFfs.detects_errors());
    }

    #[test]
    fn strictness_ranks_every_scheme_uniquely() {
        let mut ranks: Vec<u8> = ProtectionScheme::ALL
            .iter()
            .map(|s| s.strictness())
            .collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..7).collect::<Vec<u8>>());
        assert_eq!(ProtectionScheme::None.strictness(), 0);
        assert_eq!(ProtectionScheme::ClassicalAbft.strictness(), 6);
        assert!(
            ProtectionScheme::ClassicalAbft.strictness()
                > ProtectionScheme::StatisticalAbft.strictness()
        );
        assert!(
            ProtectionScheme::StatisticalAbft.strictness()
                > ProtectionScheme::ApproxAbft.strictness()
        );
    }

    #[test]
    fn no_protection_adds_nothing() {
        let array = SystolicArray::paper_256x256_ws();
        assert_eq!(
            ExtraHardware::for_scheme(ProtectionScheme::None, &array),
            ExtraHardware::default()
        );
    }

    #[test]
    fn dmr_duplicates_the_array() {
        let array = SystolicArray::paper_256x256_ws();
        let hw = ExtraHardware::for_scheme(ProtectionScheme::Dmr, &array);
        assert_eq!(hw.duplicate_pes, 65536);
    }

    #[test]
    fn abft_adds_one_checksum_row_and_column() {
        let array = SystolicArray::paper_256x256_ws();
        let hw = ExtraHardware::for_scheme(ProtectionScheme::ClassicalAbft, &array);
        assert_eq!(hw.wide_pes, 256);
        assert_eq!(hw.adders, 256);
        assert_eq!(hw.duplicate_pes, 0);
    }

    #[test]
    fn statistical_abft_adds_statistical_unit_on_top_of_classical() {
        let array = SystolicArray::paper_256x256_os();
        let classical = ExtraHardware::for_scheme(ProtectionScheme::ClassicalAbft, &array);
        let statistical = ExtraHardware::for_scheme(ProtectionScheme::StatisticalAbft, &array);
        assert_eq!(statistical.wide_pes, classical.wide_pes);
        assert_eq!(statistical.adders, classical.adders);
        assert!(statistical.stat_buffers > 0);
        assert!(statistical.comparators > 0);
        assert!(statistical.stat_fixed_units > classical.stat_fixed_units);
    }

    #[test]
    fn checksum_hardware_is_symmetric_for_square_arrays() {
        let ws = ExtraHardware::for_scheme(
            ProtectionScheme::ClassicalAbft,
            &SystolicArray::paper_256x256_ws(),
        );
        let os = ExtraHardware::for_scheme(
            ProtectionScheme::ClassicalAbft,
            &SystolicArray::paper_256x256_os(),
        );
        assert_eq!(ws.wide_pes, os.wide_pes);
        assert_eq!(ws.adders, os.adders);
    }
}
