//! Row-major dense matrix used across the ReaLM workspace.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix.
///
/// The matrix is deliberately simple: the ReaLM reproduction only needs 2-D operands for
/// GEMM/GEMV, elementwise maps and per-row reductions. Batched activations are represented
/// as `(tokens, features)` matrices.
///
/// # Example
///
/// ```
/// use realm_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m[(1, 2)], 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

/// Matrix of `f32` elements (floating-point activations and weights).
pub type MatF32 = Matrix<f32>;
/// Matrix of `i8` elements (quantized GEMM operands).
pub type MatI8 = Matrix<i8>;
/// Matrix of `i32` elements (GEMM accumulator results, the error-injection target).
pub type MatI32 = Matrix<i32>;

impl<T: Copy + Default> Matrix<T> {
    /// Creates a matrix of the given shape filled with `T::default()`.
    ///
    /// # Example
    ///
    /// ```
    /// use realm_tensor::MatI32;
    /// let z = MatI32::zeros(3, 4);
    /// assert_eq!(z.shape(), (3, 4));
    /// assert!(z.iter().all(|&v| v == 0));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Reshapes the matrix to `rows × cols` leaving element values unspecified (old
    /// contents or `T::default()` for any grown tail), reusing the backing allocation
    /// whenever its capacity suffices.
    ///
    /// For `_into` consumers that overwrite **every** element (quantization, slicing,
    /// normalization, embedding): skips the full zero-fill [`Matrix::resize_reset`] pays,
    /// which matters once per checkout in the per-token hot loop. Never use it for a
    /// destination built up incrementally (a GEMM accumulator needs `resize_reset`).
    pub fn resize_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let len = rows * cols;
        if len <= self.data.len() {
            self.data.truncate(len);
            return;
        }
        if len > self.data.capacity() && self.data.capacity() > 0 {
            self.data.reserve_exact(len.next_power_of_two());
        }
        self.data.resize(len, T::default());
    }

    /// Reshapes the matrix to `rows × cols` with every element reset to `T::default()`,
    /// reusing the backing allocation whenever its capacity suffices.
    ///
    /// This is the in-place counterpart of [`Matrix::zeros`] used by the `_into` GEMM
    /// paths: a workspace-pooled matrix passes through here once per checkout and never
    /// touches the allocator as long as the pooled capacity covers the new shape.
    pub fn resize_reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        let len = rows * cols;
        if len > self.data.capacity() {
            if self.data.capacity() > 0 {
                // Power-of-two growth keeps a monotonically growing *reused* destination
                // (attention scores lengthen every decode step) to O(log n)
                // re-allocations total.
                self.data.reserve_exact(len.next_power_of_two());
            } else {
                // A fresh matrix (the one-shot allocating wrappers) stays exact.
                self.data.reserve_exact(len);
            }
        }
        self.data.resize(len, T::default());
    }
}

impl<T: Copy> Matrix<T> {
    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    ///
    /// # Example
    ///
    /// ```
    /// use realm_tensor::MatF32;
    /// let identity = MatF32::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
    /// assert_eq!(identity[(1, 1)], 1.0);
    /// assert_eq!(identity[(0, 2)], 0.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimension {
                op: "Matrix::from_vec",
                detail: format!(
                    "expected {} elements for a {}x{} matrix, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at `(row, col)`, or `None` if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.rows && col < self.cols {
            self.data.get(row * self.cols + col)
        } else {
            None
        }
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the position is outside the matrix.
    pub fn set(&mut self, row: usize, col: usize, value: T) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    /// Borrows a single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {} out of bounds ({})", row, self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows a single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.rows, "row {} out of bounds ({})", row, self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterates over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutably iterates over all elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Borrows the backing storage in row-major order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the backing storage in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn apply(&mut self, mut f: impl FnMut(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Extracts a contiguous block of rows `[start, start + count)` as a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if the row range exceeds the matrix.
    pub fn rows_slice(&self, start: usize, count: usize) -> Result<Self> {
        if start + count > self.rows {
            return Err(TensorError::InvalidDimension {
                op: "Matrix::rows_slice",
                detail: format!(
                    "rows {}..{} out of bounds for {} rows",
                    start,
                    start + count,
                    self.rows
                ),
            });
        }
        Ok(Self {
            rows: count,
            cols: self.cols,
            data: self.data[start * self.cols..(start + count) * self.cols].to_vec(),
        })
    }

    /// Appends `other`'s rows onto the end of `self` in place.
    ///
    /// The growth path of the KV cache: with capacity reserved up front, appending one
    /// decoded token's keys/values never re-allocates. An empty `self` (0×0) adopts
    /// `other`'s width.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
    pub fn extend_rows(&mut self, other: &Self) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = other.cols;
        }
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "Matrix::extend_rows",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
        Ok(())
    }

    /// Reserves backing capacity for at least `rows` total rows of the current width
    /// (no-op when the width is still unknown).
    pub fn reserve_rows(&mut self, rows: usize) {
        let want = rows * self.cols;
        if want > self.data.capacity() {
            self.data.reserve_exact(want - self.data.len());
        }
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Self) -> Result<Self> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "Matrix::vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }
}

impl<T: Copy + PartialOrd> Matrix<T> {
    /// Returns the maximum element, or `None` for an empty matrix.
    pub fn max_element(&self) -> Option<T> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(if v > a { v } else { a }),
        })
    }

    /// Returns the minimum element, or `None` for an empty matrix.
    pub fn min_element(&self) -> Option<T> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(if v < a { v } else { a }),
        })
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({}, {}) out of bounds for {}x{} matrix",
            row,
            col,
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({}, {}) out of bounds for {}x{} matrix",
            row,
            col,
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl MatF32 {
    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "MatF32::add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Self) -> Result<Self> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "MatF32::hadamard",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise (Hadamard) product in place: `self[i] *= other[i]` (bit-identical to
    /// [`MatF32::hadamard`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard_assign(&mut self, other: &Self) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "MatF32::hadamard_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
        Ok(())
    }

    /// Elementwise addition in place: `self[i] += other[i]`.
    ///
    /// Bit-identical to [`MatF32::add`] (same per-element `a + b`), without the fresh
    /// allocation — the residual-stream update of the workspace-threaded forward path.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Self) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "MatF32::add_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Self {
        self.map(|v| v * factor)
    }

    /// Multiplies every element by a scalar in place (bit-identical to [`MatF32::scale`]).
    pub fn scale_in_place(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Maximum absolute value over all elements (0.0 for an empty matrix).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |acc, v| acc.max(v.abs()))
    }

    /// Frobenius norm of the difference with `other`, useful in tests.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn distance(&self, other: &Self) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "MatF32::distance",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt())
    }
}

impl<'a, T> IntoIterator for &'a Matrix<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_values() {
        let m = MatI32::zeros(2, 5);
        assert_eq!(m.shape(), (2, 5));
        assert_eq!(m.len(), 10);
        assert!(m.iter().all(|&v| v == 0));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = MatI32::from_vec(2, 2, vec![1, 2, 3]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidDimension { .. }));
    }

    #[test]
    fn from_fn_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r, c));
        assert_eq!(m.as_slice()[0], (0, 0));
        assert_eq!(m.as_slice()[3], (1, 0));
        assert_eq!(m[(1, 2)], (1, 2));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut m = MatF32::zeros(3, 3);
        m.set(1, 2, 4.5).unwrap();
        assert_eq!(*m.get(1, 2).unwrap(), 4.5);
        assert!(m.get(3, 0).is_none());
        assert!(m.set(0, 3, 1.0).is_err());
    }

    #[test]
    fn transpose_is_involution() {
        let m = MatI32::from_fn(3, 4, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn rows_slice_extracts_block() {
        let m = MatI32::from_fn(4, 2, |r, c| (r * 2 + c) as i32);
        let block = m.rows_slice(1, 2).unwrap();
        assert_eq!(block.shape(), (2, 2));
        assert_eq!(block[(0, 0)], 2);
        assert_eq!(block[(1, 1)], 5);
        assert!(m.rows_slice(3, 2).is_err());
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = MatI32::filled(1, 3, 1);
        let b = MatI32::filled(2, 3, 2);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s[(0, 0)], 1);
        assert_eq!(s[(2, 2)], 2);
        assert!(a.vstack(&MatI32::zeros(1, 4)).is_err());
    }

    #[test]
    fn map_changes_element_type() {
        let m = MatI8::filled(2, 2, 3);
        let f = m.map(|v| v as f32 * 0.5);
        assert_eq!(f[(1, 1)], 1.5);
    }

    #[test]
    fn add_and_hadamard_respect_shapes() {
        let a = MatF32::filled(2, 2, 2.0);
        let b = MatF32::filled(2, 2, 3.0);
        assert_eq!(a.add(&b).unwrap()[(0, 0)], 5.0);
        assert_eq!(a.hadamard(&b).unwrap()[(1, 1)], 6.0);
        let c = MatF32::zeros(3, 2);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn min_max_elements() {
        let m = MatI32::from_vec(1, 4, vec![-5, 3, 9, 0]).unwrap();
        assert_eq!(m.max_element(), Some(9));
        assert_eq!(m.min_element(), Some(-5));
        let empty = MatI32::zeros(0, 0);
        assert_eq!(empty.max_element(), None);
    }

    #[test]
    fn abs_max_and_distance() {
        let a = MatF32::from_vec(1, 3, vec![-4.0, 2.0, 1.0]).unwrap();
        assert_eq!(a.abs_max(), 4.0);
        let b = MatF32::from_vec(1, 3, vec![-4.0, 2.0, 4.0]).unwrap();
        assert!((a.distance(&b).unwrap() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn matrix_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatI32>();
        assert_send_sync::<MatF32>();
    }
}
