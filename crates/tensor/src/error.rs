use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
///
/// Every fallible public function in this crate returns [`TensorError`] so callers can
/// propagate failures with `?` instead of panicking deep inside an experiment sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The shapes of two operands are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A dimension argument was zero or otherwise invalid.
    InvalidDimension {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Explanation of which dimension was invalid and why.
        detail: String,
    },
    /// An index was outside the bounds of the matrix.
    IndexOutOfBounds {
        /// Requested position as `(row, col)`.
        index: (usize, usize),
        /// Shape of the matrix as `(rows, cols)`.
        shape: (usize, usize),
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidDimension { op, detail } => {
                write!(f, "invalid dimension in {op}: {detail}")
            }
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch_mentions_both_shapes() {
        let err = TensorError::ShapeMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
        assert!(text.contains("gemm"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let err = TensorError::IndexOutOfBounds {
            index: (7, 1),
            shape: (4, 4),
        };
        assert!(err.to_string().contains("(7, 1)"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
