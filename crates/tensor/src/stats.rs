//! Summary statistics used by the resilience characterization and synthetic-weight generation.
//!
//! The paper's central architectural insight (Fig. 5) is that hidden states consist of a
//! near-zero bulk plus a handful of outliers, so the mean and standard deviation computed by
//! LayerNorm/RMSNorm are dominated by those outliers. These helpers quantify exactly that:
//! [`summary`] returns µ/σ, and [`outlier_count`]/[`kurtosis_excess`] characterize how heavy
//! the tails are before and after an injected error.

use crate::MatF32;
use serde::{Deserialize, Serialize};

/// Basic distribution summary of a matrix's elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Minimum element (0.0 for an empty matrix).
    pub min: f32,
    /// Maximum element (0.0 for an empty matrix).
    pub max: f32,
    /// Number of elements summarised.
    pub count: usize,
}

impl Summary {
    /// Range between the maximum and minimum element.
    pub fn range(&self) -> f32 {
        self.max - self.min
    }
}

/// Computes mean, standard deviation and extrema of a matrix.
///
/// # Example
///
/// ```
/// use realm_tensor::{MatF32, stats};
/// let x = MatF32::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0])?;
/// let s = stats::summary(&x);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.max, 4.0);
/// # Ok::<(), realm_tensor::TensorError>(())
/// ```
pub fn summary(x: &MatF32) -> Summary {
    let count = x.len();
    if count == 0 {
        return Summary {
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
            count: 0,
        };
    }
    let mut sum = 0.0f64;
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in x.iter() {
        sum += v as f64;
        min = min.min(v);
        max = max.max(v);
    }
    let mean = (sum / count as f64) as f32;
    let mut var = 0.0f64;
    for &v in x.iter() {
        let d = v as f64 - mean as f64;
        var += d * d;
    }
    let std = (var / count as f64).sqrt() as f32;
    Summary {
        mean,
        std,
        min,
        max,
        count,
    }
}

/// Counts elements whose absolute value exceeds `threshold` standard deviations of the bulk.
///
/// This is the operational definition of "outlier channel" used when generating synthetic
/// activations and when measuring how an injected error skews the pre-normalization
/// distribution.
pub fn outlier_count(x: &MatF32, threshold_sigmas: f32) -> usize {
    let s = summary(x);
    if s.std == 0.0 {
        return 0;
    }
    x.iter()
        .filter(|&&v| ((v - s.mean) / s.std).abs() > threshold_sigmas)
        .count()
}

/// Excess kurtosis of the element distribution (0.0 for a Gaussian).
///
/// LLM hidden states are strongly leptokurtic (heavy-tailed); this is used in tests to check
/// that the synthetic activation generator actually produces outlier-dominated tensors.
pub fn kurtosis_excess(x: &MatF32) -> f32 {
    let s = summary(x);
    if s.count < 4 || s.std == 0.0 {
        return 0.0;
    }
    let mut fourth = 0.0f64;
    for &v in x.iter() {
        let d = (v - s.mean) as f64 / s.std as f64;
        fourth += d.powi(4);
    }
    (fourth / s.count as f64 - 3.0) as f32
}

/// Builds a histogram of `log2(|value| + 1)` with `bins` buckets spanning `[0, max_log2)`.
///
/// Used to visualise accumulator error-magnitude distributions in the figure harnesses.
pub fn log2_histogram(
    values: impl IntoIterator<Item = f64>,
    bins: usize,
    max_log2: f64,
) -> Vec<usize> {
    let mut hist = vec![0usize; bins.max(1)];
    if bins == 0 || max_log2 <= 0.0 {
        return hist;
    }
    let width = max_log2 / bins as f64;
    for v in values {
        let l = (v.abs() + 1.0).log2();
        let idx = ((l / width) as usize).min(bins - 1);
        hist[idx] += 1;
    }
    hist
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0.0 when either slice has zero variance or the lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatF32;

    #[test]
    fn summary_of_known_values() {
        let x = MatF32::from_vec(1, 4, vec![2.0, 4.0, 4.0, 6.0]).unwrap();
        let s = summary(&x);
        assert_eq!(s.mean, 4.0);
        assert!((s.std - 2.0_f32.sqrt()).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.range(), 4.0);
    }

    #[test]
    fn summary_of_empty_matrix_is_zero() {
        let s = summary(&MatF32::zeros(0, 0));
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn outlier_count_detects_injected_spike() {
        let mut x = MatF32::from_fn(1, 1000, |_, c| ((c % 7) as f32 - 3.0) * 0.1);
        assert_eq!(outlier_count(&x, 6.0), 0);
        x.set(0, 500, 50.0).unwrap();
        assert!(outlier_count(&x, 6.0) >= 1);
    }

    #[test]
    fn kurtosis_of_uniformish_data_is_negative() {
        let x = MatF32::from_fn(1, 1024, |_, c| (c as f32 / 1024.0) - 0.5);
        assert!(kurtosis_excess(&x) < 0.0);
    }

    #[test]
    fn kurtosis_increases_with_outliers() {
        let base = MatF32::from_fn(1, 1024, |_, c| ((c % 13) as f32 - 6.0) * 0.05);
        let mut spiked = base.clone();
        spiked.set(0, 10, 30.0).unwrap();
        spiked.set(0, 700, -30.0).unwrap();
        assert!(kurtosis_excess(&spiked) > kurtosis_excess(&base));
    }

    #[test]
    fn log2_histogram_buckets_values() {
        let hist = log2_histogram(vec![0.0, 1.0, 3.0, 1000.0], 4, 32.0);
        assert_eq!(hist.iter().sum::<usize>(), 4);
        assert!(hist[0] >= 3); // small values land in the first bucket
        assert_eq!(hist[1], 1); // log2(1001) ≈ 10 lands in bucket 1 of width 8
    }

    #[test]
    fn log2_histogram_zero_bins_is_empty() {
        assert_eq!(log2_histogram(vec![1.0], 0, 32.0), vec![0usize; 1]);
    }

    #[test]
    fn pearson_of_linear_relationship_is_one() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = vec![8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_inputs_are_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0]), 0.0);
    }
}
