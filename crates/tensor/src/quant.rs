//! Symmetric INT8 quantization, following the SmoothQuant-style setup referenced by the paper.
//!
//! GEMM inputs are quantized to INT8, accumulation happens in INT32, and the accumulator is
//! either de-quantized back to f32 (for components feeding non-linear functions such as the
//! attention output projection `O`) or re-quantized to INT8 (for components feeding another
//! quantized GEMM, such as `K`). The paper's Q1.2 insight — that high-bit errors saturate
//! because of re-quantization clipping — falls directly out of [`requantize_accumulator`].

use crate::{MatF32, MatI32, MatI8};
use serde::{Deserialize, Serialize};

/// Scale describing a symmetric quantization mapping `real = scale * quantized`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Multiplicative step size between adjacent integer codes.
    pub scale: f32,
}

impl QuantParams {
    /// Creates quantization parameters from an absolute-maximum value so that `abs_max`
    /// maps to the INT8 extreme (±127).
    ///
    /// A zero or non-finite `abs_max` falls back to a scale of 1.0 so that all-zero tensors
    /// quantize losslessly instead of producing NaNs.
    pub fn from_abs_max(abs_max: f32) -> Self {
        let scale = if abs_max.is_finite() && abs_max > 0.0 {
            abs_max / 127.0
        } else {
            1.0
        };
        Self { scale }
    }

    /// Quantizes a single value to INT8 with saturation.
    pub fn quantize(&self, value: f32) -> i8 {
        let q = (value / self.scale).round();
        q.clamp(-127.0, 127.0) as i8
    }

    /// De-quantizes a single INT8 code back to f32.
    pub fn dequantize(&self, code: i8) -> f32 {
        code as f32 * self.scale
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        Self { scale: 1.0 }
    }
}

/// Quantizes an f32 matrix symmetrically to INT8 using a single per-tensor scale.
///
/// Returns the quantized matrix together with the scale so the caller can combine it with the
/// other operand's scale when interpreting INT32 accumulators.
///
/// # Example
///
/// ```
/// use realm_tensor::{MatF32, quant};
/// let x = MatF32::from_fn(2, 2, |r, c| (r as f32 - c as f32) * 3.0);
/// let (q, scale) = quant::quantize_symmetric(&x);
/// let back = quant::dequantize(&q, scale);
/// assert!(x.distance(&back)? < 0.1);
/// # Ok::<(), realm_tensor::TensorError>(())
/// ```
pub fn quantize_symmetric(x: &MatF32) -> (MatI8, f32) {
    let params = QuantParams::from_abs_max(x.abs_max());
    let q = x.map(|v| params.quantize(v));
    (q, params.scale)
}

/// [`quantize_symmetric`] writing into caller-provided storage.
///
/// `q` is reshaped in place (reusing its backing allocation when the capacity suffices)
/// and every element is overwritten; the returned scale is bit-identical to the allocating
/// path. This is the per-GEMM activation quantization of the allocation-free decode loop.
pub fn quantize_symmetric_into(x: &MatF32, q: &mut MatI8) -> f32 {
    let params = QuantParams::from_abs_max(x.abs_max());
    q.resize_overwrite(x.rows(), x.cols());
    for (qv, &v) in q.iter_mut().zip(x.iter()) {
        *qv = params.quantize(v);
    }
    params.scale
}

/// De-quantizes an INT8 matrix given its scale.
pub fn dequantize(q: &MatI8, scale: f32) -> MatF32 {
    q.map(|v| v as f32 * scale)
}

/// Interprets an INT32 accumulator matrix as real values given the product of operand scales.
///
/// For `Y = A·B` with `A ≈ scale_a · Qa` and `B ≈ scale_b · Qb`, the accumulator `Qa·Qb`
/// represents `Y / (scale_a · scale_b)`.
pub fn dequantize_accumulator(acc: &MatI32, combined_scale: f32) -> MatF32 {
    acc.map(|v| v as f32 * combined_scale)
}

/// Re-quantizes an INT32 accumulator directly to INT8 with saturation.
///
/// `combined_scale` converts accumulator units to real values and `out_scale` is the scale of
/// the INT8 output tensor. Values outside ±127 are clipped, which is precisely why the paper
/// observes that errors in very high bits of re-quantized components (e.g. `K`) saturate: a
/// huge corrupted accumulator still only reaches the ±127 rail.
pub fn requantize_accumulator(acc: &MatI32, combined_scale: f32, out_scale: f32) -> MatI8 {
    let out_scale = if out_scale > 0.0 && out_scale.is_finite() {
        out_scale
    } else {
        1.0
    };
    acc.map(|v| {
        let real = v as f32 * combined_scale;
        (real / out_scale).round().clamp(-127.0, 127.0) as i8
    })
}

/// Quantizes each row with its own scale (per-row / per-token quantization).
///
/// Activation tensors in LLMs contain a few very large outlier channels; per-row scales keep
/// the quantization error of ordinary rows from being dominated by outlier rows. Returns the
/// quantized matrix and one scale per row.
pub fn quantize_per_row(x: &MatF32) -> (MatI8, Vec<f32>) {
    let mut scales = Vec::with_capacity(x.rows());
    let mut q = MatI8::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let abs_max = x.row(r).iter().fold(0.0_f32, |acc, v| acc.max(v.abs()));
        let params = QuantParams::from_abs_max(abs_max);
        scales.push(params.scale);
        for (c, &v) in x.row(r).iter().enumerate() {
            q.row_mut(r)[c] = params.quantize(v);
        }
    }
    (q, scales)
}

/// De-quantizes a per-row-quantized matrix.
///
/// # Panics
///
/// Panics if `scales.len() != q.rows()`.
pub fn dequantize_per_row(q: &MatI8, scales: &[f32]) -> MatF32 {
    assert_eq!(
        scales.len(),
        q.rows(),
        "one scale per row is required ({} scales for {} rows)",
        scales.len(),
        q.rows()
    );
    MatF32::from_fn(q.rows(), q.cols(), |r, c| q[(r, c)] as f32 * scales[r])
}

/// Worst-case absolute quantization error for a tensor quantized with the given scale.
///
/// Symmetric rounding quantization has error at most half a step.
pub fn max_quantization_error(scale: f32) -> f32 {
    scale * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let x = MatF32::from_fn(8, 8, |r, c| ((r * 8 + c) as f32 - 32.0) * 0.37);
        let (q, scale) = quantize_symmetric(&x);
        let back = dequantize(&q, scale);
        let bound = max_quantization_error(scale) + 1e-6;
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} exceeds {bound}");
        }
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let x = MatF32::zeros(4, 4);
        let (q, scale) = quantize_symmetric(&x);
        assert!(q.iter().all(|&v| v == 0));
        assert!(scale.is_finite() && scale > 0.0);
    }

    #[test]
    fn abs_max_maps_to_127() {
        let x = MatF32::from_vec(1, 2, vec![10.0, -5.0]).unwrap();
        let (q, _) = quantize_symmetric(&x);
        assert_eq!(q[(0, 0)], 127);
    }

    #[test]
    fn requantization_saturates_large_accumulators() {
        // A corrupted accumulator with a flipped bit 30 is astronomically large, but the
        // re-quantized INT8 output can only reach the rail.
        let acc = MatI32::from_vec(1, 2, vec![100, 100 + (1 << 30)]).unwrap();
        let q = requantize_accumulator(&acc, 1e-3, 0.05);
        assert_eq!(q[(0, 1)], 127);
        assert!(q[(0, 0)] < 127);
    }

    #[test]
    fn dequantize_accumulator_scales_linearly() {
        let acc = MatI32::from_vec(1, 3, vec![10, -20, 0]).unwrap();
        let y = dequantize_accumulator(&acc, 0.5);
        assert_eq!(y.as_slice(), &[5.0, -10.0, 0.0]);
    }

    #[test]
    fn per_row_quantization_handles_outlier_rows() {
        let x = MatF32::from_fn(
            2,
            4,
            |r, c| if r == 0 { c as f32 } else { c as f32 * 100.0 },
        );
        let (q, scales) = quantize_per_row(&x);
        assert_eq!(scales.len(), 2);
        assert!(scales[1] > scales[0]);
        let back = dequantize_per_row(&q, &scales);
        // The small row keeps good precision despite the outlier row.
        assert!((back[(0, 3)] - 3.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "one scale per row")]
    fn dequantize_per_row_panics_on_scale_mismatch() {
        let q = MatI8::zeros(3, 2);
        let _ = dequantize_per_row(&q, &[1.0, 2.0]);
    }

    #[test]
    fn quant_params_single_value_roundtrip() {
        let p = QuantParams::from_abs_max(6.35);
        let code = p.quantize(1.0);
        let back = p.dequantize(code);
        assert!((back - 1.0).abs() <= p.scale * 0.5 + 1e-6);
    }

    #[test]
    fn default_params_are_identity_like() {
        let p = QuantParams::default();
        assert_eq!(p.quantize(5.0), 5);
        assert_eq!(p.dequantize(5), 5.0);
    }
}
