//! SIMD i8 GEMM microkernel backend with fused ABFT checksums and runtime dispatch.
//!
//! [`SimdEngine`] is the fastest single-thread backend in the workspace: an x86-64 AVX2
//! microkernel built on `core::arch` intrinsics, selected at **runtime** via
//! `is_x86_feature_detected!` so one binary runs everywhere — hosts without AVX2 (or runs
//! with the `REALM_FORCE_SCALAR=1` override) fall back to a portable unrolled-chunk kernel
//! with the identical loop structure. [`SimdParallelEngine`] shards the same microkernel
//! over [`crate::engine::ParallelEngine`]'s work-stealing row chunks, so batched prefill
//! and serving-scale GEMMs get the SIMD win on every core.
//!
//! # The microkernel
//!
//! The register tile is **4 rows × 16 columns**, accumulated in eight `i32×8` vector
//! registers across the full depth `k`. The depth dimension advances two rows of `B` at a
//! time (a *dot-product pair*):
//!
//! 1. 16 `i8` of `B[p]` and `B[p+1]` are widened to `i16` (`vpmovsxbw`) and interleaved
//!    (`vpunpcklwd`/`vpunpckhwd`) into column pairs `(B[p][j], B[p+1][j])`;
//! 2. the matching activation pair `(A[i][p], A[i][p+1])` is broadcast as a packed `i16`
//!    pair;
//! 3. `vpmaddwd` multiplies the `i16` pairs and adds each pair in `i32`:
//!    `A[i][p]·B[p][j] + A[i][p+1]·B[p+1][j]` — **exact** for every `i8` input, since each
//!    product is at most `128² = 16384` and the pair sum at most `2¹⁵`, far inside `i32`.
//!
//! An odd depth tail pairs the final `B` row with a zero vector, so `k` need not be a
//! multiple of the SIMD width; column tails (`n mod 16`) run through the portable kernel,
//! which is bit-identical (integer accumulation is order-invariant).
//!
//! ## Why `vpmaddwd` and not the `vpmaddubsw` offset trick
//!
//! The classic i8 dot-product idiom multiplies **unsigned×signed** bytes with `vpmaddubsw`
//! after offsetting one operand by +128 and correcting afterwards. That idiom is *not*
//! exact over the full i8 range: `vpmaddubsw` saturates its `i16` pair sum, and with an
//! offset operand at 255 against weights at `i8::MIN` the true pair sum (−65280) is far
//! below `i16::MIN`, so saturation fires and the +128 correction cannot restore the lost
//! bits. Statistical ABFT admits no tolerance on the INT32 accumulator, so this backend
//! widens to `i16` first and pays one extra shuffle per `B` pair — bit-exact for
//! `i8::MIN` (and everything else) by construction, which `tests/backend_parity.rs` and
//! the adversarial suite in `tests/properties.rs` pin down.
//!
//! # Fused checksums, in-register
//!
//! The observed ABFT checksum `eᵀ·Y` is reduced **from the same registers that produced
//! `Y`**: as each row's final 16-column tile leaves its accumulator registers, its `i32`
//! lanes are widened (`vpmovsxdq`) and added onto four `i64×4` column-sum registers that
//! persist across the whole row loop of the column block — no second pass over the output.
//! The operand-side checksum `(eᵀ·W)·X` cannot ride the accumulator registers (its `i64`
//! weights exceed what AVX2 can multiply lane-wise), so it runs as a single row-major
//! streaming pass over `B` — the layout the scalar i64 multiply-add vectorizes and
//! prefetches best at, measurably faster than stripe-local walks on tall decode-shape
//! weights.
//!
//! # Packed-B decode kernels
//!
//! Static weights go through [`crate::PackedMatI8`] and the `gemm_i8_packed*` entry
//! points: the depth-pair interleaving above is done **once at pack time**, so the packed
//! kernels replace load + 2×widen + 2×unpack (+ a retirement permute) per pair with one
//! 32-byte load + 2×widen, already in linear column order. Three tiers dispatch at
//! construction ([`SimdTier`]): portable, AVX2, and AVX-512 (which widens the whole
//! 32-byte pair row into one zmm register — see [`SimdTier::Avx512`]). For checksummed
//! GEMV/skinny-M shapes (`m ≤` [`SKINNY_MAX_ROWS`]) a dedicated kernel fuses the
//! *expected* checksum into the same register stream as the multiply, so a protected
//! decode step streams the weights exactly once.

use crate::engine::{
    accumulate_expected_panel, check_compatible, check_packed_compatible, checksummed_into_single,
    operand_col_sums_into, sharded_checksummed_into, sharded_gemm_i8_into, worker_count,
    ChecksummedGemm, FusedChecksums, GemmEngine, RowKernel, PARALLEL_MIN_MACS,
};
use crate::packed::{PackedMatI8, PACK_BLOCK_COLS, PACK_PAIR_BYTES};
use crate::{MatI32, MatI8, Result};

/// Width (output columns) of the SIMD register tile.
pub const SIMD_TILE_COLS: usize = 16;
/// Height (output rows) of the SIMD register tile.
pub const SIMD_TILE_ROWS: usize = 4;
/// Maximum `m` handled by the dedicated GEMV/skinny-M packed kernel: the largest row
/// count whose activation column sums `eᵀ·X` are guaranteed to fit an `i16` lane
/// (`4·128 = 512`), which is what lets the expected checksum ride the multiply's
/// `vpmaddwd` stream.
pub const SKINNY_MAX_ROWS: usize = 4;

// The packed block width and the SIMD tile width must agree — the packed layout IS the
// kernels' consumption order.
const _: () = assert!(SIMD_TILE_COLS == PACK_BLOCK_COLS);

/// Environment variable that forces the portable fallback kernel even when the CPU
/// supports the AVX2 microkernel. Any non-empty value other than `0` counts as set; CI
/// uses it to keep both dispatch paths green on AVX2 runners.
pub const FORCE_SCALAR_ENV: &str = "REALM_FORCE_SCALAR";

fn force_scalar() -> bool {
    std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != "0")
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512bw")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_available() -> bool {
    false
}

/// Returns `true` when an accelerated microkernel will be dispatched: the host CPU
/// reports AVX2 and [`FORCE_SCALAR_ENV`] is not set.
pub fn simd_accelerated() -> bool {
    !force_scalar() && avx2_available()
}

/// Returns `true` when the AVX-512 tier of the **packed** kernels will be dispatched:
/// the host CPU reports AVX-512F + AVX-512BW and [`FORCE_SCALAR_ENV`] is not set.
pub fn avx512_accelerated() -> bool {
    !force_scalar() && avx512_available()
}

/// Human-readable description of what the runtime dispatch selected, for benchmark and
/// example output (bench numbers are uninterpretable without knowing which path ran).
pub fn simd_dispatch_label() -> &'static str {
    if force_scalar() {
        "portable (REALM_FORCE_SCALAR set)"
    } else if avx512_available() {
        "avx512 (packed kernels; avx2 unpacked)"
    } else if avx2_available() {
        "avx2"
    } else {
        "portable (no AVX2 on this host)"
    }
}

/// The instruction-set tier a [`SimdEngine`] dispatches, decided once at construction.
///
/// Ordered worst-to-best so a requested tier can be clamped to what the host supports
/// ([`SimdEngine::with_tier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// The portable unrolled-chunk kernels (every host; pinned by [`FORCE_SCALAR_ENV`]).
    Portable,
    /// The AVX2 microkernels (16-wide i16 pair tiles).
    Avx2,
    /// AVX2 for the unpacked kernel plus AVX-512F/BW for the **packed** kernels, which
    /// widen a whole 32-byte packed pair row into one 32-lane i16 zmm register
    /// (`vpmovsxbw`) and retire two depth pairs per `vpmaddwd`. The unpacked kernel
    /// deliberately stays on the AVX2 tile: without pre-packing, feeding 512-bit
    /// registers needs extra cross-lane shuffles that eat the wider multiply, while the
    /// packed layout feeds them with plain loads — AVX-512 is applied exactly where the
    /// data layout lets it pay.
    Avx512,
}

impl SimdTier {
    /// The best tier the host supports under the current environment.
    pub fn detect() -> Self {
        if force_scalar() {
            SimdTier::Portable
        } else if avx512_available() {
            SimdTier::Avx512
        } else if avx2_available() {
            SimdTier::Avx2
        } else {
            SimdTier::Portable
        }
    }

    /// Short label for reports (`"portable"`, `"avx2"`, `"avx512"`).
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Portable => "portable",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }
}

/// The SIMD microkernel backend: the best of AVX-512/AVX2/portable the CPU supports.
///
/// Dispatch is decided once at construction ([`SimdEngine::new`]) and carried by the
/// engine value, so the per-GEMM hot path never re-reads the environment or CPUID.
/// All tiers are bit-identical to [`crate::engine::ReferenceEngine`] on accumulators and
/// fused checksums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdEngine {
    tier: SimdTier,
}

impl SimdEngine {
    /// A SIMD engine using the best kernel tier the host supports (runtime detection).
    pub fn new() -> Self {
        Self {
            tier: SimdTier::detect(),
        }
    }

    /// A SIMD engine pinned to the portable fallback kernel, regardless of host support.
    ///
    /// Used by the differential tests so the fallback path is exercised even on AVX2
    /// hosts; equivalent to constructing under [`FORCE_SCALAR_ENV`].
    pub fn portable() -> Self {
        Self {
            tier: SimdTier::Portable,
        }
    }

    /// A SIMD engine pinned to at most `tier`, clamped to what the host supports — a
    /// request for [`SimdTier::Avx512`] on an AVX2-only host yields the AVX2 tier, and so
    /// on down to portable. This is how the differential tests exercise every supported
    /// tier explicitly (and skip unsupported ones gracefully): construct with the tier,
    /// then check [`SimdEngine::tier`] for what was actually granted.
    pub fn with_tier(tier: SimdTier) -> Self {
        Self {
            tier: tier.min(SimdTier::detect()),
        }
    }

    /// The instruction-set tier this engine dispatches.
    pub fn tier(&self) -> SimdTier {
        self.tier
    }

    /// Whether this engine dispatches an accelerated microkernel (`false` = portable).
    pub fn is_accelerated(&self) -> bool {
        self.tier != SimdTier::Portable
    }

    /// Microkernel pass over a contiguous row range `[row_start, row_end)` of `a`,
    /// accumulating into `out_band` (the matching band of the output, see
    /// [`crate::engine::BlockedEngine::run_rows`] for the band contract). When `fused` is
    /// present the checksum reductions ride the pass: `eᵀ·Y` from the accumulator
    /// registers as each tile is finalised, `(eᵀ·W)·X` from the cache-hot `B` stripes.
    pub(crate) fn run_rows(
        &self,
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: Option<FusedChecksums<'_>>,
    ) {
        let mut fused = fused;
        #[cfg(target_arch = "x86_64")]
        if self.tier >= SimdTier::Avx2 {
            // SAFETY: an accelerated tier is only granted when AVX2 was detected at
            // construction (the AVX-512 tier implies AVX2; see `SimdTier::detect`). The
            // unpacked kernel stays on the AVX2 tile at every accelerated tier — see
            // [`SimdTier::Avx512`] for why.
            unsafe { avx2::run_rows(a, b, out_band, row_start, row_end, &mut fused) };
            return;
        }
        portable::run_cols(a, b, out_band, row_start, row_end, 0, b.cols(), &mut fused);
    }

    /// Packed-B microkernel pass over rows `[row_start, row_end)` of `a`, accumulating
    /// into `out_band` (same band contract as [`SimdEngine::run_rows`]). The packed tiles
    /// are streamed in pre-interleaved depth-pair order, so the per-GEMM `vpunpck`
    /// interleaves and the retirement cross-lane permutes of the unpacked kernel vanish.
    /// When `observed` is present the output-side checksum `eᵀ·Y` rides the accumulator
    /// registers; the operand-side expected checksum is the caller's job (see
    /// [`SimdEngine::run_skinny_packed`] for the shape where it fuses too).
    pub(crate) fn run_rows_packed(
        &self,
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        observed: Option<&mut [i64]>,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            if self.tier >= SimdTier::Avx512 {
                // SAFETY: the AVX-512 tier is only granted when AVX-512F/BW (and AVX2)
                // were detected at construction.
                unsafe { packed_avx512::run_rows(a, pb, out_band, row_start, row_end, observed) };
                return;
            }
            if self.tier >= SimdTier::Avx2 {
                // SAFETY: the AVX2 tier is only granted when AVX2 was detected.
                unsafe { packed_avx2::run_rows(a, pb, out_band, row_start, row_end, observed) };
                return;
            }
        }
        packed_portable::run_rows(a, pb, out_band, row_start, row_end, observed);
    }

    /// The GEMV/skinny-M decode kernel: for `m ≤ SKINNY_MAX_ROWS` checksummed GEMMs, the
    /// operand-side expected checksum `(eᵀ·X)·W` fuses into the **same** streaming pass as
    /// the multiply — with so few rows, `eᵀ·X` fits an `i16` lane (`|Σ xᵢ| ≤ 4·128`), so
    /// the packed-B registers already loaded for the multiply feed one extra `vpmaddwd`
    /// per pair. That halves the memory traffic of a checksummed decode step: the unpacked
    /// path streams `W` twice (once for the multiply, once for the expected reduction),
    /// the skinny packed path streams it exactly once.
    ///
    /// Overflow bound: each fused partial is `|eᵀ·X[pair]| · |W| ≤ 2·512·128 = 2¹⁷`; the
    /// `i32` partials drain into `i64` every [`packed_portable::DRAIN_PAIRS`] pairs, and
    /// `8192 · 2¹⁷ = 2³⁰ < i32::MAX` — exact on every input, like everything else here.
    pub(crate) fn run_skinny_packed(
        &self,
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        etx: &[i64],
        expected: &mut [i64],
        observed: &mut [i64],
    ) {
        debug_assert!(a.rows() <= SKINNY_MAX_ROWS);
        #[cfg(target_arch = "x86_64")]
        {
            if self.tier >= SimdTier::Avx512 {
                // SAFETY: tier granted only with AVX-512F/BW + AVX2 detected.
                unsafe { packed_avx512::run_skinny(a, pb, out_band, etx, expected, observed) };
                return;
            }
            if self.tier >= SimdTier::Avx2 {
                // SAFETY: tier granted only with AVX2 detected.
                unsafe { packed_avx2::run_skinny(a, pb, out_band, etx, expected, observed) };
                return;
            }
        }
        packed_portable::run_skinny(a, pb, out_band, etx, expected, observed);
    }
}

impl Default for SimdEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl GemmEngine for SimdEngine {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn gemm_i8(&self, a: &MatI8, b: &MatI8) -> Result<MatI32> {
        let mut out = MatI32::zeros(0, 0);
        self.gemm_i8_into(a, b, &mut out)?;
        Ok(out)
    }

    fn gemm_i8_into(&self, a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
        check_compatible("SimdEngine::gemm_i8", a, b)?;
        out.resize_reset(a.rows(), b.cols());
        self.run_rows(a, b, out.as_mut_slice(), 0, a.rows(), None);
        Ok(())
    }

    fn gemm_i8_checksummed(&self, a: &MatI8, b: &MatI8) -> Result<ChecksummedGemm> {
        let mut dest = ChecksummedGemm::empty();
        let mut etw = Vec::new();
        self.gemm_i8_checksummed_into(a, b, &mut dest, &mut etw)?;
        Ok(dest)
    }

    fn gemm_i8_checksummed_into(
        &self,
        a: &MatI8,
        b: &MatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        checksummed_into_single(
            self,
            "SimdEngine::gemm_i8_checksummed",
            a,
            b,
            dest,
            etw_scratch,
        )
    }

    fn gemm_i8_packed_into(&self, a: &MatI8, pb: &PackedMatI8, out: &mut MatI32) -> Result<()> {
        check_packed_compatible("SimdEngine::gemm_i8_packed", a, pb)?;
        out.resize_reset(a.rows(), pb.cols());
        self.run_rows_packed(a, pb, out.as_mut_slice(), 0, a.rows(), None);
        Ok(())
    }

    fn gemm_i8_packed_checksummed_into(
        &self,
        a: &MatI8,
        pb: &PackedMatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        check_packed_compatible("SimdEngine::gemm_i8_packed_checksummed", a, pb)?;
        operand_col_sums_into(a, etw_scratch);
        dest.prepare(a.rows(), pb.cols());
        let (acc, expected, observed) = dest.fused_parts_mut();
        if (1..=SKINNY_MAX_ROWS).contains(&a.rows()) {
            // Decode shapes: multiply and BOTH checksum reductions ride one stream over
            // the packed tiles (see `run_skinny_packed` for the overflow argument).
            self.run_skinny_packed(a, pb, acc.as_mut_slice(), etw_scratch, expected, observed);
        } else {
            accumulate_expected_panel(
                pb.unpacked(),
                etw_scratch,
                expected,
                (0, a.cols()),
                (0, pb.cols()),
            );
            self.run_rows_packed(a, pb, acc.as_mut_slice(), 0, a.rows(), Some(observed));
        }
        Ok(())
    }
}

impl RowKernel for SimdEngine {
    fn run_rows(
        &self,
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: Option<FusedChecksums<'_>>,
    ) {
        SimdEngine::run_rows(self, a, b, out_band, row_start, row_end, fused)
    }
}

/// Adapter that lets the packed kernels ride the work-stealing row-shard orchestration:
/// the `b` operand the sharding helpers thread through is ignored in favour of the packed
/// tiles (the caller passes [`PackedMatI8::unpacked`] as `b`, so the shape checks and the
/// shard-zero expected reduction see the same matrix the tiles were packed from).
struct PackedRowKernel<'p> {
    engine: &'p SimdEngine,
    pb: &'p PackedMatI8,
}

impl RowKernel for PackedRowKernel<'_> {
    fn run_rows(
        &self,
        a: &MatI8,
        _b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: Option<FusedChecksums<'_>>,
    ) {
        match fused {
            Some(FusedChecksums {
                etw,
                expected,
                observed,
            }) => {
                if let Some(expected) = expected {
                    accumulate_expected_panel(
                        self.pb.unpacked(),
                        etw,
                        expected,
                        (0, a.cols()),
                        (0, self.pb.cols()),
                    );
                }
                self.engine.run_rows_packed(
                    a,
                    self.pb,
                    out_band,
                    row_start,
                    row_end,
                    Some(observed),
                );
            }
            None => self
                .engine
                .run_rows_packed(a, self.pb, out_band, row_start, row_end, None),
        }
    }
}

/// The SIMD microkernel sharded over work-stealing row chunks — the composition of
/// [`SimdEngine`] with [`crate::engine::ParallelEngine`]'s scheduling, and the
/// process-wide default on AVX2 hosts (see [`crate::engine::EngineKind::auto`]).
///
/// Small GEMMs (below [`crate::engine::PARALLEL_MIN_MACS`]) run the microkernel inline on the calling
/// thread, so GEMV-like decode shapes stay on the allocation-free single-thread path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdParallelEngine {
    inner: SimdEngine,
    /// Explicit worker count; `None` means one per available core.
    pub threads: Option<usize>,
}

impl SimdParallelEngine {
    /// A parallel SIMD engine with runtime kernel detection, one worker per core.
    pub fn new() -> Self {
        Self {
            inner: SimdEngine::new(),
            threads: None,
        }
    }

    /// A parallel SIMD engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            inner: SimdEngine::new(),
            threads: Some(threads.max(1)),
        }
    }

    /// A parallel engine pinned to the portable fallback kernel (for differential tests).
    pub fn portable() -> Self {
        Self {
            inner: SimdEngine::portable(),
            threads: None,
        }
    }

    /// Whether the sharded microkernel is the AVX2 path (`false` = portable fallback).
    pub fn is_accelerated(&self) -> bool {
        self.inner.is_accelerated()
    }
}

impl Default for SimdParallelEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl GemmEngine for SimdParallelEngine {
    fn name(&self) -> &'static str {
        "simd_parallel"
    }

    fn gemm_i8(&self, a: &MatI8, b: &MatI8) -> Result<MatI32> {
        let mut out = MatI32::zeros(0, 0);
        self.gemm_i8_into(a, b, &mut out)?;
        Ok(out)
    }

    fn gemm_i8_into(&self, a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
        sharded_gemm_i8_into(
            &self.inner,
            self.threads,
            "SimdParallelEngine::gemm_i8",
            a,
            b,
            out,
        )
    }

    fn gemm_i8_checksummed(&self, a: &MatI8, b: &MatI8) -> Result<ChecksummedGemm> {
        let mut dest = ChecksummedGemm::empty();
        let mut etw = Vec::new();
        self.gemm_i8_checksummed_into(a, b, &mut dest, &mut etw)?;
        Ok(dest)
    }

    fn gemm_i8_checksummed_into(
        &self,
        a: &MatI8,
        b: &MatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        sharded_checksummed_into(
            &self.inner,
            self.threads,
            "SimdParallelEngine::gemm_i8_checksummed",
            a,
            b,
            dest,
            etw_scratch,
        )
    }

    fn gemm_i8_packed_into(&self, a: &MatI8, pb: &PackedMatI8, out: &mut MatI32) -> Result<()> {
        check_packed_compatible("SimdParallelEngine::gemm_i8_packed", a, pb)?;
        let (m, k) = a.shape();
        // Inline delegation below the sharding threshold, so GEMV-like decode shapes hit
        // the single-thread packed (and skinny) kernels without touching thread metadata.
        if m * k * pb.cols() < PARALLEL_MIN_MACS || worker_count(self.threads, m) <= 1 {
            return self.inner.gemm_i8_packed_into(a, pb, out);
        }
        sharded_gemm_i8_into(
            &PackedRowKernel {
                engine: &self.inner,
                pb,
            },
            self.threads,
            "SimdParallelEngine::gemm_i8_packed",
            a,
            pb.unpacked(),
            out,
        )
    }

    fn gemm_i8_packed_checksummed_into(
        &self,
        a: &MatI8,
        pb: &PackedMatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        check_packed_compatible("SimdParallelEngine::gemm_i8_packed_checksummed", a, pb)?;
        let (m, k) = a.shape();
        if m * k * pb.cols() < PARALLEL_MIN_MACS || worker_count(self.threads, m) <= 1 {
            return self
                .inner
                .gemm_i8_packed_checksummed_into(a, pb, dest, etw_scratch);
        }
        sharded_checksummed_into(
            &PackedRowKernel {
                engine: &self.inner,
                pb,
            },
            self.threads,
            "SimdParallelEngine::gemm_i8_packed_checksummed",
            a,
            pb.unpacked(),
            dest,
            etw_scratch,
        )
    }
}

/// Portable unrolled-chunk fallback: the same 16-column blocks and depth-pair structure as
/// the AVX2 microkernel, in scalar `i32` arithmetic over a stack tile — no heap scratch,
/// so the zero-allocation decode contract holds on every host. The compiler's
/// autovectorizer gets clean slice-to-slice loops; even fully scalar the results are
/// bit-identical (exact integer accumulation is order-invariant).
mod portable {
    use super::{accumulate_expected_panel, FusedChecksums, MatI8, SIMD_TILE_COLS};

    /// Column-chunked kernel over rows `[row_start, row_end)` and columns
    /// `[col_start, col_end)`; also serves as the column-tail handler of the AVX2 path.
    #[allow(clippy::too_many_arguments)] // mirrors the band contract of `run_rows` kernels
    pub(super) fn run_cols(
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        col_start: usize,
        col_end: usize,
        fused: &mut Option<FusedChecksums<'_>>,
    ) {
        let k = a.cols();
        let n = b.cols();
        // Operand-side checksum over the whole column range in one row-major pass (see the
        // AVX2 kernel for why stripe-local walks are cache-hostile here).
        if let Some(FusedChecksums {
            etw,
            expected: Some(expected),
            ..
        }) = fused
        {
            accumulate_expected_panel(b, etw, expected, (0, k), (col_start, col_end));
        }
        let mut jc = col_start;
        while jc < col_end {
            let jc_end = (jc + SIMD_TILE_COLS).min(col_end);
            let width = jc_end - jc;
            for i in row_start..row_end {
                let a_row = a.row(i);
                let mut tile = [0i32; SIMD_TILE_COLS];
                let tile = &mut tile[..width];
                let mut p = 0;
                // Depth pairs, mirroring the `vpmaddwd` pairing of the AVX2 kernel.
                while p + 2 <= k {
                    let a0 = a_row[p] as i32;
                    let a1 = a_row[p + 1] as i32;
                    if (a0 | a1) != 0 {
                        let b0 = &b.row(p)[jc..jc_end];
                        let b1 = &b.row(p + 1)[jc..jc_end];
                        for ((t, &v0), &v1) in tile.iter_mut().zip(b0).zip(b1) {
                            *t += a0 * v0 as i32 + a1 * v1 as i32;
                        }
                    }
                    p += 2;
                }
                // Odd depth tail (the AVX2 kernel pairs it with a zero vector).
                if p < k {
                    let a0 = a_row[p] as i32;
                    if a0 != 0 {
                        for (t, &v0) in tile.iter_mut().zip(&b.row(p)[jc..jc_end]) {
                            *t += a0 * v0 as i32;
                        }
                    }
                }
                let band_row = (i - row_start) * n;
                let out_seg = &mut out_band[band_row + jc..band_row + jc_end];
                for (o, &t) in out_seg.iter_mut().zip(tile.iter()) {
                    *o += t;
                }
                // Output-side checksum from the freshly finalised tile values.
                if let Some(FusedChecksums { observed, .. }) = fused {
                    for (s, &v) in observed[jc..jc_end].iter_mut().zip(out_seg.iter()) {
                        *s += v as i64;
                    }
                }
            }
            jc = jc_end;
        }
    }
}

/// The AVX2 microkernel. Every function carries `#[target_feature(enable = "avx2")]` and
/// is only reachable through [`SimdEngine::run_rows`]'s detection-guarded dispatch.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{
        accumulate_expected_panel, portable, FusedChecksums, MatI8, SIMD_TILE_COLS, SIMD_TILE_ROWS,
    };
    use std::arch::x86_64::*;

    /// SIMD-width microkernel over full 16-column blocks; the `n mod 16` column tail and
    /// its checksum shares run through the bit-identical portable kernel.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_rows(
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: &mut Option<FusedChecksums<'_>>,
    ) {
        let k = a.cols();
        let n = b.cols();
        let n_simd = n - n % SIMD_TILE_COLS;
        // Operand-side checksum `(eᵀ·W)·X` over the SIMD-width columns, as one row-major
        // streaming pass over `B`. Unlike the output side this reduction cannot ride the
        // accumulator registers (AVX2 has no 64-bit lane multiply and `eᵀ·W` weights
        // exceed i32), and walking it in 16-column stripes re-streams `B` with a
        // cache-hostile access pattern — full contiguous rows are what the i64
        // multiply-add vectorizes and prefetches best at.
        if let Some(FusedChecksums {
            etw,
            expected: Some(expected),
            ..
        }) = fused
        {
            accumulate_expected_panel(b, etw, expected, (0, k), (0, n_simd));
        }
        let mut jc = 0;
        while jc < n_simd {
            let observed = fused
                .as_mut()
                .map(|f| &mut f.observed[jc..jc + SIMD_TILE_COLS]);
            col_block(a, b, out_band, row_start, row_end, jc, observed);
            jc += SIMD_TILE_COLS;
        }
        if n_simd < n {
            portable::run_cols(a, b, out_band, row_start, row_end, n_simd, n, fused);
        }
    }

    /// One 16-column block over all rows of the band. The observed-checksum column sums
    /// live in four `i64×4` registers across the entire row loop and are added onto
    /// `observed` exactly once at the end — the output-side checksum never re-reads `Y`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and `jc + 16 <= b.cols()`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)] // mirrors the band contract of `run_rows` kernels
    unsafe fn col_block(
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        jc: usize,
        observed: Option<&mut [i64]>,
    ) {
        let mut obs = [_mm256_setzero_si256(); 4];
        let track = observed.is_some();
        let mut i = row_start;
        while i + SIMD_TILE_ROWS <= row_end {
            if track {
                tile::<SIMD_TILE_ROWS, true>(a, b, out_band, row_start, i, jc, &mut obs);
            } else {
                tile::<SIMD_TILE_ROWS, false>(a, b, out_band, row_start, i, jc, &mut obs);
            }
            i += SIMD_TILE_ROWS;
        }
        macro_rules! row_tail {
            ($r:literal) => {
                if track {
                    tile::<$r, true>(a, b, out_band, row_start, i, jc, &mut obs)
                } else {
                    tile::<$r, false>(a, b, out_band, row_start, i, jc, &mut obs)
                }
            };
        }
        match row_end - i {
            1 => row_tail!(1),
            2 => row_tail!(2),
            3 => row_tail!(3),
            _ => {}
        }
        if let Some(observed) = observed {
            let mut lanes = [0i64; SIMD_TILE_COLS];
            for (q, &vec) in obs.iter().enumerate() {
                _mm256_storeu_si256(lanes.as_mut_ptr().add(4 * q) as *mut __m256i, vec);
            }
            for (s, &v) in observed.iter_mut().zip(&lanes) {
                *s += v;
            }
        }
    }

    /// An `R × 16` register tile accumulated over the full depth in eight (at `R = 4`)
    /// `i32×8` registers, two depth steps per `vpmaddwd`. When `FUSED`, each row's final
    /// tile is widened lane-wise (`vpmovsxdq`) into the block's observed-checksum
    /// registers before the accumulators are retired — the "reduce from the same
    /// registers" half of the fused-checksum contract.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2, `i + R <= a.rows()` and `jc + 16 <= b.cols()`.
    #[target_feature(enable = "avx2")]
    unsafe fn tile<const R: usize, const FUSED: bool>(
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        i: usize,
        jc: usize,
        obs: &mut [__m256i; 4],
    ) {
        let k = a.cols();
        let n = b.cols();
        let zero = _mm256_setzero_si256();
        let mut acc_lo = [zero; R];
        let mut acc_hi = [zero; R];
        let a_rows: [&[i8]; R] = std::array::from_fn(|r| a.row(i + r));
        let mut p = 0;
        while p + 2 <= k {
            // Widen two B rows to i16 and interleave into (B[p][j], B[p+1][j]) pairs.
            // The unpacks stay within 128-bit lanes, so the accumulator lanes carry the
            // columns in the fixed order {0-3, 8-11} / {4-7, 12-15}; one cross-lane
            // permute at retirement restores linear order.
            let b0 = load_extend(b.row(p).as_ptr().add(jc));
            let b1 = load_extend(b.row(p + 1).as_ptr().add(jc));
            let pairs_lo = _mm256_unpacklo_epi16(b0, b1);
            let pairs_hi = _mm256_unpackhi_epi16(b0, b1);
            for r in 0..R {
                let w = pair_weights(a_rows[r][p], a_rows[r][p + 1]);
                acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(pairs_lo, w));
                acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(pairs_hi, w));
            }
            p += 2;
        }
        if p < k {
            // Odd depth tail: pair the last B row with zeros so the same madd runs.
            let b0 = load_extend(b.row(p).as_ptr().add(jc));
            let pairs_lo = _mm256_unpacklo_epi16(b0, zero);
            let pairs_hi = _mm256_unpackhi_epi16(b0, zero);
            for r in 0..R {
                let w = pair_weights(a_rows[r][p], 0);
                acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(pairs_lo, w));
                acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(pairs_hi, w));
            }
        }
        for r in 0..R {
            // Restore linear column order: acc_lo = {0-3 | 8-11}, acc_hi = {4-7 | 12-15}.
            let res0 = _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20);
            let res1 = _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31);
            let band_row = (i + r - row_start) * n;
            let out_ptr = out_band.as_mut_ptr().add(band_row + jc);
            let final0 = _mm256_add_epi32(_mm256_loadu_si256(out_ptr as *const __m256i), res0);
            let final1 =
                _mm256_add_epi32(_mm256_loadu_si256(out_ptr.add(8) as *const __m256i), res1);
            _mm256_storeu_si256(out_ptr as *mut __m256i, final0);
            _mm256_storeu_si256(out_ptr.add(8) as *mut __m256i, final1);
            if FUSED {
                // eᵀ·Y share of this row, straight from the retiring registers.
                obs[0] = _mm256_add_epi64(
                    obs[0],
                    _mm256_cvtepi32_epi64(_mm256_castsi256_si128(final0)),
                );
                obs[1] = _mm256_add_epi64(
                    obs[1],
                    _mm256_cvtepi32_epi64(_mm256_extracti128_si256(final0, 1)),
                );
                obs[2] = _mm256_add_epi64(
                    obs[2],
                    _mm256_cvtepi32_epi64(_mm256_castsi256_si128(final1)),
                );
                obs[3] = _mm256_add_epi64(
                    obs[3],
                    _mm256_cvtepi32_epi64(_mm256_extracti128_si256(final1, 1)),
                );
            }
        }
    }

    /// 16 `i8` loaded and sign-extended to 16 `i16` lanes.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and that `ptr..ptr+16` is in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn load_extend(ptr: *const i8) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(ptr as *const __m128i))
    }

    /// The activation pair `(a0, a1)` broadcast as packed `i16` pairs: one `vpmaddwd`
    /// against an interleaved B-pair register yields `a0·B[p][j] + a1·B[p+1][j]` per lane.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn pair_weights(a0: i8, a1: i8) -> __m256i {
        let packed = ((a1 as i16 as u16 as u32) << 16) | (a0 as i16 as u16 as u32);
        _mm256_set1_epi32(packed as i32)
    }
}

/// Portable packed-B kernels: the same pre-interleaved depth-pair walk as the SIMD packed
/// kernels, in scalar arithmetic over a stack tile. Also the partial-final-block handler
/// for the SIMD tiers — the packed buffer pads every block to 16 columns (the padded
/// lanes multiply against zero bytes), but the output matrix does not, so the scalar
/// kernel writes exactly the `n mod 16` live columns.
mod packed_portable {
    use super::{MatI8, PackedMatI8, PACK_BLOCK_COLS, PACK_PAIR_BYTES, SKINNY_MAX_ROWS};

    /// Pairs accumulated in `i32` before the fused expected checksum of the SIMD skinny
    /// kernels drains to `i64`: each pair partial is bounded by `2·512·128 = 2¹⁷`, so
    /// `8192 · 2¹⁷ = 2³⁰` keeps the `i32` partials exact.
    pub(super) const DRAIN_PAIRS: usize = 8192;

    pub(super) fn run_rows(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        mut observed: Option<&mut [i64]>,
    ) {
        for blk in 0..pb.blocks() {
            run_block(a, pb, out_band, row_start, row_end, blk, &mut observed);
        }
    }

    /// One (possibly partial) 16-column block over the row band.
    pub(super) fn run_block(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        blk: usize,
        observed: &mut Option<&mut [i64]>,
    ) {
        let k = a.cols();
        let n = pb.cols();
        let jc = blk * PACK_BLOCK_COLS;
        let jc_end = (jc + PACK_BLOCK_COLS).min(n);
        let width = jc_end - jc;
        let pairs = pb.padded_k() / 2;
        let tiles = &pb.tiles()[blk * pb.block_stride()..];
        for i in row_start..row_end {
            let a_row = a.row(i);
            let mut tile = [0i32; PACK_BLOCK_COLS];
            let tile = &mut tile[..width];
            for p in 0..pairs {
                let a0 = a_row[2 * p] as i32;
                let a1 = if 2 * p + 1 < k {
                    a_row[2 * p + 1] as i32
                } else {
                    0
                };
                if (a0 | a1) == 0 {
                    continue;
                }
                let chunk = &tiles[p * PACK_PAIR_BYTES..(p + 1) * PACK_PAIR_BYTES];
                for (lane, t) in tile.iter_mut().enumerate() {
                    *t += a0 * chunk[2 * lane] as i32 + a1 * chunk[2 * lane + 1] as i32;
                }
            }
            let band_row = (i - row_start) * n;
            let out_seg = &mut out_band[band_row + jc..band_row + jc_end];
            for (o, &t) in out_seg.iter_mut().zip(tile.iter()) {
                *o += t;
            }
            if let Some(observed) = observed.as_deref_mut() {
                for (s, &v) in observed[jc..jc_end].iter_mut().zip(out_seg.iter()) {
                    *s += v as i64;
                }
            }
        }
    }

    pub(super) fn run_skinny(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        etx: &[i64],
        expected: &mut [i64],
        observed: &mut [i64],
    ) {
        for blk in 0..pb.blocks() {
            run_skinny_block(a, pb, out_band, blk, etx, expected, observed);
        }
    }

    /// One (possibly partial) block of the skinny kernel: multiply, expected and observed
    /// checksums all accumulated in the same walk over the packed pairs — the portable
    /// mirror of the single-stream contract of the SIMD skinny kernels (scalar `i64`
    /// expected, so no drain is needed; same exact value either way).
    pub(super) fn run_skinny_block(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        blk: usize,
        etx: &[i64],
        expected: &mut [i64],
        observed: &mut [i64],
    ) {
        let m = a.rows();
        debug_assert!(m <= SKINNY_MAX_ROWS);
        let k = a.cols();
        let n = pb.cols();
        let jc = blk * PACK_BLOCK_COLS;
        let jc_end = (jc + PACK_BLOCK_COLS).min(n);
        let width = jc_end - jc;
        let pairs = pb.padded_k() / 2;
        let tiles = &pb.tiles()[blk * pb.block_stride()..];
        let mut acc = [[0i32; PACK_BLOCK_COLS]; SKINNY_MAX_ROWS];
        let mut exp = [0i64; PACK_BLOCK_COLS];
        for p in 0..pairs {
            let chunk = &tiles[p * PACK_PAIR_BYTES..(p + 1) * PACK_PAIR_BYTES];
            let odd_tail = 2 * p + 1 >= k;
            let e0 = etx[2 * p];
            let e1 = if odd_tail { 0 } else { etx[2 * p + 1] };
            if (e0 | e1) != 0 {
                for (lane, e) in exp[..width].iter_mut().enumerate() {
                    *e += e0 * chunk[2 * lane] as i64 + e1 * chunk[2 * lane + 1] as i64;
                }
            }
            for (r, row_acc) in acc.iter_mut().take(m).enumerate() {
                let a_row = a.row(r);
                let a0 = a_row[2 * p] as i32;
                let a1 = if odd_tail { 0 } else { a_row[2 * p + 1] as i32 };
                if (a0 | a1) == 0 {
                    continue;
                }
                for (lane, t) in row_acc[..width].iter_mut().enumerate() {
                    *t += a0 * chunk[2 * lane] as i32 + a1 * chunk[2 * lane + 1] as i32;
                }
            }
        }
        for (e, &v) in expected[jc..jc_end].iter_mut().zip(exp.iter()) {
            *e += v;
        }
        for (r, row_acc) in acc.iter().take(m).enumerate() {
            let band_row = r * n;
            let out_seg = &mut out_band[band_row + jc..band_row + jc_end];
            for (o, &t) in out_seg.iter_mut().zip(row_acc[..width].iter()) {
                *o += t;
            }
            for (s, &v) in observed[jc..jc_end].iter_mut().zip(out_seg.iter()) {
                *s += v as i64;
            }
        }
    }
}

/// The AVX2 tier of the packed kernels. The pack-time interleaving turns each depth
/// pair's inner step into one 32-byte load plus two `vpmovsxbw` widenings — the
/// `vpunpck` interleaves and the retirement cross-lane permutes of the unpacked kernel
/// are gone, and the accumulator registers hold columns in linear order throughout.
#[cfg(target_arch = "x86_64")]
mod packed_avx2 {
    use super::{
        packed_portable, MatI8, PackedMatI8, PACK_BLOCK_COLS, PACK_PAIR_BYTES, SIMD_TILE_ROWS,
    };
    use std::arch::x86_64::*;

    /// Packed-B microkernel over full 16-column blocks; a partial final block runs
    /// through the bit-identical portable packed kernel.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_rows(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        mut observed: Option<&mut [i64]>,
    ) {
        let n = pb.cols();
        let full_blocks = n / PACK_BLOCK_COLS;
        for blk in 0..full_blocks {
            let jc = blk * PACK_BLOCK_COLS;
            let obs = observed
                .as_deref_mut()
                .map(|o| &mut o[jc..jc + PACK_BLOCK_COLS]);
            col_block(a, pb, out_band, row_start, row_end, blk, obs);
        }
        if full_blocks < pb.blocks() {
            packed_portable::run_block(
                a,
                pb,
                out_band,
                row_start,
                row_end,
                full_blocks,
                &mut observed,
            );
        }
    }

    /// One full 16-column block over all rows of the band; same observed-checksum
    /// register discipline as the unpacked `col_block`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and that block `blk` is full-width.
    #[target_feature(enable = "avx2")]
    unsafe fn col_block(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        blk: usize,
        observed: Option<&mut [i64]>,
    ) {
        let mut obs = [_mm256_setzero_si256(); 4];
        let track = observed.is_some();
        let mut i = row_start;
        while i + SIMD_TILE_ROWS <= row_end {
            if track {
                tile::<SIMD_TILE_ROWS, true>(a, pb, out_band, row_start, i, blk, &mut obs);
            } else {
                tile::<SIMD_TILE_ROWS, false>(a, pb, out_band, row_start, i, blk, &mut obs);
            }
            i += SIMD_TILE_ROWS;
        }
        macro_rules! row_tail {
            ($r:literal) => {
                if track {
                    tile::<$r, true>(a, pb, out_band, row_start, i, blk, &mut obs)
                } else {
                    tile::<$r, false>(a, pb, out_band, row_start, i, blk, &mut obs)
                }
            };
        }
        match row_end - i {
            1 => row_tail!(1),
            2 => row_tail!(2),
            3 => row_tail!(3),
            _ => {}
        }
        if let Some(observed) = observed {
            add_i64x4_lanes(&obs, observed);
        }
    }

    /// An `R × 16` register tile over the packed pairs of block `blk`: the pair registers
    /// come out of `load_pair` already in linear column order, so retirement stores the
    /// accumulators directly — no permutes.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2, `i + R <= a.rows()` and block `blk` full-width.
    #[target_feature(enable = "avx2")]
    unsafe fn tile<const R: usize, const FUSED: bool>(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        i: usize,
        blk: usize,
        obs: &mut [__m256i; 4],
    ) {
        let k = a.cols();
        let n = pb.cols();
        let pairs = pb.padded_k() / 2;
        let tiles = pb.tiles().as_ptr().add(blk * pb.block_stride());
        let zero = _mm256_setzero_si256();
        let mut acc_lo = [zero; R];
        let mut acc_hi = [zero; R];
        let a_rows: [&[i8]; R] = std::array::from_fn(|r| a.row(i + r));
        for p in 0..pairs {
            let (pairs_lo, pairs_hi) = load_pair(tiles.add(p * PACK_PAIR_BYTES));
            let odd_tail = 2 * p + 1 >= k;
            for r in 0..R {
                let a0 = a_rows[r][2 * p] as i16;
                let a1 = if odd_tail {
                    0
                } else {
                    a_rows[r][2 * p + 1] as i16
                };
                let w = pair_weights(a0, a1);
                acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(pairs_lo, w));
                acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(pairs_hi, w));
            }
        }
        let jc = blk * PACK_BLOCK_COLS;
        for r in 0..R {
            let band_row = (i + r - row_start) * n;
            retire_row::<FUSED>(
                out_band.as_mut_ptr().add(band_row + jc),
                acc_lo[r],
                acc_hi[r],
                obs,
            );
        }
    }

    /// The GEMV/skinny-M packed kernel: all `m ≤ 4` rows in one register tile, with the
    /// expected checksum fused into the same pair stream (see
    /// [`super::SimdEngine::run_skinny_packed`]) — `i32` `vpmaddwd` partials drained into
    /// `i64` registers every [`packed_portable::DRAIN_PAIRS`] pairs.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and `1 <= a.rows() <= 4`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_skinny(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        etx: &[i64],
        expected: &mut [i64],
        observed: &mut [i64],
    ) {
        let full_blocks = pb.cols() / PACK_BLOCK_COLS;
        for blk in 0..full_blocks {
            match a.rows() {
                1 => skinny_block::<1>(a, pb, out_band, blk, etx, expected, observed),
                2 => skinny_block::<2>(a, pb, out_band, blk, etx, expected, observed),
                3 => skinny_block::<3>(a, pb, out_band, blk, etx, expected, observed),
                _ => skinny_block::<4>(a, pb, out_band, blk, etx, expected, observed),
            }
        }
        if full_blocks < pb.blocks() {
            packed_portable::run_skinny_block(
                a,
                pb,
                out_band,
                full_blocks,
                etx,
                expected,
                observed,
            );
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2, `a.rows() == R` and block `blk` full-width.
    #[target_feature(enable = "avx2")]
    unsafe fn skinny_block<const R: usize>(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        blk: usize,
        etx: &[i64],
        expected: &mut [i64],
        observed: &mut [i64],
    ) {
        let k = a.cols();
        let n = pb.cols();
        let pairs = pb.padded_k() / 2;
        let tiles = pb.tiles().as_ptr().add(blk * pb.block_stride());
        let zero = _mm256_setzero_si256();
        let mut acc_lo = [zero; R];
        let mut acc_hi = [zero; R];
        let mut exp32_lo = zero;
        let mut exp32_hi = zero;
        let mut exp64 = [zero; 4];
        let a_rows: [&[i8]; R] = std::array::from_fn(|r| a.row(r));
        let mut since_drain = 0usize;
        for p in 0..pairs {
            let (pairs_lo, pairs_hi) = load_pair(tiles.add(p * PACK_PAIR_BYTES));
            let odd_tail = 2 * p + 1 >= k;
            for r in 0..R {
                let a0 = a_rows[r][2 * p] as i16;
                let a1 = if odd_tail {
                    0
                } else {
                    a_rows[r][2 * p + 1] as i16
                };
                let w = pair_weights(a0, a1);
                acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(pairs_lo, w));
                acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(pairs_hi, w));
            }
            // Fused expected share: with m ≤ 4 the activation column sums eᵀ·X fit an
            // i16 lane, so the already-loaded pair registers feed one extra vpmaddwd.
            let e0 = etx[2 * p] as i16;
            let e1 = if odd_tail { 0 } else { etx[2 * p + 1] as i16 };
            let ew = pair_weights(e0, e1);
            exp32_lo = _mm256_add_epi32(exp32_lo, _mm256_madd_epi16(pairs_lo, ew));
            exp32_hi = _mm256_add_epi32(exp32_hi, _mm256_madd_epi16(pairs_hi, ew));
            since_drain += 1;
            if since_drain == packed_portable::DRAIN_PAIRS {
                drain(&mut exp32_lo, &mut exp32_hi, &mut exp64);
                since_drain = 0;
            }
        }
        drain(&mut exp32_lo, &mut exp32_hi, &mut exp64);
        let jc = blk * PACK_BLOCK_COLS;
        add_i64x4_lanes(&exp64, &mut expected[jc..jc + PACK_BLOCK_COLS]);
        let mut obs = [zero; 4];
        for (r, (&lo, &hi)) in acc_lo.iter().zip(acc_hi.iter()).enumerate() {
            retire_row::<true>(out_band.as_mut_ptr().add(r * n + jc), lo, hi, &mut obs);
        }
        add_i64x4_lanes(&obs, &mut observed[jc..jc + PACK_BLOCK_COLS]);
    }

    /// Widens the `i32` expected partials into the `i64` accumulator registers and
    /// resets them — the drain that keeps the fused expected exact at any depth.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn drain(exp32_lo: &mut __m256i, exp32_hi: &mut __m256i, exp64: &mut [__m256i; 4]) {
        exp64[0] = _mm256_add_epi64(
            exp64[0],
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(*exp32_lo)),
        );
        exp64[1] = _mm256_add_epi64(
            exp64[1],
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(*exp32_lo, 1)),
        );
        exp64[2] = _mm256_add_epi64(
            exp64[2],
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(*exp32_hi)),
        );
        exp64[3] = _mm256_add_epi64(
            exp64[3],
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(*exp32_hi, 1)),
        );
        *exp32_lo = _mm256_setzero_si256();
        *exp32_hi = _mm256_setzero_si256();
    }

    /// One 32-byte packed pair row → two `i16` pair registers in linear column order
    /// (lanes `(B[p][j], B[p+1][j])` for `j = 0..8` and `8..16`).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and `ptr..ptr+32` in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn load_pair(ptr: *const i8) -> (__m256i, __m256i) {
        let raw = _mm256_loadu_si256(ptr as *const __m256i);
        (
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(raw)),
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(raw, 1)),
        )
    }

    /// Adds `acc_lo`/`acc_hi` (linear column order) onto 16 output columns at `out_ptr`
    /// and, when `FUSED`, folds the finalised values into the observed-checksum
    /// registers.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and `out_ptr..out_ptr+16` in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn retire_row<const FUSED: bool>(
        out_ptr: *mut i32,
        acc_lo: __m256i,
        acc_hi: __m256i,
        obs: &mut [__m256i; 4],
    ) {
        let final0 = _mm256_add_epi32(_mm256_loadu_si256(out_ptr as *const __m256i), acc_lo);
        let final1 = _mm256_add_epi32(_mm256_loadu_si256(out_ptr.add(8) as *const __m256i), acc_hi);
        _mm256_storeu_si256(out_ptr as *mut __m256i, final0);
        _mm256_storeu_si256(out_ptr.add(8) as *mut __m256i, final1);
        if FUSED {
            obs[0] = _mm256_add_epi64(
                obs[0],
                _mm256_cvtepi32_epi64(_mm256_castsi256_si128(final0)),
            );
            obs[1] = _mm256_add_epi64(
                obs[1],
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256(final0, 1)),
            );
            obs[2] = _mm256_add_epi64(
                obs[2],
                _mm256_cvtepi32_epi64(_mm256_castsi256_si128(final1)),
            );
            obs[3] = _mm256_add_epi64(
                obs[3],
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256(final1, 1)),
            );
        }
    }

    /// Stores four `i64×4` registers and adds their lanes onto a 16-entry slice.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and `sums.len() == 16`.
    #[target_feature(enable = "avx2")]
    unsafe fn add_i64x4_lanes(regs: &[__m256i; 4], sums: &mut [i64]) {
        let mut lanes = [0i64; PACK_BLOCK_COLS];
        for (q, &vec) in regs.iter().enumerate() {
            _mm256_storeu_si256(lanes.as_mut_ptr().add(4 * q) as *mut __m256i, vec);
        }
        for (s, &v) in sums.iter_mut().zip(&lanes) {
            *s += v;
        }
    }

    /// A value pair broadcast as packed `i16` pairs for `vpmaddwd` (activations, or the
    /// `eᵀ·X` sums of the skinny kernel — both fit `i16` by construction).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn pair_weights(v0: i16, v1: i16) -> __m256i {
        let packed = ((v1 as u16 as u32) << 16) | (v0 as u16 as u32);
        _mm256_set1_epi32(packed as i32)
    }
}

/// The AVX-512 tier of the packed kernels: one 32-byte packed pair row widens into a full
/// 32-lane `i16` zmm register (`vpmovsxbw`), so a single `vpmaddwd` retires an entire
/// depth pair for all 16 columns — half the multiply count of the AVX2 tile, fed by plain
/// loads thanks to the pack-time interleaving. Requires AVX-512F (arithmetic/converts) +
/// AVX-512BW (`vpmaddwd` on zmm); only reachable when [`super::SimdTier::Avx512`] was
/// granted at construction. VNNI's `vpdpbusd` was considered and rejected: it consumes
/// depth **quads**, which conflicts with the pair interleaving the AVX2 tier shares —
/// reconstructing quads would reintroduce the per-GEMM shuffles packing exists to remove
/// (and its unsigned×signed form needs a `128·colsum` correction besides).
#[cfg(target_arch = "x86_64")]
mod packed_avx512 {
    use super::{
        packed_portable, MatI8, PackedMatI8, PACK_BLOCK_COLS, PACK_PAIR_BYTES, SIMD_TILE_ROWS,
    };
    use std::arch::x86_64::*;

    /// Packed-B microkernel over full 16-column blocks; a partial final block runs
    /// through the bit-identical portable packed kernel.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX-512F, AVX-512BW and AVX2.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    pub(super) unsafe fn run_rows(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        mut observed: Option<&mut [i64]>,
    ) {
        let n = pb.cols();
        let full_blocks = n / PACK_BLOCK_COLS;
        for blk in 0..full_blocks {
            let jc = blk * PACK_BLOCK_COLS;
            let obs = observed
                .as_deref_mut()
                .map(|o| &mut o[jc..jc + PACK_BLOCK_COLS]);
            col_block(a, pb, out_band, row_start, row_end, blk, obs);
        }
        if full_blocks < pb.blocks() {
            packed_portable::run_block(
                a,
                pb,
                out_band,
                row_start,
                row_end,
                full_blocks,
                &mut observed,
            );
        }
    }

    /// One full 16-column block over all rows of the band; the observed column sums live
    /// in two `i64×8` zmm registers across the entire row loop.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F/BW + AVX2 and that block `blk` is full-width.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn col_block(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        blk: usize,
        observed: Option<&mut [i64]>,
    ) {
        let mut obs = [_mm512_setzero_si512(); 2];
        let track = observed.is_some();
        let mut i = row_start;
        while i + SIMD_TILE_ROWS <= row_end {
            if track {
                tile::<SIMD_TILE_ROWS, true>(a, pb, out_band, row_start, i, blk, &mut obs);
            } else {
                tile::<SIMD_TILE_ROWS, false>(a, pb, out_band, row_start, i, blk, &mut obs);
            }
            i += SIMD_TILE_ROWS;
        }
        macro_rules! row_tail {
            ($r:literal) => {
                if track {
                    tile::<$r, true>(a, pb, out_band, row_start, i, blk, &mut obs)
                } else {
                    tile::<$r, false>(a, pb, out_band, row_start, i, blk, &mut obs)
                }
            };
        }
        match row_end - i {
            1 => row_tail!(1),
            2 => row_tail!(2),
            3 => row_tail!(3),
            _ => {}
        }
        if let Some(observed) = observed {
            add_i64x8_lanes(&obs, observed);
        }
    }

    /// An `R × 16` register tile: one `i32×16` zmm accumulator per row, one `vpmaddwd`
    /// per row per depth pair.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F/BW + AVX2, `i + R <= a.rows()` and block `blk`
    /// full-width.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn tile<const R: usize, const FUSED: bool>(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        row_start: usize,
        i: usize,
        blk: usize,
        obs: &mut [__m512i; 2],
    ) {
        let k = a.cols();
        let n = pb.cols();
        let pairs = pb.padded_k() / 2;
        let tiles = pb.tiles().as_ptr().add(blk * pb.block_stride());
        let mut acc = [_mm512_setzero_si512(); R];
        let a_rows: [&[i8]; R] = std::array::from_fn(|r| a.row(i + r));
        for p in 0..pairs {
            let pair_row = load_pair(tiles.add(p * PACK_PAIR_BYTES));
            let odd_tail = 2 * p + 1 >= k;
            for r in 0..R {
                let a0 = a_rows[r][2 * p] as i16;
                let a1 = if odd_tail {
                    0
                } else {
                    a_rows[r][2 * p + 1] as i16
                };
                acc[r] =
                    _mm512_add_epi32(acc[r], _mm512_madd_epi16(pair_row, pair_weights(a0, a1)));
            }
        }
        let jc = blk * PACK_BLOCK_COLS;
        for (r, &row_acc) in acc.iter().enumerate() {
            let band_row = (i + r - row_start) * n;
            retire_row::<FUSED>(out_band.as_mut_ptr().add(band_row + jc), row_acc, obs);
        }
    }

    /// The GEMV/skinny-M packed kernel at the AVX-512 tier; same structure and drain
    /// bound as the AVX2 version, with the expected partials in one `i32×16` zmm.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F/BW + AVX2 and `1 <= a.rows() <= 4`.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    pub(super) unsafe fn run_skinny(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        etx: &[i64],
        expected: &mut [i64],
        observed: &mut [i64],
    ) {
        let full_blocks = pb.cols() / PACK_BLOCK_COLS;
        for blk in 0..full_blocks {
            match a.rows() {
                1 => skinny_block::<1>(a, pb, out_band, blk, etx, expected, observed),
                2 => skinny_block::<2>(a, pb, out_band, blk, etx, expected, observed),
                3 => skinny_block::<3>(a, pb, out_band, blk, etx, expected, observed),
                _ => skinny_block::<4>(a, pb, out_band, blk, etx, expected, observed),
            }
        }
        if full_blocks < pb.blocks() {
            packed_portable::run_skinny_block(
                a,
                pb,
                out_band,
                full_blocks,
                etx,
                expected,
                observed,
            );
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX-512F/BW + AVX2, `a.rows() == R` and block `blk` full-width.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn skinny_block<const R: usize>(
        a: &MatI8,
        pb: &PackedMatI8,
        out_band: &mut [i32],
        blk: usize,
        etx: &[i64],
        expected: &mut [i64],
        observed: &mut [i64],
    ) {
        let k = a.cols();
        let n = pb.cols();
        let pairs = pb.padded_k() / 2;
        let tiles = pb.tiles().as_ptr().add(blk * pb.block_stride());
        let mut acc = [_mm512_setzero_si512(); R];
        let mut exp32 = _mm512_setzero_si512();
        let mut exp64 = [_mm512_setzero_si512(); 2];
        let a_rows: [&[i8]; R] = std::array::from_fn(|r| a.row(r));
        let mut since_drain = 0usize;
        for p in 0..pairs {
            let pair_row = load_pair(tiles.add(p * PACK_PAIR_BYTES));
            let odd_tail = 2 * p + 1 >= k;
            for r in 0..R {
                let a0 = a_rows[r][2 * p] as i16;
                let a1 = if odd_tail {
                    0
                } else {
                    a_rows[r][2 * p + 1] as i16
                };
                acc[r] =
                    _mm512_add_epi32(acc[r], _mm512_madd_epi16(pair_row, pair_weights(a0, a1)));
            }
            let e0 = etx[2 * p] as i16;
            let e1 = if odd_tail { 0 } else { etx[2 * p + 1] as i16 };
            exp32 = _mm512_add_epi32(exp32, _mm512_madd_epi16(pair_row, pair_weights(e0, e1)));
            since_drain += 1;
            if since_drain == packed_portable::DRAIN_PAIRS {
                drain(&mut exp32, &mut exp64);
                since_drain = 0;
            }
        }
        drain(&mut exp32, &mut exp64);
        let jc = blk * PACK_BLOCK_COLS;
        add_i64x8_lanes(&exp64, &mut expected[jc..jc + PACK_BLOCK_COLS]);
        let mut obs = [_mm512_setzero_si512(); 2];
        for (r, &row_acc) in acc.iter().enumerate() {
            retire_row::<true>(out_band.as_mut_ptr().add(r * n + jc), row_acc, &mut obs);
        }
        add_i64x8_lanes(&obs, &mut observed[jc..jc + PACK_BLOCK_COLS]);
    }

    /// Widens the `i32` expected partials into the `i64` accumulators and resets them.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn drain(exp32: &mut __m512i, exp64: &mut [__m512i; 2]) {
        exp64[0] = _mm512_add_epi64(
            exp64[0],
            _mm512_cvtepi32_epi64(_mm512_castsi512_si256(*exp32)),
        );
        exp64[1] = _mm512_add_epi64(
            exp64[1],
            _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(*exp32, 1)),
        );
        *exp32 = _mm512_setzero_si512();
    }

    /// One 32-byte packed pair row → 32 `i16` lanes in one zmm register, in linear
    /// column-pair order.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F/BW + AVX2 and `ptr..ptr+32` in bounds.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn load_pair(ptr: *const i8) -> __m512i {
        _mm512_cvtepi8_epi16(_mm256_loadu_si256(ptr as *const __m256i))
    }

    /// Adds a finalised `i32×16` accumulator onto 16 output columns at `out_ptr` and,
    /// when `FUSED`, folds the stored values into the observed-checksum registers.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F and `out_ptr..out_ptr+16` in bounds.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn retire_row<const FUSED: bool>(
        out_ptr: *mut i32,
        acc: __m512i,
        obs: &mut [__m512i; 2],
    ) {
        let finalv = _mm512_add_epi32(_mm512_loadu_epi32(out_ptr), acc);
        _mm512_storeu_epi32(out_ptr, finalv);
        if FUSED {
            obs[0] = _mm512_add_epi64(
                obs[0],
                _mm512_cvtepi32_epi64(_mm512_castsi512_si256(finalv)),
            );
            obs[1] = _mm512_add_epi64(
                obs[1],
                _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(finalv, 1)),
            );
        }
    }

    /// Stores two `i64×8` registers and adds their lanes onto a 16-entry slice.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F and `sums.len() == 16`.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn add_i64x8_lanes(regs: &[__m512i; 2], sums: &mut [i64]) {
        let mut lanes = [0i64; PACK_BLOCK_COLS];
        _mm512_storeu_epi64(lanes.as_mut_ptr(), regs[0]);
        _mm512_storeu_epi64(lanes.as_mut_ptr().add(8), regs[1]);
        for (s, &v) in sums.iter_mut().zip(&lanes) {
            *s += v;
        }
    }

    /// A value pair broadcast as packed `i16` pairs across all 16 `i32` lanes.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn pair_weights(v0: i16, v1: i16) -> __m512i {
        let packed = ((v1 as u16 as u32) << 16) | (v0 as u16 as u32);
        _mm512_set1_epi32(packed as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReferenceEngine;
    use crate::rng;
    use rand::Rng;

    fn random_pair(seed: u64, m: usize, k: usize, n: usize) -> (MatI8, MatI8) {
        let mut r = rng::seeded(seed);
        let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
        let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
        (a, b)
    }

    fn simd_engines() -> Vec<Box<dyn GemmEngine>> {
        vec![
            Box::new(SimdEngine::new()),
            Box::new(SimdEngine::portable()),
            Box::new(SimdParallelEngine::new()),
            Box::new(SimdParallelEngine::portable()),
            Box::new(SimdParallelEngine::with_threads(3)),
        ]
    }

    #[test]
    fn simd_matches_reference_across_ragged_shapes() {
        // Shapes chosen to hit every dispatch edge: depth tails (odd k), column tails
        // (n mod 16), row tails (m mod 4), degenerate vectors, and a parallel-size GEMM.
        for (seed, (m, k, n)) in [
            (1, (1, 1, 1)),
            (2, (4, 2, 16)),
            (3, (5, 3, 17)),
            (4, (7, 65, 31)),
            (5, (3, 16, 48)),
            (6, (1, 301, 1)),
            (7, (130, 64, 96)),
        ]
        .into_iter()
        {
            let (a, b) = random_pair(seed, m, k, n);
            let oracle = ReferenceEngine
                .gemm_i8_checksummed_two_pass(&a, &b)
                .unwrap();
            for engine in simd_engines() {
                let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
                assert_eq!(fused.acc(), oracle.acc(), "{} {m}x{k}x{n}", engine.name());
                assert_eq!(
                    fused.expected(),
                    oracle.expected(),
                    "{} {m}x{k}x{n}",
                    engine.name()
                );
                assert_eq!(
                    fused.observed(),
                    oracle.observed(),
                    "{} {m}x{k}x{n}",
                    engine.name()
                );
                assert_eq!(
                    engine.gemm_i8(&a, &b).unwrap(),
                    *oracle.acc(),
                    "{} plain {m}x{k}x{n}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn simd_is_exact_at_the_int8_rails() {
        // The i8::MIN × i8::MIN corner is exactly where the pmaddubsw offset trick
        // saturates; the widening kernel must stay exact there.
        for &(m, k, n) in &[(4, 64, 32), (3, 33, 17), (1, 127, 16)] {
            for fill in [(-128i8, -128i8), (127, 127), (-128, 127), (127, -128)] {
                let a = MatI8::filled(m, k, fill.0);
                let b = MatI8::filled(k, n, fill.1);
                let oracle = ReferenceEngine
                    .gemm_i8_checksummed_two_pass(&a, &b)
                    .unwrap();
                for engine in simd_engines() {
                    let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
                    assert_eq!(fused.acc(), oracle.acc(), "{} {fill:?}", engine.name());
                    assert_eq!(fused.expected(), oracle.expected(), "{}", engine.name());
                    assert_eq!(fused.observed(), oracle.observed(), "{}", engine.name());
                }
            }
        }
    }

    #[test]
    fn into_paths_accumulate_nothing_stale_from_reused_destinations() {
        let (a1, b1) = random_pair(40, 9, 20, 33);
        let (a2, b2) = random_pair(41, 3, 7, 5);
        for engine in simd_engines() {
            let mut out = MatI32::zeros(0, 0);
            let mut dest = ChecksummedGemm::empty();
            let mut etw = Vec::new();
            // Large shape first, then a smaller one into the same buffers: any stale
            // carry-over (missed reset) shows up immediately.
            engine.gemm_i8_into(&a1, &b1, &mut out).unwrap();
            engine.gemm_i8_into(&a2, &b2, &mut out).unwrap();
            assert_eq!(
                out,
                ReferenceEngine.gemm_i8(&a2, &b2).unwrap(),
                "{}",
                engine.name()
            );
            engine
                .gemm_i8_checksummed_into(&a1, &b1, &mut dest, &mut etw)
                .unwrap();
            engine
                .gemm_i8_checksummed_into(&a2, &b2, &mut dest, &mut etw)
                .unwrap();
            let oracle = ReferenceEngine
                .gemm_i8_checksummed_two_pass(&a2, &b2)
                .unwrap();
            assert_eq!(dest.acc(), oracle.acc(), "{}", engine.name());
            assert_eq!(dest.expected(), oracle.expected(), "{}", engine.name());
            assert_eq!(dest.observed(), oracle.observed(), "{}", engine.name());
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = MatI8::zeros(2, 3);
        let b = MatI8::zeros(4, 2);
        for engine in simd_engines() {
            assert!(engine.gemm_i8(&a, &b).is_err(), "{}", engine.name());
            assert!(
                engine.gemm_i8_checksummed(&a, &b).is_err(),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn dispatch_label_is_consistent_with_detection() {
        // Can't mutate the environment safely in-process; just pin the invariants.
        let engine = SimdEngine::new();
        assert_eq!(engine.is_accelerated(), simd_accelerated());
        assert!(!SimdEngine::portable().is_accelerated());
        assert!(!SimdParallelEngine::portable().is_accelerated());
        assert!(!simd_dispatch_label().is_empty());
    }

    #[test]
    fn with_tier_clamps_to_host_support() {
        assert_eq!(SimdEngine::portable().tier(), SimdTier::Portable);
        assert_eq!(
            SimdEngine::with_tier(SimdTier::Portable).tier(),
            SimdTier::Portable
        );
        assert!(SimdEngine::with_tier(SimdTier::Avx512).tier() <= SimdTier::detect());
        assert_eq!(SimdEngine::new().tier(), SimdTier::detect());
        assert!(SimdTier::Portable < SimdTier::Avx2 && SimdTier::Avx2 < SimdTier::Avx512);
    }

    /// Every tier the host grants, by name; unsupported tiers are skipped (the engine
    /// clamps them down to an already-listed tier).
    fn tiered_engines() -> Vec<(String, Box<dyn GemmEngine>)> {
        let mut engines: Vec<(String, Box<dyn GemmEngine>)> = vec![
            ("simd-portable".into(), Box::new(SimdEngine::portable())),
            (
                "parallel-portable".into(),
                Box::new(SimdParallelEngine::portable()),
            ),
            (
                "parallel-auto".into(),
                Box::new(SimdParallelEngine::with_threads(3)),
            ),
        ];
        for tier in [SimdTier::Avx2, SimdTier::Avx512] {
            let engine = SimdEngine::with_tier(tier);
            if engine.tier() == tier {
                engines.push((format!("simd-{}", tier.label()), Box::new(engine)));
            }
        }
        engines
    }

    #[test]
    fn packed_paths_match_reference_across_tiers_and_shapes() {
        // Skinny shapes (m ≤ 4) exercise the fused-expected GEMV kernel, m ≥ 5 the
        // generic packed kernel, odd k the zero-padded final pair, ragged n the
        // portable partial-block handler, and the deep shape the i32→i64 expected
        // drain (k/2 > DRAIN_PAIRS needs k > 16384).
        for (seed, (m, k, n)) in [
            (11, (1, 1, 1)),
            (12, (1, 64, 48)),
            (13, (2, 63, 17)),
            (14, (4, 33, 16)),
            (15, (5, 48, 31)),
            (16, (9, 7, 130)),
            (17, (130, 64, 96)),
            (18, (2, 16500, 16)),
        ]
        .into_iter()
        {
            let (a, b) = random_pair(seed, m, k, n);
            let pb = PackedMatI8::pack(&b);
            let oracle = ReferenceEngine
                .gemm_i8_checksummed_two_pass(&a, &b)
                .unwrap();
            for (name, engine) in tiered_engines() {
                let mut out = MatI32::zeros(0, 0);
                engine.gemm_i8_packed_into(&a, &pb, &mut out).unwrap();
                assert_eq!(&out, oracle.acc(), "{name} {m}x{k}x{n}");
                let mut dest = ChecksummedGemm::empty();
                let mut etw = Vec::new();
                engine
                    .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
                    .unwrap();
                assert_eq!(dest.acc(), oracle.acc(), "{name} {m}x{k}x{n}");
                assert_eq!(dest.expected(), oracle.expected(), "{name} {m}x{k}x{n}");
                assert_eq!(dest.observed(), oracle.observed(), "{name} {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn packed_shape_mismatch_is_rejected() {
        let a = MatI8::zeros(2, 3);
        let pb = PackedMatI8::pack(&MatI8::zeros(4, 2));
        for (name, engine) in tiered_engines() {
            let mut out = MatI32::zeros(0, 0);
            assert!(
                engine.gemm_i8_packed_into(&a, &pb, &mut out).is_err(),
                "{name}"
            );
            let mut dest = ChecksummedGemm::empty();
            let mut etw = Vec::new();
            assert!(
                engine
                    .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
                    .is_err(),
                "{name}"
            );
        }
    }
}
