//! SIMD i8 GEMM microkernel backend with fused ABFT checksums and runtime dispatch.
//!
//! [`SimdEngine`] is the fastest single-thread backend in the workspace: an x86-64 AVX2
//! microkernel built on `core::arch` intrinsics, selected at **runtime** via
//! `is_x86_feature_detected!` so one binary runs everywhere — hosts without AVX2 (or runs
//! with the `REALM_FORCE_SCALAR=1` override) fall back to a portable unrolled-chunk kernel
//! with the identical loop structure. [`SimdParallelEngine`] shards the same microkernel
//! over [`crate::engine::ParallelEngine`]'s work-stealing row chunks, so batched prefill
//! and serving-scale GEMMs get the SIMD win on every core.
//!
//! # The microkernel
//!
//! The register tile is **4 rows × 16 columns**, accumulated in eight `i32×8` vector
//! registers across the full depth `k`. The depth dimension advances two rows of `B` at a
//! time (a *dot-product pair*):
//!
//! 1. 16 `i8` of `B[p]` and `B[p+1]` are widened to `i16` (`vpmovsxbw`) and interleaved
//!    (`vpunpcklwd`/`vpunpckhwd`) into column pairs `(B[p][j], B[p+1][j])`;
//! 2. the matching activation pair `(A[i][p], A[i][p+1])` is broadcast as a packed `i16`
//!    pair;
//! 3. `vpmaddwd` multiplies the `i16` pairs and adds each pair in `i32`:
//!    `A[i][p]·B[p][j] + A[i][p+1]·B[p+1][j]` — **exact** for every `i8` input, since each
//!    product is at most `128² = 16384` and the pair sum at most `2¹⁵`, far inside `i32`.
//!
//! An odd depth tail pairs the final `B` row with a zero vector, so `k` need not be a
//! multiple of the SIMD width; column tails (`n mod 16`) run through the portable kernel,
//! which is bit-identical (integer accumulation is order-invariant).
//!
//! ## Why `vpmaddwd` and not the `vpmaddubsw` offset trick
//!
//! The classic i8 dot-product idiom multiplies **unsigned×signed** bytes with `vpmaddubsw`
//! after offsetting one operand by +128 and correcting afterwards. That idiom is *not*
//! exact over the full i8 range: `vpmaddubsw` saturates its `i16` pair sum, and with an
//! offset operand at 255 against weights at `i8::MIN` the true pair sum (−65280) is far
//! below `i16::MIN`, so saturation fires and the +128 correction cannot restore the lost
//! bits. Statistical ABFT admits no tolerance on the INT32 accumulator, so this backend
//! widens to `i16` first and pays one extra shuffle per `B` pair — bit-exact for
//! `i8::MIN` (and everything else) by construction, which `tests/backend_parity.rs` and
//! the adversarial suite in `tests/properties.rs` pin down.
//!
//! # Fused checksums, in-register
//!
//! The observed ABFT checksum `eᵀ·Y` is reduced **from the same registers that produced
//! `Y`**: as each row's final 16-column tile leaves its accumulator registers, its `i32`
//! lanes are widened (`vpmovsxdq`) and added onto four `i64×4` column-sum registers that
//! persist across the whole row loop of the column block — no second pass over the output.
//! The operand-side checksum `(eᵀ·W)·X` cannot ride the accumulator registers (its `i64`
//! weights exceed what AVX2 can multiply lane-wise), so it runs as a single row-major
//! streaming pass over `B` — the layout the scalar i64 multiply-add vectorizes and
//! prefetches best at, measurably faster than stripe-local walks on tall decode-shape
//! weights.

use crate::engine::{
    accumulate_expected_panel, check_compatible, checksummed_into_single, sharded_checksummed_into,
    sharded_gemm_i8_into, ChecksummedGemm, FusedChecksums, GemmEngine, RowKernel,
};
use crate::{MatI32, MatI8, Result};

/// Width (output columns) of the SIMD register tile.
pub const SIMD_TILE_COLS: usize = 16;
/// Height (output rows) of the SIMD register tile.
pub const SIMD_TILE_ROWS: usize = 4;

/// Environment variable that forces the portable fallback kernel even when the CPU
/// supports the AVX2 microkernel. Any non-empty value other than `0` counts as set; CI
/// uses it to keep both dispatch paths green on AVX2 runners.
pub const FORCE_SCALAR_ENV: &str = "REALM_FORCE_SCALAR";

fn force_scalar() -> bool {
    std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != "0")
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// Returns `true` when the accelerated microkernel will be dispatched: the host CPU
/// reports AVX2 and [`FORCE_SCALAR_ENV`] is not set.
pub fn simd_accelerated() -> bool {
    !force_scalar() && avx2_available()
}

/// Human-readable description of what the runtime dispatch selected, for benchmark and
/// example output (bench numbers are uninterpretable without knowing which path ran).
pub fn simd_dispatch_label() -> &'static str {
    if force_scalar() {
        "portable (REALM_FORCE_SCALAR set)"
    } else if avx2_available() {
        "avx2"
    } else {
        "portable (no AVX2 on this host)"
    }
}

/// The SIMD microkernel backend: AVX2 when the CPU supports it, portable otherwise.
///
/// Dispatch is decided once at construction ([`SimdEngine::new`]) and carried by the
/// engine value, so the per-GEMM hot path never re-reads the environment or CPUID.
/// Both paths are bit-identical to [`crate::engine::ReferenceEngine`] on accumulators and
/// fused checksums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdEngine {
    accelerated: bool,
}

impl SimdEngine {
    /// A SIMD engine using the best kernel the host supports (runtime detection).
    pub fn new() -> Self {
        Self {
            accelerated: simd_accelerated(),
        }
    }

    /// A SIMD engine pinned to the portable fallback kernel, regardless of host support.
    ///
    /// Used by the differential tests so the fallback path is exercised even on AVX2
    /// hosts; equivalent to constructing under [`FORCE_SCALAR_ENV`].
    pub fn portable() -> Self {
        Self { accelerated: false }
    }

    /// Whether this engine dispatches the AVX2 microkernel (`false` = portable fallback).
    pub fn is_accelerated(&self) -> bool {
        self.accelerated
    }

    /// Microkernel pass over a contiguous row range `[row_start, row_end)` of `a`,
    /// accumulating into `out_band` (the matching band of the output, see
    /// [`crate::engine::BlockedEngine::run_rows`] for the band contract). When `fused` is
    /// present the checksum reductions ride the pass: `eᵀ·Y` from the accumulator
    /// registers as each tile is finalised, `(eᵀ·W)·X` from the cache-hot `B` stripes.
    pub(crate) fn run_rows(
        &self,
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: Option<FusedChecksums<'_>>,
    ) {
        let mut fused = fused;
        #[cfg(target_arch = "x86_64")]
        if self.accelerated {
            // SAFETY: `accelerated` is only set when AVX2 was detected at construction.
            unsafe { avx2::run_rows(a, b, out_band, row_start, row_end, &mut fused) };
            return;
        }
        portable::run_cols(a, b, out_band, row_start, row_end, 0, b.cols(), &mut fused);
    }
}

impl Default for SimdEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl GemmEngine for SimdEngine {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn gemm_i8(&self, a: &MatI8, b: &MatI8) -> Result<MatI32> {
        let mut out = MatI32::zeros(0, 0);
        self.gemm_i8_into(a, b, &mut out)?;
        Ok(out)
    }

    fn gemm_i8_into(&self, a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
        check_compatible("SimdEngine::gemm_i8", a, b)?;
        out.resize_reset(a.rows(), b.cols());
        self.run_rows(a, b, out.as_mut_slice(), 0, a.rows(), None);
        Ok(())
    }

    fn gemm_i8_checksummed(&self, a: &MatI8, b: &MatI8) -> Result<ChecksummedGemm> {
        let mut dest = ChecksummedGemm::empty();
        let mut etw = Vec::new();
        self.gemm_i8_checksummed_into(a, b, &mut dest, &mut etw)?;
        Ok(dest)
    }

    fn gemm_i8_checksummed_into(
        &self,
        a: &MatI8,
        b: &MatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        checksummed_into_single(
            self,
            "SimdEngine::gemm_i8_checksummed",
            a,
            b,
            dest,
            etw_scratch,
        )
    }
}

impl RowKernel for SimdEngine {
    fn run_rows(
        &self,
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: Option<FusedChecksums<'_>>,
    ) {
        SimdEngine::run_rows(self, a, b, out_band, row_start, row_end, fused)
    }
}

/// The SIMD microkernel sharded over work-stealing row chunks — the composition of
/// [`SimdEngine`] with [`crate::engine::ParallelEngine`]'s scheduling, and the
/// process-wide default on AVX2 hosts (see [`crate::engine::EngineKind::auto`]).
///
/// Small GEMMs (below [`crate::engine::PARALLEL_MIN_MACS`]) run the microkernel inline on the calling
/// thread, so GEMV-like decode shapes stay on the allocation-free single-thread path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdParallelEngine {
    inner: SimdEngine,
    /// Explicit worker count; `None` means one per available core.
    pub threads: Option<usize>,
}

impl SimdParallelEngine {
    /// A parallel SIMD engine with runtime kernel detection, one worker per core.
    pub fn new() -> Self {
        Self {
            inner: SimdEngine::new(),
            threads: None,
        }
    }

    /// A parallel SIMD engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            inner: SimdEngine::new(),
            threads: Some(threads.max(1)),
        }
    }

    /// A parallel engine pinned to the portable fallback kernel (for differential tests).
    pub fn portable() -> Self {
        Self {
            inner: SimdEngine::portable(),
            threads: None,
        }
    }

    /// Whether the sharded microkernel is the AVX2 path (`false` = portable fallback).
    pub fn is_accelerated(&self) -> bool {
        self.inner.is_accelerated()
    }
}

impl Default for SimdParallelEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl GemmEngine for SimdParallelEngine {
    fn name(&self) -> &'static str {
        "simd_parallel"
    }

    fn gemm_i8(&self, a: &MatI8, b: &MatI8) -> Result<MatI32> {
        let mut out = MatI32::zeros(0, 0);
        self.gemm_i8_into(a, b, &mut out)?;
        Ok(out)
    }

    fn gemm_i8_into(&self, a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
        sharded_gemm_i8_into(
            &self.inner,
            self.threads,
            "SimdParallelEngine::gemm_i8",
            a,
            b,
            out,
        )
    }

    fn gemm_i8_checksummed(&self, a: &MatI8, b: &MatI8) -> Result<ChecksummedGemm> {
        let mut dest = ChecksummedGemm::empty();
        let mut etw = Vec::new();
        self.gemm_i8_checksummed_into(a, b, &mut dest, &mut etw)?;
        Ok(dest)
    }

    fn gemm_i8_checksummed_into(
        &self,
        a: &MatI8,
        b: &MatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        sharded_checksummed_into(
            &self.inner,
            self.threads,
            "SimdParallelEngine::gemm_i8_checksummed",
            a,
            b,
            dest,
            etw_scratch,
        )
    }
}

/// Portable unrolled-chunk fallback: the same 16-column blocks and depth-pair structure as
/// the AVX2 microkernel, in scalar `i32` arithmetic over a stack tile — no heap scratch,
/// so the zero-allocation decode contract holds on every host. The compiler's
/// autovectorizer gets clean slice-to-slice loops; even fully scalar the results are
/// bit-identical (exact integer accumulation is order-invariant).
mod portable {
    use super::{accumulate_expected_panel, FusedChecksums, MatI8, SIMD_TILE_COLS};

    /// Column-chunked kernel over rows `[row_start, row_end)` and columns
    /// `[col_start, col_end)`; also serves as the column-tail handler of the AVX2 path.
    #[allow(clippy::too_many_arguments)] // mirrors the band contract of `run_rows` kernels
    pub(super) fn run_cols(
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        col_start: usize,
        col_end: usize,
        fused: &mut Option<FusedChecksums<'_>>,
    ) {
        let k = a.cols();
        let n = b.cols();
        // Operand-side checksum over the whole column range in one row-major pass (see the
        // AVX2 kernel for why stripe-local walks are cache-hostile here).
        if let Some(FusedChecksums {
            etw,
            expected: Some(expected),
            ..
        }) = fused
        {
            accumulate_expected_panel(b, etw, expected, (0, k), (col_start, col_end));
        }
        let mut jc = col_start;
        while jc < col_end {
            let jc_end = (jc + SIMD_TILE_COLS).min(col_end);
            let width = jc_end - jc;
            for i in row_start..row_end {
                let a_row = a.row(i);
                let mut tile = [0i32; SIMD_TILE_COLS];
                let tile = &mut tile[..width];
                let mut p = 0;
                // Depth pairs, mirroring the `vpmaddwd` pairing of the AVX2 kernel.
                while p + 2 <= k {
                    let a0 = a_row[p] as i32;
                    let a1 = a_row[p + 1] as i32;
                    if (a0 | a1) != 0 {
                        let b0 = &b.row(p)[jc..jc_end];
                        let b1 = &b.row(p + 1)[jc..jc_end];
                        for ((t, &v0), &v1) in tile.iter_mut().zip(b0).zip(b1) {
                            *t += a0 * v0 as i32 + a1 * v1 as i32;
                        }
                    }
                    p += 2;
                }
                // Odd depth tail (the AVX2 kernel pairs it with a zero vector).
                if p < k {
                    let a0 = a_row[p] as i32;
                    if a0 != 0 {
                        for (t, &v0) in tile.iter_mut().zip(&b.row(p)[jc..jc_end]) {
                            *t += a0 * v0 as i32;
                        }
                    }
                }
                let band_row = (i - row_start) * n;
                let out_seg = &mut out_band[band_row + jc..band_row + jc_end];
                for (o, &t) in out_seg.iter_mut().zip(tile.iter()) {
                    *o += t;
                }
                // Output-side checksum from the freshly finalised tile values.
                if let Some(FusedChecksums { observed, .. }) = fused {
                    for (s, &v) in observed[jc..jc_end].iter_mut().zip(out_seg.iter()) {
                        *s += v as i64;
                    }
                }
            }
            jc = jc_end;
        }
    }
}

/// The AVX2 microkernel. Every function carries `#[target_feature(enable = "avx2")]` and
/// is only reachable through [`SimdEngine::run_rows`]'s detection-guarded dispatch.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{
        accumulate_expected_panel, portable, FusedChecksums, MatI8, SIMD_TILE_COLS, SIMD_TILE_ROWS,
    };
    use std::arch::x86_64::*;

    /// SIMD-width microkernel over full 16-column blocks; the `n mod 16` column tail and
    /// its checksum shares run through the bit-identical portable kernel.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_rows(
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: &mut Option<FusedChecksums<'_>>,
    ) {
        let k = a.cols();
        let n = b.cols();
        let n_simd = n - n % SIMD_TILE_COLS;
        // Operand-side checksum `(eᵀ·W)·X` over the SIMD-width columns, as one row-major
        // streaming pass over `B`. Unlike the output side this reduction cannot ride the
        // accumulator registers (AVX2 has no 64-bit lane multiply and `eᵀ·W` weights
        // exceed i32), and walking it in 16-column stripes re-streams `B` with a
        // cache-hostile access pattern — full contiguous rows are what the i64
        // multiply-add vectorizes and prefetches best at.
        if let Some(FusedChecksums {
            etw,
            expected: Some(expected),
            ..
        }) = fused
        {
            accumulate_expected_panel(b, etw, expected, (0, k), (0, n_simd));
        }
        let mut jc = 0;
        while jc < n_simd {
            let observed = fused
                .as_mut()
                .map(|f| &mut f.observed[jc..jc + SIMD_TILE_COLS]);
            col_block(a, b, out_band, row_start, row_end, jc, observed);
            jc += SIMD_TILE_COLS;
        }
        if n_simd < n {
            portable::run_cols(a, b, out_band, row_start, row_end, n_simd, n, fused);
        }
    }

    /// One 16-column block over all rows of the band. The observed-checksum column sums
    /// live in four `i64×4` registers across the entire row loop and are added onto
    /// `observed` exactly once at the end — the output-side checksum never re-reads `Y`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and `jc + 16 <= b.cols()`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)] // mirrors the band contract of `run_rows` kernels
    unsafe fn col_block(
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        jc: usize,
        observed: Option<&mut [i64]>,
    ) {
        let mut obs = [_mm256_setzero_si256(); 4];
        let track = observed.is_some();
        let mut i = row_start;
        while i + SIMD_TILE_ROWS <= row_end {
            if track {
                tile::<SIMD_TILE_ROWS, true>(a, b, out_band, row_start, i, jc, &mut obs);
            } else {
                tile::<SIMD_TILE_ROWS, false>(a, b, out_band, row_start, i, jc, &mut obs);
            }
            i += SIMD_TILE_ROWS;
        }
        macro_rules! row_tail {
            ($r:literal) => {
                if track {
                    tile::<$r, true>(a, b, out_band, row_start, i, jc, &mut obs)
                } else {
                    tile::<$r, false>(a, b, out_band, row_start, i, jc, &mut obs)
                }
            };
        }
        match row_end - i {
            1 => row_tail!(1),
            2 => row_tail!(2),
            3 => row_tail!(3),
            _ => {}
        }
        if let Some(observed) = observed {
            let mut lanes = [0i64; SIMD_TILE_COLS];
            for (q, &vec) in obs.iter().enumerate() {
                _mm256_storeu_si256(lanes.as_mut_ptr().add(4 * q) as *mut __m256i, vec);
            }
            for (s, &v) in observed.iter_mut().zip(&lanes) {
                *s += v;
            }
        }
    }

    /// An `R × 16` register tile accumulated over the full depth in eight (at `R = 4`)
    /// `i32×8` registers, two depth steps per `vpmaddwd`. When `FUSED`, each row's final
    /// tile is widened lane-wise (`vpmovsxdq`) into the block's observed-checksum
    /// registers before the accumulators are retired — the "reduce from the same
    /// registers" half of the fused-checksum contract.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2, `i + R <= a.rows()` and `jc + 16 <= b.cols()`.
    #[target_feature(enable = "avx2")]
    unsafe fn tile<const R: usize, const FUSED: bool>(
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        i: usize,
        jc: usize,
        obs: &mut [__m256i; 4],
    ) {
        let k = a.cols();
        let n = b.cols();
        let zero = _mm256_setzero_si256();
        let mut acc_lo = [zero; R];
        let mut acc_hi = [zero; R];
        let a_rows: [&[i8]; R] = std::array::from_fn(|r| a.row(i + r));
        let mut p = 0;
        while p + 2 <= k {
            // Widen two B rows to i16 and interleave into (B[p][j], B[p+1][j]) pairs.
            // The unpacks stay within 128-bit lanes, so the accumulator lanes carry the
            // columns in the fixed order {0-3, 8-11} / {4-7, 12-15}; one cross-lane
            // permute at retirement restores linear order.
            let b0 = load_extend(b.row(p).as_ptr().add(jc));
            let b1 = load_extend(b.row(p + 1).as_ptr().add(jc));
            let pairs_lo = _mm256_unpacklo_epi16(b0, b1);
            let pairs_hi = _mm256_unpackhi_epi16(b0, b1);
            for r in 0..R {
                let w = pair_weights(a_rows[r][p], a_rows[r][p + 1]);
                acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(pairs_lo, w));
                acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(pairs_hi, w));
            }
            p += 2;
        }
        if p < k {
            // Odd depth tail: pair the last B row with zeros so the same madd runs.
            let b0 = load_extend(b.row(p).as_ptr().add(jc));
            let pairs_lo = _mm256_unpacklo_epi16(b0, zero);
            let pairs_hi = _mm256_unpackhi_epi16(b0, zero);
            for r in 0..R {
                let w = pair_weights(a_rows[r][p], 0);
                acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(pairs_lo, w));
                acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(pairs_hi, w));
            }
        }
        for r in 0..R {
            // Restore linear column order: acc_lo = {0-3 | 8-11}, acc_hi = {4-7 | 12-15}.
            let res0 = _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20);
            let res1 = _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31);
            let band_row = (i + r - row_start) * n;
            let out_ptr = out_band.as_mut_ptr().add(band_row + jc);
            let final0 = _mm256_add_epi32(_mm256_loadu_si256(out_ptr as *const __m256i), res0);
            let final1 =
                _mm256_add_epi32(_mm256_loadu_si256(out_ptr.add(8) as *const __m256i), res1);
            _mm256_storeu_si256(out_ptr as *mut __m256i, final0);
            _mm256_storeu_si256(out_ptr.add(8) as *mut __m256i, final1);
            if FUSED {
                // eᵀ·Y share of this row, straight from the retiring registers.
                obs[0] = _mm256_add_epi64(
                    obs[0],
                    _mm256_cvtepi32_epi64(_mm256_castsi256_si128(final0)),
                );
                obs[1] = _mm256_add_epi64(
                    obs[1],
                    _mm256_cvtepi32_epi64(_mm256_extracti128_si256(final0, 1)),
                );
                obs[2] = _mm256_add_epi64(
                    obs[2],
                    _mm256_cvtepi32_epi64(_mm256_castsi256_si128(final1)),
                );
                obs[3] = _mm256_add_epi64(
                    obs[3],
                    _mm256_cvtepi32_epi64(_mm256_extracti128_si256(final1, 1)),
                );
            }
        }
    }

    /// 16 `i8` loaded and sign-extended to 16 `i16` lanes.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and that `ptr..ptr+16` is in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn load_extend(ptr: *const i8) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(ptr as *const __m128i))
    }

    /// The activation pair `(a0, a1)` broadcast as packed `i16` pairs: one `vpmaddwd`
    /// against an interleaved B-pair register yields `a0·B[p][j] + a1·B[p+1][j]` per lane.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn pair_weights(a0: i8, a1: i8) -> __m256i {
        let packed = ((a1 as i16 as u16 as u32) << 16) | (a0 as i16 as u16 as u32);
        _mm256_set1_epi32(packed as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReferenceEngine;
    use crate::rng;
    use rand::Rng;

    fn random_pair(seed: u64, m: usize, k: usize, n: usize) -> (MatI8, MatI8) {
        let mut r = rng::seeded(seed);
        let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
        let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
        (a, b)
    }

    fn simd_engines() -> Vec<Box<dyn GemmEngine>> {
        vec![
            Box::new(SimdEngine::new()),
            Box::new(SimdEngine::portable()),
            Box::new(SimdParallelEngine::new()),
            Box::new(SimdParallelEngine::portable()),
            Box::new(SimdParallelEngine::with_threads(3)),
        ]
    }

    #[test]
    fn simd_matches_reference_across_ragged_shapes() {
        // Shapes chosen to hit every dispatch edge: depth tails (odd k), column tails
        // (n mod 16), row tails (m mod 4), degenerate vectors, and a parallel-size GEMM.
        for (seed, (m, k, n)) in [
            (1, (1, 1, 1)),
            (2, (4, 2, 16)),
            (3, (5, 3, 17)),
            (4, (7, 65, 31)),
            (5, (3, 16, 48)),
            (6, (1, 301, 1)),
            (7, (130, 64, 96)),
        ]
        .into_iter()
        {
            let (a, b) = random_pair(seed, m, k, n);
            let oracle = ReferenceEngine
                .gemm_i8_checksummed_two_pass(&a, &b)
                .unwrap();
            for engine in simd_engines() {
                let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
                assert_eq!(fused.acc(), oracle.acc(), "{} {m}x{k}x{n}", engine.name());
                assert_eq!(
                    fused.expected(),
                    oracle.expected(),
                    "{} {m}x{k}x{n}",
                    engine.name()
                );
                assert_eq!(
                    fused.observed(),
                    oracle.observed(),
                    "{} {m}x{k}x{n}",
                    engine.name()
                );
                assert_eq!(
                    engine.gemm_i8(&a, &b).unwrap(),
                    *oracle.acc(),
                    "{} plain {m}x{k}x{n}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn simd_is_exact_at_the_int8_rails() {
        // The i8::MIN × i8::MIN corner is exactly where the pmaddubsw offset trick
        // saturates; the widening kernel must stay exact there.
        for &(m, k, n) in &[(4, 64, 32), (3, 33, 17), (1, 127, 16)] {
            for fill in [(-128i8, -128i8), (127, 127), (-128, 127), (127, -128)] {
                let a = MatI8::filled(m, k, fill.0);
                let b = MatI8::filled(k, n, fill.1);
                let oracle = ReferenceEngine
                    .gemm_i8_checksummed_two_pass(&a, &b)
                    .unwrap();
                for engine in simd_engines() {
                    let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
                    assert_eq!(fused.acc(), oracle.acc(), "{} {fill:?}", engine.name());
                    assert_eq!(fused.expected(), oracle.expected(), "{}", engine.name());
                    assert_eq!(fused.observed(), oracle.observed(), "{}", engine.name());
                }
            }
        }
    }

    #[test]
    fn into_paths_accumulate_nothing_stale_from_reused_destinations() {
        let (a1, b1) = random_pair(40, 9, 20, 33);
        let (a2, b2) = random_pair(41, 3, 7, 5);
        for engine in simd_engines() {
            let mut out = MatI32::zeros(0, 0);
            let mut dest = ChecksummedGemm::empty();
            let mut etw = Vec::new();
            // Large shape first, then a smaller one into the same buffers: any stale
            // carry-over (missed reset) shows up immediately.
            engine.gemm_i8_into(&a1, &b1, &mut out).unwrap();
            engine.gemm_i8_into(&a2, &b2, &mut out).unwrap();
            assert_eq!(
                out,
                ReferenceEngine.gemm_i8(&a2, &b2).unwrap(),
                "{}",
                engine.name()
            );
            engine
                .gemm_i8_checksummed_into(&a1, &b1, &mut dest, &mut etw)
                .unwrap();
            engine
                .gemm_i8_checksummed_into(&a2, &b2, &mut dest, &mut etw)
                .unwrap();
            let oracle = ReferenceEngine
                .gemm_i8_checksummed_two_pass(&a2, &b2)
                .unwrap();
            assert_eq!(dest.acc(), oracle.acc(), "{}", engine.name());
            assert_eq!(dest.expected(), oracle.expected(), "{}", engine.name());
            assert_eq!(dest.observed(), oracle.observed(), "{}", engine.name());
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = MatI8::zeros(2, 3);
        let b = MatI8::zeros(4, 2);
        for engine in simd_engines() {
            assert!(engine.gemm_i8(&a, &b).is_err(), "{}", engine.name());
            assert!(
                engine.gemm_i8_checksummed(&a, &b).is_err(),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn dispatch_label_is_consistent_with_detection() {
        // Can't mutate the environment safely in-process; just pin the invariants.
        let engine = SimdEngine::new();
        assert_eq!(engine.is_accelerated(), simd_accelerated());
        assert!(!SimdEngine::portable().is_accelerated());
        assert!(!SimdParallelEngine::portable().is_accelerated());
        assert!(!simd_dispatch_label().is_empty());
    }
}
