//! # realm-tensor
//!
//! Minimal dense-tensor substrate used by the ReaLM reproduction.
//!
//! The crate provides exactly what the paper's inference path needs and nothing more:
//!
//! * [`Matrix`] — a row-major dense matrix generic over its element type, with the
//!   concrete aliases [`MatF32`], [`MatI8`] and [`MatI32`] used throughout the workspace.
//! * [`gemm`] — general matrix-matrix multiplication kernels. The quantized path follows
//!   the paper's setup (inputs quantized to INT8, accumulation in INT32); the f32 path is
//!   used for the non-linear portions of the transformer that stay in floating point.
//! * [`engine`] — interchangeable execution backends for the quantized GEMM
//!   ([`engine::ReferenceEngine`], [`engine::BlockedEngine`], [`engine::ParallelEngine`]),
//!   including the fused-checksum variant that computes the ABFT column checksums inside the
//!   GEMM pass. Every consumer in the workspace routes its quantized GEMMs through a
//!   [`GemmEngine`] handle selected by [`EngineKind`].
//! * [`simd`] — the SIMD i8 microkernel backend ([`SimdEngine`], [`SimdParallelEngine`]):
//!   an AVX2 tier, an optional AVX-512 tier for the packed kernels, and a portable
//!   fallback, all behind runtime feature detection; the process-wide default on hosts
//!   that support it ([`EngineKind::auto`]).
//! * [`packed`] — [`PackedMatI8`], static B-operand (weight) matrices pre-packed at model
//!   load into the exact interleaved tile order the microkernels consume, with the
//!   `eᵀ·W` column checksums precomputed at pack time; the decode-shape fast path behind
//!   [`GemmEngine::gemm_i8_packed_into`].
//! * [`partition`] — [`RowPartition`], the row-range → sequence map that batched inference
//!   uses to stack many sequences into one GEMM while keeping quantization scales and ABFT
//!   attribution per-sequence.
//! * [`quant`] — symmetric quantization between `f32` and `i8`, including the re-quantization
//!   of INT32 accumulator outputs back to INT8 that gives rise to the bit-position
//!   saturation effect studied in the paper (Q1.2).
//! * [`tp`] — simulated tensor-parallel execution: [`TpGroup`], a pool of persistent rank
//!   threads each holding a packed column stripe of a weight matrix ([`ShardedLinear`]),
//!   with per-shard fused ABFT checksum segments merged back into the unsharded
//!   [`ChecksummedGemm`] layout bit-exactly, and whole-shard fault injection + failover.
//! * [`stats`] — summary statistics (mean, standard deviation, outlier counts) used both by
//!   the normalization-skew study (Fig. 5) and by synthetic-weight generation.
//! * [`rng`] — deterministic random-number helpers so every experiment in the workspace is
//!   reproducible from a seed.
//! * [`workspace`] — [`Workspace`], the typed scratch arena behind the allocation-free
//!   decode hot loop: quantized operands, accumulators, checksum vectors and activation
//!   scratch are checked out of reusable pools instead of allocated per GEMM.
//!
//! # Example
//!
//! ```
//! use realm_tensor::{MatF32, gemm, quant};
//!
//! # fn main() -> Result<(), realm_tensor::TensorError> {
//! let a = MatF32::from_fn(4, 8, |r, c| (r as f32) - (c as f32) * 0.25);
//! let b = MatF32::from_fn(8, 3, |r, c| 0.1 * (r as f32 + c as f32));
//!
//! // Quantize both operands to INT8 and multiply with INT32 accumulation, the same
//! // datapath the paper injects errors into.
//! let (qa, sa) = quant::quantize_symmetric(&a);
//! let (qb, sb) = quant::quantize_symmetric(&b);
//! let acc = gemm::gemm_i8(&qa, &qb)?;
//! let y = quant::dequantize_accumulator(&acc, sa * sb);
//!
//! let reference = gemm::gemm_f32(&a, &b)?;
//! assert_eq!(y.shape(), reference.shape());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod gemm;
pub mod matrix;
pub mod packed;
pub mod partition;
pub mod quant;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod tp;
pub mod workspace;

mod error;

pub use engine::{
    BlockedEngine, ChecksummedGemm, EngineKind, GemmEngine, ParallelEngine, ReferenceEngine,
};
pub use error::TensorError;
pub use matrix::{MatF32, MatI32, MatI8, Matrix};
pub use packed::PackedMatI8;
pub use partition::RowPartition;
pub use quant::QuantParams;
pub use simd::{SimdEngine, SimdParallelEngine, SimdTier};
pub use tp::{ShardFault, ShardedLinear, TpGroup, TpShardStats};
pub use workspace::Workspace;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
