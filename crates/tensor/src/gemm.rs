//! GEMM kernels: the INT8×INT8→INT32 datapath the paper protects, plus f32 reference paths.
//!
//! The paper injects transient errors into the **INT32 accumulation results** of quantized
//! GEMMs ([`gemm_i8`]); the floating-point path ([`gemm_f32`]) models the non-quantized
//! portions of the transformer (normalization statistics, softmax) and provides a reference
//! for quantization-accuracy tests.

use crate::{MatF32, MatI32, MatI8, Result, TensorError};

fn check_compatible(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Result<()> {
    if lhs.1 != rhs.0 {
        return Err(TensorError::ShapeMismatch { op, lhs, rhs });
    }
    Ok(())
}

/// Multiplies two INT8 matrices producing an INT32 accumulator matrix.
///
/// This is the datapath executed on the systolic array in the paper: operands are quantized
/// to INT8, products are accumulated in INT32, and transient timing errors manifest as bit
/// flips in the INT32 results.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use realm_tensor::{MatI8, gemm};
/// let a = MatI8::filled(2, 3, 2);
/// let b = MatI8::filled(3, 2, 3);
/// let y = gemm::gemm_i8(&a, &b)?;
/// assert_eq!(y[(0, 0)], 18);
/// # Ok::<(), realm_tensor::TensorError>(())
/// ```
pub fn gemm_i8(a: &MatI8, b: &MatI8) -> Result<MatI32> {
    let mut out = MatI32::zeros(0, 0);
    gemm_i8_into(a, b, &mut out)?;
    Ok(out)
}

/// [`gemm_i8`] writing into caller-provided storage.
///
/// `out` is reshaped to `(a.rows(), b.cols())` in place, reusing its backing allocation
/// whenever the capacity suffices — with a workspace-pooled accumulator the multiply runs
/// without touching the allocator. Results are bit-identical to [`gemm_i8`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn gemm_i8_into(a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
    check_compatible("gemm_i8", a.shape(), b.shape())?;
    let (m, k) = a.shape();
    let n = b.cols();
    out.resize_reset(m, n);
    // Transpose-free inner loop ordering (i, p, j) keeps the access to `b` row-contiguous.
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            let a_ip = a_ip as i32;
            if a_ip == 0 {
                continue;
            }
            let b_row = b.row(p);
            for (j, &b_pj) in b_row.iter().enumerate() {
                out_row[j] += a_ip * b_pj as i32;
            }
        }
    }
    Ok(())
}

/// Multiplies two f32 matrices.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn gemm_f32(a: &MatF32, b: &MatF32) -> Result<MatF32> {
    let mut out = MatF32::zeros(0, 0);
    gemm_f32_into(a, b, &mut out)?;
    Ok(out)
}

/// [`gemm_f32`] writing into caller-provided storage (reshaped in place, reusing its
/// backing allocation). Bit-identical to [`gemm_f32`]; used by the allocation-free logits
/// path of the decode hot loop.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn gemm_f32_into(a: &MatF32, b: &MatF32, out: &mut MatF32) -> Result<()> {
    check_compatible("gemm_f32", a.shape(), b.shape())?;
    let (m, k) = a.shape();
    let n = b.cols();
    out.resize_reset(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (j, &b_pj) in b_row.iter().enumerate() {
                out_row[j] += a_ip * b_pj;
            }
        }
    }
    Ok(())
}

/// Multiplies an INT8 matrix by an INT8 vector (GEMV), producing INT32 accumulators.
///
/// GEMV dominates the non-batched decode stage; the paper notes such operations typically run
/// on vector units rather than the systolic array, but the error-injection studies still need
/// the same numeric behaviour.
///
/// Since the decode-shape speed tier landed there is exactly one decode-shape code path:
/// this legacy convenience routes through [`crate::engine::default_engine`] (the SIMD
/// backend on hosts that support it), so it hits the same shape-dispatched microkernels
/// as the serving stack instead of maintaining a private scalar loop. It allocates its
/// result; hot loops should use the engine `*_into` entry points with workspace-pooled
/// buffers, and static weights should pre-pack via [`crate::PackedMatI8`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != x.len()`.
pub fn gemv_i8(a: &MatI8, x: &[i8]) -> Result<Vec<i32>> {
    if a.cols() != x.len() {
        return Err(TensorError::ShapeMismatch {
            op: "gemv_i8",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let xm = MatI8::from_vec(x.len(), 1, x.to_vec())?;
    let mut out = MatI32::zeros(0, 0);
    crate::engine::default_engine().gemm_i8_into(a, &xm, &mut out)?;
    Ok(out.into_vec())
}

/// Computes `a * b` where `a` is f32 and `b` is f32, adding the result into `acc`.
///
/// Used by residual paths where the projection output is accumulated onto the residual
/// stream without materialising an intermediate.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the product shape does not match `acc`.
pub fn gemm_f32_acc(a: &MatF32, b: &MatF32, acc: &mut MatF32) -> Result<()> {
    let y = gemm_f32(a, b)?;
    if y.shape() != acc.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "gemm_f32_acc",
            lhs: y.shape(),
            rhs: acc.shape(),
        });
    }
    for (dst, src) in acc.iter_mut().zip(y.iter()) {
        *dst += *src;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn gemm_i8_matches_manual_result() {
        let a = MatI8::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        let b = MatI8::from_vec(2, 2, vec![5, 6, 7, 8]).unwrap();
        let y = gemm_i8(&a, &b).unwrap();
        assert_eq!(y.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    fn gemm_i8_rejects_incompatible_shapes() {
        let a = MatI8::zeros(2, 3);
        let b = MatI8::zeros(2, 3);
        assert!(matches!(
            gemm_i8(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn gemm_i8_handles_saturating_range_without_overflow() {
        // 128 accumulations of 127*127 stays far below i32::MAX; validate no wrap.
        let a = MatI8::filled(1, 128, 127);
        let b = MatI8::filled(128, 1, 127);
        let y = gemm_i8(&a, &b).unwrap();
        assert_eq!(y[(0, 0)], 127 * 127 * 128);
    }

    #[test]
    fn gemm_f32_identity_preserves_input() {
        let a = MatF32::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let identity = MatF32::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let y = gemm_f32(&a, &identity).unwrap();
        assert_eq!(y, a);
    }

    #[test]
    fn gemv_matches_gemm_single_column() {
        let a = MatI8::from_fn(4, 3, |r, c| (r as i8) - (c as i8));
        let x = vec![1i8, -2, 3];
        let xv = Matrix::from_vec(3, 1, x.clone()).unwrap();
        let via_gemm = gemm_i8(&a, &xv).unwrap();
        let via_gemv = gemv_i8(&a, &x).unwrap();
        for i in 0..4 {
            assert_eq!(via_gemm[(i, 0)], via_gemv[i]);
        }
    }

    #[test]
    fn gemv_rejects_wrong_length() {
        let a = MatI8::zeros(2, 3);
        assert!(gemv_i8(&a, &[1, 2]).is_err());
    }

    #[test]
    fn gemm_f32_acc_accumulates() {
        let a = MatF32::filled(2, 2, 1.0);
        let b = MatF32::filled(2, 2, 2.0);
        let mut acc = MatF32::filled(2, 2, 10.0);
        gemm_f32_acc(&a, &b, &mut acc).unwrap();
        assert_eq!(acc[(0, 0)], 14.0);
    }

    #[test]
    fn int8_and_f32_paths_agree_for_integer_valued_inputs() {
        let a8 = MatI8::from_fn(3, 5, |r, c| (r as i8 * 2) - c as i8);
        let b8 = MatI8::from_fn(5, 4, |r, c| (c as i8) - (r as i8));
        let af = a8.map(|v| v as f32);
        let bf = b8.map(|v| v as f32);
        let yi = gemm_i8(&a8, &b8).unwrap();
        let yf = gemm_f32(&af, &bf).unwrap();
        for (i, j) in (0..3).flat_map(|i| (0..4).map(move |j| (i, j))) {
            assert_eq!(yi[(i, j)] as f32, yf[(i, j)]);
        }
    }
}
