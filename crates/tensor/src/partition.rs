//! Row partitions: mapping stacked activation rows back to the sequences of a batch.
//!
//! Batched inference stacks the activations of every sequence in a batch into one
//! `(sum_tokens, features)` matrix so that a whole batch shares a single fused-checksum GEMM
//! per network component. A [`RowPartition`] records where each sequence's rows live inside
//! that stack, which is what lets downstream consumers stay sequence-aware:
//!
//! * the quantizer applies one symmetric scale *per row group*, so the stacked GEMM is
//!   bit-exact with running each sequence alone;
//! * ABFT attribution maps a detected checksum deviation back to the originating sequence by
//!   re-reducing the checksums over one group's row range;
//! * the error injector can restrict corruption to the rows of a targeted sequence.
//!
//! Groups may be empty: a sequence that has completed generation contributes zero rows to a
//! lockstep decode step but keeps its batch index, so attribution stays stable for the whole
//! run.

use std::ops::Range;

/// A partition of the rows of a stacked matrix into contiguous per-sequence groups.
///
/// Group `g` owns rows `offsets[g]..offsets[g + 1]`; groups are stored as cumulative offsets
/// so range queries are O(1).
///
/// # Example
///
/// ```
/// use realm_tensor::RowPartition;
/// let parts = RowPartition::from_lens(&[3, 0, 2]);
/// assert_eq!(parts.num_groups(), 3);
/// assert_eq!(parts.total_rows(), 5);
/// assert_eq!(parts.range(2), 3..5);
/// assert!(parts.range(1).is_empty());
/// assert_eq!(parts.group_of_row(4), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RowPartition {
    /// Cumulative row offsets; `offsets.len() == num_groups + 1` and `offsets[0] == 0`.
    offsets: Vec<usize>,
}

impl RowPartition {
    /// Builds a partition from per-group row counts (empty groups are allowed).
    pub fn from_lens(lens: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &len in lens {
            total += len;
            offsets.push(total);
        }
        Self { offsets }
    }

    /// A partition with a single group covering `rows` rows (the single-sequence case).
    pub fn single(rows: usize) -> Self {
        Self::from_lens(&[rows])
    }

    /// Number of groups (sequences) in the partition.
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stacked rows across all groups.
    pub fn total_rows(&self) -> usize {
        *self
            .offsets
            .last()
            .expect("offsets always holds a leading 0")
    }

    /// Returns `true` if the partition holds no groups at all.
    pub fn is_empty(&self) -> bool {
        self.num_groups() == 0
    }

    /// The row range owned by group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group >= self.num_groups()`.
    pub fn range(&self, group: usize) -> Range<usize> {
        self.offsets[group]..self.offsets[group + 1]
    }

    /// Number of rows owned by group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group >= self.num_groups()`.
    pub fn len(&self, group: usize) -> usize {
        self.offsets[group + 1] - self.offsets[group]
    }

    /// Per-group row counts in group order.
    pub fn lens(&self) -> Vec<usize> {
        (0..self.num_groups()).map(|g| self.len(g)).collect()
    }

    /// The group owning stacked row `row`, or `None` if the row is out of range.
    ///
    /// Empty groups never own a row, so the answer is unambiguous.
    pub fn group_of_row(&self, row: usize) -> Option<usize> {
        if row >= self.total_rows() {
            return None;
        }
        // partition_point returns the first offset > row; offsets[g] <= row < offsets[g+1].
        Some(self.offsets.partition_point(|&o| o <= row) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lens_builds_contiguous_ranges() {
        let p = RowPartition::from_lens(&[2, 3, 1]);
        assert_eq!(p.num_groups(), 3);
        assert_eq!(p.total_rows(), 6);
        assert_eq!(p.range(0), 0..2);
        assert_eq!(p.range(1), 2..5);
        assert_eq!(p.range(2), 5..6);
        assert_eq!(p.lens(), vec![2, 3, 1]);
    }

    #[test]
    fn empty_groups_are_preserved() {
        let p = RowPartition::from_lens(&[1, 0, 2, 0]);
        assert_eq!(p.num_groups(), 4);
        assert_eq!(p.total_rows(), 3);
        assert!(p.range(1).is_empty());
        assert!(p.range(3).is_empty());
        assert_eq!(p.len(2), 2);
    }

    #[test]
    fn group_of_row_skips_empty_groups() {
        let p = RowPartition::from_lens(&[1, 0, 2]);
        assert_eq!(p.group_of_row(0), Some(0));
        assert_eq!(p.group_of_row(1), Some(2));
        assert_eq!(p.group_of_row(2), Some(2));
        assert_eq!(p.group_of_row(3), None);
    }

    #[test]
    fn single_covers_all_rows_in_one_group() {
        let p = RowPartition::single(7);
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.range(0), 0..7);
        assert_eq!(p.group_of_row(6), Some(0));
    }

    #[test]
    fn degenerate_partitions() {
        let none = RowPartition::from_lens(&[]);
        assert!(none.is_empty());
        assert_eq!(none.total_rows(), 0);
        let zero = RowPartition::from_lens(&[0, 0]);
        assert!(!zero.is_empty());
        assert_eq!(zero.total_rows(), 0);
        assert_eq!(zero.group_of_row(0), None);
    }
}
