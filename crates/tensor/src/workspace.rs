//! A reusable scratch arena for the allocation-free decode hot loop.
//!
//! Every GEMM of every layer of every decode step needs the same handful of short-lived
//! buffers: a quantized INT8 copy of the activations, an INT32 accumulator, checksum
//! vectors, requantization scratch, normalized inputs, attention scores. Allocating them
//! fresh per GEMM makes the allocator a per-token cost that grows with batch size and queue
//! depth — exactly where the serving layer needs headroom. [`Workspace`] turns those
//! allocations into checkouts from typed free pools:
//!
//! * [`Workspace::take_mat_f32`] (and the `i8`/`i32`/vector variants) hands out a
//!   zero-initialised buffer of the requested shape, reusing a pooled backing allocation
//!   whenever one with enough capacity exists;
//! * the matching `recycle_*` call returns the buffer's backing storage to the pool once
//!   the caller is done with it;
//! * fresh or growing allocations round their capacity up to the next power of two, so a
//!   buffer whose demand grows monotonically (attention scores lengthen every decode step)
//!   re-allocates O(log n) times total instead of once per step.
//!
//! Ownership moves on checkout, so overlapping borrows of one region are structurally
//! impossible; the debug build additionally verifies that a recycled buffer is not already
//! sitting in the free pool (a double-recycle through a cloned handle) and
//! [`Workspace::reset`] asserts that every checkout was returned. In debug builds recycled
//! and reset buffers are *poisoned* with a sentinel pattern (`NaN` for floats, `0x55…` for
//! integers), so any stale read of freed scratch produces loud garbage instead of silently
//! passing a parity test; `take_*` always zero-fills, so release and debug builds stay
//! bit-identical.
//!
//! The arena tracks a byte high-water mark ([`Workspace::high_water_mark_bytes`]): a
//! steady-state decode loop's mark stabilises after warmup, which the leak check in
//! `tests/zero_alloc.rs` pins down and the serving engine surfaces in its operator stats.

use crate::matrix::Matrix;

/// Typed free pools of reusable backing buffers plus checkout accounting.
///
/// See the [module documentation](self) for the checkout/recycle discipline.
///
/// # Example
///
/// ```
/// use realm_tensor::Workspace;
///
/// let mut ws = Workspace::new();
/// let acc = ws.take_mat_i32(4, 8);
/// assert_eq!(acc.shape(), (4, 8));
/// assert!(acc.iter().all(|&v| v == 0));
/// ws.recycle_mat_i32(acc);
/// // The second checkout reuses the first buffer's backing allocation.
/// let again = ws.take_mat_i32(2, 3);
/// ws.recycle_mat_i32(again);
/// assert!(ws.high_water_mark_bytes() > 0);
/// ws.reset();
/// ```
#[derive(Debug)]
pub struct Workspace {
    f32_bufs: Buckets<f32>,
    i8_bufs: Buckets<i8>,
    i32_bufs: Buckets<i32>,
    i64_bufs: Buckets<i64>,
    /// Bytes currently resident in the free pools.
    pooled_bytes: usize,
    /// Bytes currently checked out (capacities at take time; recycles subtract the
    /// returned capacity, saturating). A buffer grown *outside* the workspace between
    /// take and recycle is only observed at recycle time, so the mark can miss such a
    /// transient peak — the hot paths therefore take correctly sized buffers up front.
    taken_bytes: usize,
    /// Highest observed `pooled_bytes + taken_bytes`.
    high_water_bytes: usize,
    /// Number of buffers currently checked out (used by `reset`'s leak assertion).
    outstanding: usize,
    /// When `false` (see [`Workspace::without_reuse`]), recycled buffers are dropped
    /// instead of pooled — the benchmark baseline that makes every checkout allocate.
    pooling: bool,
}

impl Default for Workspace {
    fn default() -> Self {
        Self {
            f32_bufs: Buckets::new(),
            i8_bufs: Buckets::new(),
            i32_bufs: Buckets::new(),
            i64_bufs: Buckets::new(),
            pooled_bytes: 0,
            taken_bytes: 0,
            high_water_bytes: 0,
            outstanding: 0,
            pooling: true,
        }
    }
}

/// Free buffers binned by power-of-two capacity class: bucket `c` holds buffers whose
/// capacity is at least `2^c`, so a checkout is one index computation plus a stack pop —
/// O(1), no scanning — and a popped buffer always has enough capacity for its class.
#[derive(Debug)]
struct Buckets<T> {
    classes: Vec<Vec<Vec<T>>>,
}

impl<T: Poolable> Buckets<T> {
    fn new() -> Self {
        Self {
            classes: Vec::new(),
        }
    }

    /// Capacity class that can serve a request of `len` elements: `ceil(log2(len))`.
    fn class_for_len(len: usize) -> usize {
        len.max(1).next_power_of_two().trailing_zeros() as usize
    }

    /// Capacity class a buffer of `cap` elements belongs to: `floor(log2(cap))` (every
    /// buffer in class `c` has capacity ≥ `2^c`).
    fn class_for_cap(cap: usize) -> usize {
        cap.max(1).ilog2() as usize
    }

    /// Pops a zeroed buffer of `len` elements from the smallest sufficient class
    /// (probing upward through empty classes), allocating a fresh
    /// power-of-two-capacity buffer only when no pooled buffer suffices. Returns the
    /// buffer and the capacity (in elements) it vacated from the pool.
    fn take(&mut self, len: usize) -> (Vec<T>, usize) {
        let start = Self::class_for_len(len);
        let mut buf = None;
        for class in start..self.classes.len() {
            if let Some(pooled) = self.classes[class].pop() {
                buf = Some(pooled);
                break;
            }
        }
        // Only a buffer that actually came out of the pool vacates pooled capacity; a
        // fresh allocation must not debit the pool's byte accounting.
        let (mut buf, vacated) = match buf {
            Some(buf) => {
                let vacated = buf.capacity();
                (buf, vacated)
            }
            None => (Vec::with_capacity(1usize << start), 0),
        };
        buf.clear();
        buf.resize(len, T::default());
        (buf, vacated)
    }

    /// Pushes a buffer back into its capacity class (debug builds assert it is not
    /// already pooled — a double recycle through a cloned handle).
    fn put(&mut self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = Self::class_for_cap(buf.capacity());
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        debug_assert!(
            !self.classes[class]
                .iter()
                .any(|pooled| std::ptr::eq(pooled.as_ptr(), buf.as_ptr())),
            "buffer recycled while an identical backing allocation is already pooled \
             (double recycle / overlapping checkout)"
        );
        self.classes[class].push(buf);
    }

    fn poison_all(&mut self) {
        for class in &mut self.classes {
            for buf in class {
                poison_buf(buf);
            }
        }
    }
}

/// Sentinel written into freed integer scratch in debug builds.
const POISON_BYTE: u8 = 0x55;

/// Elements are plain scalars the workspace knows how to zero and poison.
pub trait Poolable: Copy + Default {
    /// The debug-build poison value for this element type.
    fn poison() -> Self;
}

impl Poolable for f32 {
    fn poison() -> Self {
        f32::NAN
    }
}
impl Poolable for i8 {
    fn poison() -> Self {
        POISON_BYTE as i8
    }
}
impl Poolable for i32 {
    fn poison() -> Self {
        i32::from_le_bytes([POISON_BYTE; 4])
    }
}
impl Poolable for i64 {
    fn poison() -> Self {
        i64::from_le_bytes([POISON_BYTE; 8])
    }
}

fn poison_buf<T: Poolable>(buf: &mut [T]) {
    if cfg!(debug_assertions) {
        buf.fill(T::poison());
    }
}

macro_rules! pool_impl {
    ($take_mat:ident, $recycle_mat:ident, $take_vec:ident, $recycle_vec:ident,
     $pool:ident, $ty:ty, $mat_doc:literal) => {
        #[doc = $mat_doc]
        ///
        /// The buffer is zero-filled; the matching `recycle` call returns its backing
        /// storage to the pool. Checked-out buffers are ordinary owned values — dropping
        /// one instead of recycling it is memory-safe but counts as a leak: the buffer
        /// never returns to the pool and the next [`Workspace::reset`] fails its
        /// outstanding-checkouts assertion in debug builds.
        pub fn $take_mat(&mut self, rows: usize, cols: usize) -> Matrix<$ty> {
            let data = self.$take_vec(rows * cols);
            Matrix::from_vec(rows, cols, data).expect("workspace sized the backing buffer")
        }

        /// Returns a matrix's backing storage to the pool (debug builds poison it).
        pub fn $recycle_mat(&mut self, mat: Matrix<$ty>) {
            self.$recycle_vec(mat.into_vec());
        }

        /// Checks out a zero-filled vector of `len` elements.
        pub fn $take_vec(&mut self, len: usize) -> Vec<$ty> {
            let (buf, vacated) = self.$pool.take(len);
            self.pooled_bytes = self
                .pooled_bytes
                .saturating_sub(vacated * std::mem::size_of::<$ty>());
            self.taken_bytes += buf.capacity() * std::mem::size_of::<$ty>();
            self.outstanding += 1;
            self.note_high_water();
            buf
        }

        /// Returns a vector's backing storage to the pool (debug builds poison it).
        pub fn $recycle_vec(&mut self, mut buf: Vec<$ty>) {
            let bytes = buf.capacity() * std::mem::size_of::<$ty>();
            self.outstanding = self.outstanding.saturating_sub(1);
            self.taken_bytes = self.taken_bytes.saturating_sub(bytes);
            if !self.pooling {
                return;
            }
            poison_buf(&mut buf);
            self.pooled_bytes += bytes;
            self.note_high_water();
            self.$pool.put(buf);
        }
    };
}

impl Workspace {
    /// Creates an empty workspace; pools grow on demand during warmup.
    pub fn new() -> Self {
        Self::default()
    }

    pool_impl!(
        take_mat_f32,
        recycle_mat_f32,
        take_vec_f32,
        recycle_vec_f32,
        f32_bufs,
        f32,
        "Checks out a zero-filled `rows × cols` f32 matrix (activations, logits, scores)."
    );
    pool_impl!(
        take_mat_i8,
        recycle_mat_i8,
        take_vec_i8,
        recycle_vec_i8,
        i8_bufs,
        i8,
        "Checks out a zero-filled `rows × cols` INT8 matrix (quantized GEMM operands)."
    );
    pool_impl!(
        take_mat_i32,
        recycle_mat_i32,
        take_vec_i32,
        recycle_vec_i32,
        i32_bufs,
        i32,
        "Checks out a zero-filled `rows × cols` INT32 matrix (GEMM accumulators)."
    );
    pool_impl!(
        take_mat_i64,
        recycle_mat_i64,
        take_vec_i64,
        recycle_vec_i64,
        i64_bufs,
        i64,
        "Checks out a zero-filled `rows × cols` i64 matrix (checksum arithmetic)."
    );

    fn note_high_water(&mut self) {
        let total = self.pooled_bytes + self.taken_bytes;
        if total > self.high_water_bytes {
            self.high_water_bytes = total;
        }
    }

    /// Marks the end of one unit of work (typically one token).
    ///
    /// Debug builds assert that every checked-out buffer was recycled — a missing recycle
    /// is a leak that would grow the pools without bound — and poison every pooled buffer
    /// so reads of stale scratch fail loudly. Release builds only perform the (free)
    /// bookkeeping, so calling this per token costs nothing on the hot path.
    pub fn reset(&mut self) {
        debug_assert_eq!(
            self.outstanding, 0,
            "workspace reset with {} buffer(s) still checked out — recycle every take",
            self.outstanding
        );
        if cfg!(debug_assertions) {
            self.f32_bufs.poison_all();
            self.i8_bufs.poison_all();
            self.i32_bufs.poison_all();
            self.i64_bufs.poison_all();
        }
    }

    /// A workspace whose `recycle_*` calls drop buffers instead of pooling them, so every
    /// checkout hits the allocator.
    ///
    /// This reproduces the pre-workspace allocation profile (one fresh buffer per GEMM
    /// intermediate) while running the *identical* code path — the baseline arm of the
    /// `decode_latency` benchmark. Never use it on a serving hot loop.
    pub fn without_reuse() -> Self {
        Self {
            pooling: false,
            ..Self::default()
        }
    }

    /// Highest observed total footprint (pooled + checked out) in bytes.
    ///
    /// Stabilises once the steady-state decode loop has warmed every pool — the no-leak
    /// property `tests/zero_alloc.rs` asserts across slot churn.
    pub fn high_water_mark_bytes(&self) -> usize {
        self.high_water_bytes
    }

    /// Bytes currently owned by the workspace (pooled plus checked out).
    pub fn current_bytes(&self) -> usize {
        self.pooled_bytes + self.taken_bytes
    }

    /// Number of buffers currently checked out and not yet recycled.
    pub fn outstanding_buffers(&self) -> usize {
        self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_requested_shape() {
        let mut ws = Workspace::new();
        let m = ws.take_mat_f32(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert!(m.iter().all(|&v| v == 0.0));
        let v = ws.take_vec_i64(7);
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|&x| x == 0));
        assert_eq!(ws.outstanding_buffers(), 2);
        ws.recycle_mat_f32(m);
        ws.recycle_vec_i64(v);
        assert_eq!(ws.outstanding_buffers(), 0);
    }

    #[test]
    fn recycled_capacity_is_reused_and_high_water_stabilises() {
        let mut ws = Workspace::new();
        let m = ws.take_mat_i32(8, 8);
        ws.recycle_mat_i32(m);
        let after_first = ws.high_water_mark_bytes();
        assert!(after_first >= 64 * 4);
        // Steady-state churn at the same or smaller shapes keeps the mark flat.
        for _ in 0..50 {
            let a = ws.take_mat_i32(8, 8);
            let b = ws.take_mat_i32(4, 4);
            ws.recycle_mat_i32(a);
            ws.recycle_mat_i32(b);
            ws.reset();
        }
        // One extra buffer was created for the concurrent second checkout; after that the
        // mark must not move again.
        let settled = ws.high_water_mark_bytes();
        for _ in 0..50 {
            let a = ws.take_mat_i32(8, 8);
            let b = ws.take_mat_i32(4, 4);
            ws.recycle_mat_i32(a);
            ws.recycle_mat_i32(b);
            ws.reset();
        }
        assert_eq!(ws.high_water_mark_bytes(), settled);
    }

    #[test]
    fn growing_demand_rounds_capacity_to_powers_of_two() {
        let mut ws = Workspace::new();
        for len in 1..100usize {
            let v = ws.take_vec_f32(len);
            assert!(v.capacity() >= len);
            assert!(v.capacity().is_power_of_two());
            ws.recycle_vec_f32(v);
        }
        // Monotonic growth settles into one buffer per power-of-two class
        // (1 + 2 + … + 128 elements), never one allocation per length.
        assert!(ws.current_bytes() <= 256 * 4);
    }

    #[test]
    fn size_classes_keep_big_buffers_for_big_requests() {
        let mut ws = Workspace::new();
        let big = ws.take_vec_i64(100); // class 7: capacity 128
        let small = ws.take_vec_i64(3); // class 2: capacity 4
        ws.recycle_vec_i64(big);
        ws.recycle_vec_i64(small);
        let fit = ws.take_vec_i64(3);
        assert_eq!(
            fit.capacity(),
            4,
            "small request must not burn the big buffer"
        );
        ws.recycle_vec_i64(fit);
        let big_again = ws.take_vec_i64(70);
        assert_eq!(big_again.capacity(), 128, "class 7 buffer is reused");
        ws.recycle_vec_i64(big_again);
    }

    #[test]
    fn without_reuse_drops_recycled_buffers() {
        let mut ws = Workspace::without_reuse();
        let v = ws.take_vec_f32(16);
        ws.recycle_vec_f32(v);
        assert_eq!(ws.current_bytes(), 0, "nothing is pooled");
        assert_eq!(ws.outstanding_buffers(), 0);
        ws.reset();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "still checked out")]
    fn reset_catches_leaked_checkouts() {
        let mut ws = Workspace::new();
        let _leaked = ws.take_vec_f32(4);
        ws.reset();
    }

    #[test]
    fn dropping_a_checked_out_buffer_is_a_counted_leak() {
        let mut ws = Workspace::new();
        let v = ws.take_vec_i8(16);
        drop(v); // not recycled: memory-safe, but the pool never sees it again
        assert_eq!(
            ws.outstanding_buffers(),
            1,
            "reset() would flag this in debug"
        );
        // Accounting saturates rather than underflowing on the next recycle.
        let w = ws.take_vec_i8(16);
        ws.recycle_vec_i8(w);
    }
}
