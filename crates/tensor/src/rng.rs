//! Deterministic random-number helpers.
//!
//! Every stochastic quantity in the workspace — synthetic weights, injected bit flips,
//! Monte-Carlo trials — is derived from an explicit `u64` seed through these helpers so that
//! all experiments (and therefore all regenerated figures) are reproducible run-to-run.

use crate::MatF32;
use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used across the workspace.
pub type SeededRng = ChaCha8Rng;

/// Creates a deterministic RNG from a seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = realm_tensor::rng::seeded(42);
/// let mut b = realm_tensor::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> SeededRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Experiments fan out into many independent trials (per layer, per component, per BER point);
/// deriving child seeds keeps streams decorrelated while remaining reproducible.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined value: cheap, well-mixed, dependency-free.
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a standard normal value using the Box–Muller transform.
///
/// Avoids pulling in `rand_distr`; precision is more than adequate for synthetic weights.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
        }
    }
}

/// Fills a matrix with i.i.d. Gaussian samples `N(mean, std²)`.
pub fn gaussian_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    mean: f32,
    std: f32,
) -> MatF32 {
    MatF32::from_fn(rows, cols, |_, _| mean + std * standard_normal(rng))
}

/// Fills a matrix with Gaussian bulk values plus a sparse set of large outlier columns.
///
/// `outlier_fraction` of the columns are designated outlier channels whose entries are scaled
/// by `outlier_gain`. This mimics the activation/weight statistics reported for LLMs (a few
/// channels carry magnitudes tens of times larger than the bulk), which is the property that
/// makes post-normalization components sensitive to injected errors.
pub fn outlier_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    std: f32,
    outlier_fraction: f32,
    outlier_gain: f32,
) -> MatF32 {
    let outlier_cols: Vec<bool> = (0..cols)
        .map(|_| rng.gen::<f32>() < outlier_fraction)
        .collect();
    MatF32::from_fn(rows, cols, |_, c| {
        let base = std * standard_normal(rng);
        if outlier_cols[c] {
            base * outlier_gain
        } else {
            base
        }
    })
}

/// Samples an index from a Zipfian distribution over `[0, n)` with exponent `s`.
///
/// Used by the synthetic text-corpus generator: natural-language token frequencies are
/// approximately Zipfian, and keeping that property makes perplexity behave like it does on
/// real corpora (a sharp, low-entropy head plus a long tail).
pub fn zipf_index<R: Rng + ?Sized>(rng: &mut R, n: usize, s: f64) -> usize {
    debug_assert!(n > 0, "zipf_index requires a non-empty support");
    // Inverse-CDF sampling over the (finite) normalized Zipf distribution via rejection-free
    // cumulative search. For the vocabulary sizes used here (<= a few thousand) this is fast
    // enough and exact.
    let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
    let target = rng.gen::<f64>() * h;
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        if acc >= target {
            return k - 1;
        }
    }
    n - 1
}

/// A reusable Zipfian sampler that precomputes the cumulative distribution.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `[0, n)` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires a non-empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of distinct values the sampler can produce.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }
}

impl Distribution<usize> for ZipfSampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen::<f64>();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = seeded(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(7);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_seed_changes_with_stream() {
        assert_ne!(derive_seed(10, 0), derive_seed(10, 1));
        assert_eq!(derive_seed(10, 5), derive_seed(10, 5));
    }

    #[test]
    fn gaussian_matrix_has_expected_moments() {
        let mut rng = seeded(3);
        let m = gaussian_matrix(&mut rng, 64, 64, 1.0, 2.0);
        let s = stats::summary(&m);
        assert!((s.mean - 1.0).abs() < 0.15, "mean {}", s.mean);
        assert!((s.std - 2.0).abs() < 0.2, "std {}", s.std);
    }

    #[test]
    fn outlier_matrix_is_heavier_tailed_than_gaussian() {
        let mut rng = seeded(9);
        let plain = gaussian_matrix(&mut rng, 32, 256, 0.0, 1.0);
        let mut rng = seeded(9);
        let outliers = outlier_matrix(&mut rng, 32, 256, 1.0, 0.02, 20.0);
        assert!(stats::kurtosis_excess(&outliers) > stats::kurtosis_excess(&plain) + 1.0);
    }

    #[test]
    fn zipf_head_is_most_frequent() {
        let mut rng = seeded(11);
        let sampler = ZipfSampler::new(50, 1.1);
        let mut counts = vec![0usize; 50];
        for _ in 0..5000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let max_idx = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(max_idx, 0, "rank-0 token should dominate: {counts:?}");
        assert!(counts[0] > counts[10] && counts[10] >= counts[40]);
    }

    #[test]
    fn zipf_index_matches_sampler_support() {
        let mut rng = seeded(5);
        for _ in 0..100 {
            let i = zipf_index(&mut rng, 17, 1.0);
            assert!(i < 17);
        }
    }

    #[test]
    fn standard_normal_is_roughly_centred() {
        let mut rng = seeded(21);
        let mean: f32 = (0..4000).map(|_| standard_normal(&mut rng)).sum::<f32>() / 4000.0;
        assert!(mean.abs() < 0.1);
    }
}
