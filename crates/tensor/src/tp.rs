//! Simulated tensor-parallel execution: persistent ranks, column-sharded weights,
//! per-shard fused ABFT checksums and cross-shard failover.
//!
//! Real tensor-parallel inference splits every linear layer's weight matrix column-wise
//! across devices: each device holds its stripe permanently, the activation is broadcast,
//! each device runs its share of the GEMM, and the outputs are concatenated. This module
//! reproduces that execution shape inside one process:
//!
//! * [`TpGroup`] — a pool of `degree` **persistent** rank threads created once (model
//!   load) and parked on condvars between GEMMs, so sharded execution costs no per-GEMM
//!   thread spawn. Each rank owns resident output/checksum buffers that are grown during
//!   warmup and reused forever after, preserving the allocation-free decode contract.
//! * [`ShardedLinear`] — a weight matrix split into `degree` contiguous column stripes,
//!   each packed once ([`PackedMatI8`]) at shard time and held behind an `Arc` so a
//!   dispatch hands a rank its stripe by refcount bump, never by copy.
//!
//! # Bit-exactness
//!
//! Column sharding is exact by construction: every output element `Y[i, j]` is a full-depth
//! dot product computed entirely by the one rank owning column `j`, with the same kernel
//! and the same accumulation order as the unsharded pass. The fused ABFT checksums shard
//! the same way — `expected[j] = (eᵀ·X)·W[:, j]` and `observed[j] = eᵀ·Y[:, j]` are
//! per-column quantities — so concatenating the per-shard checksum segments in column
//! order reproduces the unsharded [`ChecksummedGemm`] bit-for-bit. The differential suite
//! `tests/tp_parity.rs` pins this down across every engine and ragged shard widths.
//!
//! # Shards as fault domains
//!
//! Following FailSafe's framing (see PAPERS.md), a shard is a unit of failure: a device
//! can die mid-step or silently corrupt its stripe. [`TpGroup::inject_shard_fault`] arms
//! exactly those scenarios ([`ShardFault`]), and the merge path treats them the way the
//! paper's statistical ABFT enables cheaply:
//!
//! * a **killed** shard never runs; the group recomputes its columns inline from the
//!   resident weight stripe and keeps serving — the request never observes the loss;
//! * a **corrupted** shard is caught by its own checksum segment (`observed != expected`
//!   over the stripe's columns), and only that stripe is recomputed.
//!
//! Every event is charged to per-shard [`TpShardStats`], surfaced through the serving
//! layer's `EngineStats`.

use crate::engine::{ChecksummedGemm, GemmEngine};
use crate::packed::PackedMatI8;
use crate::{MatI32, MatI8, Result, TensorError};
use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Balanced contiguous column partition of `cols` output columns over `degree` shards.
///
/// The first `cols % degree` shards receive one extra column, so ragged widths (not
/// divisible by the degree) are supported with a worst-case imbalance of one column.
/// Shards beyond `cols` (degree larger than the width) receive empty ranges.
pub fn shard_cols(cols: usize, degree: usize) -> Vec<Range<usize>> {
    assert!(degree >= 1, "shard_cols requires degree >= 1");
    let base = cols / degree;
    let extra = cols % degree;
    let mut ranges = Vec::with_capacity(degree);
    let mut start = 0;
    for r in 0..degree {
        let width = base + usize::from(r < extra);
        ranges.push(start..start + width);
        start += width;
    }
    ranges
}

/// Per-shard reliability counters maintained by a [`TpGroup`].
///
/// `jobs` counts sharded GEMM executions charged to the shard (including the inline
/// recomputations that replace a killed shard's work); `kills` counts dispatches the
/// shard was down for; `detections` counts corruptions flagged by the shard's own
/// checksum segment; `failovers` counts recoveries of either kind (the shard's columns
/// recomputed inline while the request kept going).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TpShardStats {
    /// Sharded GEMMs executed on behalf of this shard.
    pub jobs: u64,
    /// Dispatches this shard was killed for (the whole-shard fault scenario).
    pub kills: u64,
    /// Corruptions of this shard's output flagged by its checksum segment.
    pub detections: u64,
    /// Recoveries: the shard's columns recomputed inline without failing the request.
    pub failovers: u64,
}

impl TpShardStats {
    /// Accumulates `other` into `self` (used to fold per-shard stats into group totals).
    pub fn merge(&mut self, other: &TpShardStats) {
        self.jobs += other.jobs;
        self.kills += other.kills;
        self.detections += other.detections;
        self.failovers += other.failovers;
    }
}

/// A whole-shard fault scenario, armed via [`TpGroup::inject_shard_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// The rank is down: it produces nothing for the armed dispatches. The group fails
    /// over by recomputing the shard's columns inline — detection is by construction
    /// (the rank is known-dead), not by checksum.
    Kill,
    /// The shard's output stripe is zeroed after compute, as if the device returned an
    /// empty result. Caught by the shard's checksum segment on the fused path whenever
    /// the stripe's column sums were nonzero.
    Zero,
    /// One element of the shard's output stripe gets a high bit flipped (deterministic
    /// in `seed` and the dispatch counter), modelling a silent datapath corruption.
    /// Always caught by the shard's checksum segment on the fused path.
    Garble {
        /// Seed for the deterministic choice of victim element and bit.
        seed: u64,
    },
}

/// A fault armed on one shard for a bounded number of dispatches.
#[derive(Debug, Clone, Copy)]
struct ArmedFault {
    fault: ShardFault,
    steps_left: usize,
}

/// What the merge loop must do about one shard in the current dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepAction {
    Clean,
    Kill,
    Corrupt(ShardFault),
}

/// A unit of work mailed to a rank thread. `Arc` fields are refcount bumps — dispatching
/// never copies weights or allocates.
struct Job {
    shard: Arc<PackedMatI8>,
    engine: Arc<dyn GemmEngine>,
    checksummed: bool,
    use_packed: bool,
}

/// Mailbox protocol between the dispatcher and one rank thread.
enum RankMail {
    /// No work posted; the rank waits.
    Idle,
    /// Work posted by the dispatcher; the rank takes it and runs.
    Pending(Job),
    /// The rank finished the last job with this status; the dispatcher collects it.
    Done(Result<()>),
    /// The group is shutting down; the rank exits.
    Stop,
}

/// Resident output buffers owned by one rank: grown during warmup, reused forever.
struct RankOutput {
    /// Fused-path destination: the shard's output stripe plus its checksum segments.
    dest: ChecksummedGemm,
    /// Plain-path destination (no checksums requested).
    plain: MatI32,
    /// Operand-checksum scratch for the rank's fused pass.
    etw: Vec<i64>,
}

/// One rank's synchronization cell.
struct RankCell {
    mail: Mutex<RankMail>,
    cv: Condvar,
    out: Mutex<RankOutput>,
}

/// State shared between the dispatcher and the rank threads.
struct TpShared {
    /// The activation, staged once per sharded GEMM ("scatter" = every rank reads the
    /// same resident buffer; column sharding broadcasts the full activation).
    act: RwLock<MatI8>,
    ranks: Vec<RankCell>,
}

/// Dispatcher-side mutable state, behind one mutex so a sharded GEMM is a single
/// critical section: the engine handle, armed faults, per-shard stats and the resident
/// per-dispatch scratch. Rank threads never take this lock.
struct TpCtl {
    engine: Arc<dyn GemmEngine>,
    faults: Vec<Option<ArmedFault>>,
    stats: Vec<TpShardStats>,
    /// Resident per-dispatch scratch (one slot per shard), so planning a dispatch
    /// allocates nothing.
    actions: Vec<StepAction>,
    statuses: Vec<Option<TensorError>>,
    /// Monotonic dispatch counter, folded into the garble victim choice.
    dispatches: u64,
}

/// A pool of persistent simulated tensor-parallel ranks.
///
/// Created once per model (see `realm-llm`'s `ModelConfig::tp_degree`); every
/// [`ShardedLinear`] built against the group reuses the same long-lived rank threads.
/// Dropping the group stops and joins the ranks.
pub struct TpGroup {
    shared: Arc<TpShared>,
    ctl: Mutex<TpCtl>,
    threads: Vec<std::thread::JoinHandle<()>>,
    degree: usize,
}

impl std::fmt::Debug for TpGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpGroup")
            .field("degree", &self.degree)
            .finish_non_exhaustive()
    }
}

impl TpGroup {
    /// Spawns a group of `degree` persistent rank threads that execute sharded GEMMs
    /// through `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize, engine: Arc<dyn GemmEngine>) -> Self {
        assert!(degree >= 1, "a TP group needs at least one rank");
        let shared = Arc::new(TpShared {
            act: RwLock::new(MatI8::zeros(0, 0)),
            ranks: (0..degree)
                .map(|_| RankCell {
                    mail: Mutex::new(RankMail::Idle),
                    cv: Condvar::new(),
                    out: Mutex::new(RankOutput {
                        dest: ChecksummedGemm::empty(),
                        plain: MatI32::zeros(0, 0),
                        etw: Vec::new(),
                    }),
                })
                .collect(),
        });
        let threads = (0..degree)
            .map(|r| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tp-rank-{r}"))
                    .spawn(move || rank_main(&shared, r))
                    .expect("spawn TP rank thread")
            })
            .collect();
        Self {
            shared,
            ctl: Mutex::new(TpCtl {
                engine,
                faults: vec![None; degree],
                stats: vec![TpShardStats::default(); degree],
                actions: vec![StepAction::Clean; degree],
                statuses: (0..degree).map(|_| None).collect(),
                dispatches: 0,
            }),
            threads,
            degree,
        }
    }

    /// Number of ranks (shards) in the group.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Replaces the engine every rank (and the inline failover path) executes with.
    pub fn set_engine(&self, engine: Arc<dyn GemmEngine>) {
        self.ctl.lock().expect("TP ctl poisoned").engine = engine;
    }

    /// Arms a whole-shard fault on `shard` for the next `steps` sharded GEMM dispatches
    /// (each linear-layer GEMM of the owning model counts as one dispatch). Replaces any
    /// fault already armed on that shard; `steps == 0` disarms.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= degree`.
    pub fn inject_shard_fault(&self, shard: usize, fault: ShardFault, steps: usize) {
        assert!(shard < self.degree, "shard {shard} out of range");
        let mut ctl = self.ctl.lock().expect("TP ctl poisoned");
        ctl.faults[shard] = (steps > 0).then_some(ArmedFault {
            fault,
            steps_left: steps,
        });
    }

    /// Disarms every pending shard fault.
    pub fn clear_shard_faults(&self) {
        let mut ctl = self.ctl.lock().expect("TP ctl poisoned");
        ctl.faults.iter_mut().for_each(|f| *f = None);
    }

    /// Snapshot of the per-shard reliability counters. Cold path (allocates).
    pub fn shard_stats(&self) -> Vec<TpShardStats> {
        self.ctl.lock().expect("TP ctl poisoned").stats.clone()
    }

    /// Group totals: every shard's counters folded into one [`TpShardStats`].
    pub fn totals(&self) -> TpShardStats {
        let ctl = self.ctl.lock().expect("TP ctl poisoned");
        let mut t = TpShardStats::default();
        for s in &ctl.stats {
            t.merge(s);
        }
        t
    }

    /// Stages the activation into the shared resident buffer (the one-time "scatter").
    fn stage_activation(&self, a: &MatI8) {
        let mut act = self.shared.act.write().expect("TP activation poisoned");
        act.resize_overwrite(a.rows(), a.cols());
        act.as_mut_slice().copy_from_slice(a.as_slice());
    }

    /// Plans the current dispatch under `ctl`: decides each shard's [`StepAction`] from
    /// the armed faults and decrements their remaining steps.
    fn plan_actions(ctl: &mut TpCtl) {
        ctl.dispatches += 1;
        for r in 0..ctl.faults.len() {
            ctl.actions[r] = match ctl.faults[r].as_mut() {
                None => StepAction::Clean,
                Some(armed) => {
                    let action = match armed.fault {
                        ShardFault::Kill => StepAction::Kill,
                        other => StepAction::Corrupt(other),
                    };
                    armed.steps_left -= 1;
                    if armed.steps_left == 0 {
                        ctl.faults[r] = None;
                    }
                    action
                }
            };
        }
    }

    /// Posts `job` to rank `r` and wakes it.
    fn post(&self, r: usize, job: Job) {
        let cell = &self.shared.ranks[r];
        let mut mail = cell.mail.lock().expect("TP mailbox poisoned");
        debug_assert!(matches!(*mail, RankMail::Idle), "rank {r} re-dispatched");
        *mail = RankMail::Pending(job);
        cell.cv.notify_all();
    }

    /// Blocks until rank `r` reports `Done`, returning its job status and resetting the
    /// mailbox to `Idle`.
    fn collect(&self, r: usize) -> Result<()> {
        let cell = &self.shared.ranks[r];
        let mut mail = cell.mail.lock().expect("TP mailbox poisoned");
        loop {
            match &*mail {
                RankMail::Done(_) => break,
                _ => mail = cell.cv.wait(mail).expect("TP mailbox poisoned"),
            }
        }
        match std::mem::replace(&mut *mail, RankMail::Idle) {
            RankMail::Done(status) => status,
            _ => unreachable!("observed Done above"),
        }
    }
}

impl Drop for TpGroup {
    fn drop(&mut self) {
        for cell in &self.shared.ranks {
            let mut mail = cell.mail.lock().expect("TP mailbox poisoned");
            *mail = RankMail::Stop;
            cell.cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Body of one persistent rank thread: park on the mailbox, run posted jobs against the
/// shared activation into the rank's resident buffers, report status, repeat.
fn rank_main(shared: &TpShared, me: usize) {
    let cell = &shared.ranks[me];
    loop {
        let job = {
            let mut mail = cell.mail.lock().expect("TP mailbox poisoned");
            loop {
                match &*mail {
                    RankMail::Stop => return,
                    RankMail::Pending(_) => break,
                    _ => mail = cell.cv.wait(mail).expect("TP mailbox poisoned"),
                }
            }
            match std::mem::replace(&mut *mail, RankMail::Idle) {
                RankMail::Pending(job) => job,
                _ => unreachable!("observed Pending above"),
            }
        };
        let status = {
            let act = shared.act.read().expect("TP activation poisoned");
            let mut out = cell.out.lock().expect("TP rank output poisoned");
            run_shard_job(&act, &job, &mut out)
        };
        let mut mail = cell.mail.lock().expect("TP mailbox poisoned");
        *mail = RankMail::Done(status);
        cell.cv.notify_all();
    }
}

/// Executes one shard's GEMM (fused-checksum or plain, packed or unpacked) into the
/// rank's resident buffers. Also used inline by the dispatcher for failover recompute.
fn run_shard_job(act: &MatI8, job: &Job, out: &mut RankOutput) -> Result<()> {
    if job.checksummed {
        if job.use_packed {
            job.engine
                .gemm_i8_packed_checksummed_into(act, &job.shard, &mut out.dest, &mut out.etw)
        } else {
            job.engine.gemm_i8_checksummed_into(
                act,
                job.shard.unpacked(),
                &mut out.dest,
                &mut out.etw,
            )
        }
    } else if job.use_packed {
        job.engine
            .gemm_i8_packed_into(act, &job.shard, &mut out.plain)
    } else {
        job.engine
            .gemm_i8_into(act, job.shard.unpacked(), &mut out.plain)
    }
}

/// Column sums of the stripe `cols` of `acc`, written over `out` (`out.len() == width`).
/// The observed-checksum reduction restricted to one shard's columns.
fn stripe_observed(acc: &MatI32, cols: Range<usize>, out: &mut [i64]) {
    out.fill(0);
    for r in 0..acc.rows() {
        let band = &acc.row(r)[cols.clone()];
        for (s, &v) in out.iter_mut().zip(band) {
            *s += v as i64;
        }
    }
}

/// Applies an armed corruption to the stripe `cols` of the merged accumulator.
fn corrupt_stripe(acc: &mut MatI32, cols: Range<usize>, fault: ShardFault, dispatch: u64) {
    let width = cols.len();
    let rows = acc.rows();
    if width == 0 || rows == 0 {
        return;
    }
    match fault {
        ShardFault::Kill => unreachable!("kills never reach the corrupt path"),
        ShardFault::Zero => {
            for r in 0..rows {
                acc.row_mut(r)[cols.clone()].fill(0);
            }
        }
        ShardFault::Garble { seed } => {
            // splitmix64: a deterministic, dependency-free choice of victim and bit.
            let mut x = seed ^ dispatch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let r = (next() % rows as u64) as usize;
            let c = cols.start + (next() % width as u64) as usize;
            let bit = 16 + (next() % 14) as u32; // high enough to matter, never the sign bit
            acc.row_mut(r)[c] ^= 1 << bit;
        }
    }
}

/// A quantized linear layer's weights column-sharded over a [`TpGroup`] — the
/// tensor-parallel execution handle `realm-llm`'s `QuantLinear` holds when
/// `ModelConfig::tp_degree > 1`.
///
/// Each stripe is packed once at shard time and held behind an `Arc`; `forward*` calls
/// scatter the activation once, run every live rank's fused GEMM in parallel, then
/// concatenate output stripes and checksum segments into the caller's destination.
#[derive(Clone)]
pub struct ShardedLinear {
    group: Arc<TpGroup>,
    shards: Vec<Arc<PackedMatI8>>,
    ranges: Vec<Range<usize>>,
    rows: usize,
    cols: usize,
}

impl std::fmt::Debug for ShardedLinear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLinear")
            .field("degree", &self.group.degree())
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("ranges", &self.ranges)
            .finish()
    }
}

impl PartialEq for ShardedLinear {
    fn eq(&self, other: &Self) -> bool {
        // Layer equality is about the sharded weights and layout; the group is an
        // execution resource (two equal models may own distinct rank pools).
        self.group.degree() == other.group.degree()
            && self.ranges == other.ranges
            && self
                .shards
                .iter()
                .zip(&other.shards)
                .all(|(a, b)| a.as_ref() == b.as_ref())
    }
}

impl ShardedLinear {
    /// Shards `weight` column-wise over `group`'s ranks, packing each stripe once.
    pub fn new(group: Arc<TpGroup>, weight: &MatI8) -> Self {
        let (rows, cols) = weight.shape();
        let ranges = shard_cols(cols, group.degree());
        let shards = ranges
            .iter()
            .map(|range| {
                let stripe = MatI8::from_fn(rows, range.len(), |r, c| {
                    *weight.get(r, range.start + c).expect("stripe in bounds")
                });
                Arc::new(PackedMatI8::from_mat(stripe))
            })
            .collect();
        Self {
            group,
            shards,
            ranges,
            rows,
            cols,
        }
    }

    /// The group executing this layer's shards.
    pub fn group(&self) -> &Arc<TpGroup> {
        &self.group
    }

    /// Number of shards (the group's degree).
    pub fn degree(&self) -> usize {
        self.group.degree()
    }

    /// Rows of the logical weight matrix (the GEMM inner dimension `k`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the logical weight matrix (the GEMM output width `n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The column range owned by shard `i`.
    pub fn range(&self, i: usize) -> Range<usize> {
        self.ranges[i].clone()
    }

    /// The packed weight stripe resident on shard `i`.
    pub fn shard(&self, i: usize) -> &PackedMatI8 {
        &self.shards[i]
    }

    /// Total bytes of the packed stripe replicas (load-time memory accounting).
    pub fn packed_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.packed_bytes()).sum()
    }

    fn check(&self, op: &'static str, a: &MatI8) -> Result<()> {
        if a.cols() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: a.shape(),
                rhs: (self.rows, self.cols),
            });
        }
        Ok(())
    }

    /// Sharded counterpart of [`GemmEngine::gemm_i8_checksummed_into`]: scatters `a`
    /// once, runs every live shard's fused-checksum GEMM on its rank, merges output
    /// stripes and checksum segments into `dest`, detects and fails over faulted
    /// shards. Bit-identical to the unsharded fused pass on the whole weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols()` differs from the weight
    /// rows, or propagates the first rank-side engine error.
    pub fn gemm_checksummed_into(
        &self,
        a: &MatI8,
        use_packed: bool,
        dest: &mut ChecksummedGemm,
    ) -> Result<()> {
        self.check("tp_gemm_i8_checksummed", a)?;
        self.run(a, use_packed, true, dest, None)
    }

    /// Sharded counterpart of [`GemmEngine::gemm_i8_into`] (no checksum reductions):
    /// same scatter/merge, plain accumulator stripes. Killed shards still fail over
    /// (the loss is detected by construction); silent corruptions are *not* detected on
    /// this path — exactly like the unsharded unprotected pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols()` differs from the weight
    /// rows, or propagates the first rank-side engine error.
    pub fn gemm_into(&self, a: &MatI8, use_packed: bool, out: &mut MatI32) -> Result<()> {
        self.check("tp_gemm_i8", a)?;
        let mut dest = ChecksummedGemm::empty();
        self.run(a, use_packed, false, &mut dest, Some(out))
    }

    /// Shared dispatch/merge engine behind both public entry points. When `checksummed`
    /// is false the merged stripes land in `plain_out` and `dest` is untouched.
    fn run(
        &self,
        a: &MatI8,
        use_packed: bool,
        checksummed: bool,
        dest: &mut ChecksummedGemm,
        plain_out: Option<&mut MatI32>,
    ) -> Result<()> {
        let degree = self.group.degree();
        let m = a.rows();
        // One sharded GEMM is one critical section: the ctl lock serializes dispatches,
        // carries the armed faults and charges the stats.
        let mut ctl = self.group.ctl.lock().expect("TP ctl poisoned");
        let engine = Arc::clone(&ctl.engine);
        TpGroup::plan_actions(&mut ctl);
        let dispatch_id = ctl.dispatches;
        self.group.stage_activation(a);

        // Scatter: post every live, non-empty shard's job to its rank.
        for r in 0..degree {
            if self.ranges[r].is_empty() || ctl.actions[r] == StepAction::Kill {
                continue;
            }
            self.group.post(
                r,
                Job {
                    shard: Arc::clone(&self.shards[r]),
                    engine: Arc::clone(&engine),
                    checksummed,
                    use_packed,
                },
            );
        }
        // Join: collect every posted rank's status before touching any output, so an
        // early error cannot leave a mailbox in `Done` for the next dispatch.
        for r in 0..degree {
            ctl.statuses[r] = None;
            if self.ranges[r].is_empty() || ctl.actions[r] == StepAction::Kill {
                continue;
            }
            ctl.statuses[r] = self.group.collect(r).err();
        }
        if let Some(err) = ctl.statuses.iter_mut().find_map(|s| s.take()) {
            return Err(err);
        }

        let (acc, expected, observed) = if checksummed {
            dest.prepare(m, self.cols);
            let (acc, expected, observed) = dest.fused_parts_mut();
            (acc, Some(expected), Some(observed))
        } else {
            let out = plain_out.expect("plain path provides an output accumulator");
            out.resize_reset(m, self.cols);
            (out, None, None)
        };
        let (mut expected, mut observed) = (expected, observed);

        // Merge / all-reduce: concatenate output stripes and checksum segments in
        // column order, applying fault handling per shard.
        for r in 0..degree {
            let range = self.ranges[r].clone();
            if range.is_empty() {
                continue;
            }
            let cell = &self.group.shared.ranks[r];
            let mut out = cell.out.lock().expect("TP rank output poisoned");
            match ctl.actions[r] {
                StepAction::Kill => {
                    // The rank is down: recompute its stripe inline from the resident
                    // shard and keep serving. Detection is by construction.
                    let job = Job {
                        shard: Arc::clone(&self.shards[r]),
                        engine: Arc::clone(&engine),
                        checksummed,
                        use_packed,
                    };
                    run_shard_job(a, &job, &mut out)?;
                    merge_stripe(
                        &mut out,
                        checksummed,
                        acc,
                        &mut expected,
                        &mut observed,
                        &range,
                    );
                    let s = &mut ctl.stats[r];
                    s.jobs += 1;
                    s.kills += 1;
                    s.failovers += 1;
                }
                StepAction::Clean | StepAction::Corrupt(_) => {
                    merge_stripe(
                        &mut out,
                        checksummed,
                        acc,
                        &mut expected,
                        &mut observed,
                        &range,
                    );
                    ctl.stats[r].jobs += 1;
                    if let StepAction::Corrupt(fault) = ctl.actions[r] {
                        corrupt_stripe(acc, range.clone(), fault, dispatch_id);
                        let deviates = match (expected.as_mut(), observed.as_mut()) {
                            (Some(exp), Some(obs)) => {
                                // The observed checksum is a property of the actual
                                // output: re-reduce the corrupted stripe, then let the
                                // shard's own segment flag the deviation.
                                stripe_observed(acc, range.clone(), &mut obs[range.clone()]);
                                exp[range.clone()]
                                    .iter()
                                    .zip(&obs[range.clone()])
                                    .any(|(e, o)| e != o)
                            }
                            // Plain path: no checksums, no detection — the corruption
                            // persists exactly as it would on the unsharded pass.
                            _ => false,
                        };
                        if deviates {
                            let job = Job {
                                shard: Arc::clone(&self.shards[r]),
                                engine: Arc::clone(&engine),
                                checksummed,
                                use_packed,
                            };
                            run_shard_job(a, &job, &mut out)?;
                            merge_stripe(
                                &mut out,
                                checksummed,
                                acc,
                                &mut expected,
                                &mut observed,
                                &range,
                            );
                            let s = &mut ctl.stats[r];
                            s.detections += 1;
                            s.failovers += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Copies one rank's output stripe (and, on the fused path, its checksum segments) into
/// the merged destination at the shard's column range.
fn merge_stripe(
    out: &mut RankOutput,
    checksummed: bool,
    acc: &mut MatI32,
    expected: &mut Option<&mut [i64]>,
    observed: &mut Option<&mut [i64]>,
    range: &Range<usize>,
) {
    if checksummed {
        let (racc, rexp, robs) = out.dest.fused_parts_mut();
        for r in 0..acc.rows() {
            acc.row_mut(r)[range.clone()].copy_from_slice(racc.row(r));
        }
        if let Some(expected) = expected {
            expected[range.clone()].copy_from_slice(rexp);
        }
        if let Some(observed) = observed {
            observed[range.clone()].copy_from_slice(robs);
        }
    } else {
        for r in 0..acc.rows() {
            acc.row_mut(r)[range.clone()].copy_from_slice(out.plain.row(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineKind, ReferenceEngine};
    use crate::rng;
    use rand::Rng;

    fn random_mat_i8(seed: u64, rows: usize, cols: usize) -> MatI8 {
        let mut r = rng::seeded(seed);
        MatI8::from_fn(rows, cols, |_, _| r.gen_range(-128i16..=127) as i8)
    }

    fn reference_fused(a: &MatI8, w: &MatI8) -> ChecksummedGemm {
        ReferenceEngine.gemm_i8_checksummed(a, w).unwrap()
    }

    #[test]
    fn shard_cols_balances_ragged_widths() {
        assert_eq!(shard_cols(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(shard_cols(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
        assert_eq!(shard_cols(3, 4), vec![0..1, 1..2, 2..3, 3..3]);
        assert_eq!(shard_cols(0, 2), vec![0..0, 0..0]);
        let ranges = shard_cols(257, 4);
        assert_eq!(ranges.last().unwrap().end, 257);
        assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
    }

    #[test]
    fn sharded_checksummed_matches_unsharded_bit_exact() {
        for kind in EngineKind::ALL {
            let engine = kind.build();
            for degree in [1usize, 2, 3, 4] {
                for (m, k, n) in [(1, 32, 48), (4, 17, 37), (7, 24, 3)] {
                    let a = random_mat_i8(11 + m as u64, m, k);
                    let w = random_mat_i8(23 + n as u64, k, n);
                    let group = Arc::new(TpGroup::new(degree, Arc::clone(&engine)));
                    let layer = ShardedLinear::new(group, &w);
                    let mut dest = ChecksummedGemm::empty();
                    layer.gemm_checksummed_into(&a, true, &mut dest).unwrap();
                    let want = reference_fused(&a, &w);
                    assert_eq!(dest, want, "{kind:?} degree {degree} {m}x{k}x{n}");

                    let mut plain = MatI32::zeros(0, 0);
                    layer.gemm_into(&a, true, &mut plain).unwrap();
                    assert_eq!(&plain, want.acc());
                }
            }
        }
    }

    #[test]
    fn unpacked_path_matches_packed_path() {
        let a = random_mat_i8(5, 3, 29);
        let w = random_mat_i8(6, 29, 21);
        let group = Arc::new(TpGroup::new(3, Arc::new(ReferenceEngine)));
        let layer = ShardedLinear::new(group, &w);
        let mut packed = ChecksummedGemm::empty();
        let mut unpacked = ChecksummedGemm::empty();
        layer.gemm_checksummed_into(&a, true, &mut packed).unwrap();
        layer
            .gemm_checksummed_into(&a, false, &mut unpacked)
            .unwrap();
        assert_eq!(packed, unpacked);
    }

    #[test]
    fn killed_shard_fails_over_bit_exact_and_is_charged() {
        let a = random_mat_i8(7, 2, 16);
        let w = random_mat_i8(8, 16, 30);
        let group = Arc::new(TpGroup::new(4, Arc::new(ReferenceEngine)));
        group.inject_shard_fault(2, ShardFault::Kill, 2);
        let layer = ShardedLinear::new(Arc::clone(&group), &w);
        let want = reference_fused(&a, &w);
        for step in 0..3 {
            let mut dest = ChecksummedGemm::empty();
            layer.gemm_checksummed_into(&a, true, &mut dest).unwrap();
            assert_eq!(dest, want, "step {step}");
        }
        let stats = group.shard_stats();
        assert_eq!(stats[2].kills, 2);
        assert_eq!(stats[2].failovers, 2);
        assert_eq!(stats[2].jobs, 3);
        assert_eq!(stats[0].kills, 0);
        assert_eq!(stats[0].jobs, 3);
        let totals = group.totals();
        assert_eq!(totals.kills, 2);
        assert_eq!(totals.jobs, 3 * 4);
    }

    #[test]
    fn garbled_shard_is_detected_and_recovered_on_the_fused_path() {
        let a = random_mat_i8(9, 3, 24);
        let w = random_mat_i8(10, 24, 40);
        let group = Arc::new(TpGroup::new(2, Arc::new(ReferenceEngine)));
        let layer = ShardedLinear::new(Arc::clone(&group), &w);
        let want = reference_fused(&a, &w);
        group.inject_shard_fault(1, ShardFault::Garble { seed: 0xFEED }, 1);
        let mut dest = ChecksummedGemm::empty();
        layer.gemm_checksummed_into(&a, true, &mut dest).unwrap();
        assert_eq!(
            dest, want,
            "corruption must be healed before the caller sees it"
        );
        let stats = group.shard_stats();
        assert_eq!(stats[1].detections, 1);
        assert_eq!(stats[1].failovers, 1);
        assert_eq!(stats[0].detections, 0);
    }

    #[test]
    fn garbled_shard_persists_on_the_plain_path() {
        let a = random_mat_i8(12, 2, 16);
        let w = random_mat_i8(13, 16, 24);
        let group = Arc::new(TpGroup::new(2, Arc::new(ReferenceEngine)));
        let layer = ShardedLinear::new(Arc::clone(&group), &w);
        group.inject_shard_fault(0, ShardFault::Garble { seed: 7 }, 1);
        let mut faulty = MatI32::zeros(0, 0);
        layer.gemm_into(&a, true, &mut faulty).unwrap();
        let clean = ReferenceEngine.gemm_i8(&a, &w).unwrap();
        assert_ne!(faulty, clean, "no checksums, no detection: fault persists");
        assert_eq!(group.totals().detections, 0);
    }

    #[test]
    fn zeroed_shard_is_detected_when_column_sums_are_nonzero() {
        let a = MatI8::filled(2, 8, 1);
        let w = MatI8::filled(8, 12, 1); // every column sum is 8·m ≠ 0
        let group = Arc::new(TpGroup::new(3, Arc::new(ReferenceEngine)));
        let layer = ShardedLinear::new(Arc::clone(&group), &w);
        group.inject_shard_fault(1, ShardFault::Zero, 1);
        let mut dest = ChecksummedGemm::empty();
        layer.gemm_checksummed_into(&a, true, &mut dest).unwrap();
        assert_eq!(dest, reference_fused(&a, &w));
        assert_eq!(group.shard_stats()[1].detections, 1);
    }

    #[test]
    fn degree_exceeding_width_leaves_empty_shards_idle() {
        let a = random_mat_i8(20, 2, 8);
        let w = random_mat_i8(21, 8, 3);
        let group = Arc::new(TpGroup::new(5, Arc::new(ReferenceEngine)));
        let layer = ShardedLinear::new(Arc::clone(&group), &w);
        let mut dest = ChecksummedGemm::empty();
        layer.gemm_checksummed_into(&a, true, &mut dest).unwrap();
        assert_eq!(dest, reference_fused(&a, &w));
        let stats = group.shard_stats();
        assert_eq!(stats[3].jobs, 0, "empty shard never works");
        assert_eq!(stats[4].jobs, 0);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let group = Arc::new(TpGroup::new(2, Arc::new(ReferenceEngine)));
        let layer = ShardedLinear::new(group, &random_mat_i8(30, 8, 8));
        let a = random_mat_i8(31, 2, 9);
        let mut dest = ChecksummedGemm::empty();
        assert!(layer.gemm_checksummed_into(&a, true, &mut dest).is_err());
    }

    #[test]
    fn sharded_linear_equality_ignores_the_rank_pool() {
        let w = random_mat_i8(40, 12, 10);
        let g1 = Arc::new(TpGroup::new(2, Arc::new(ReferenceEngine)));
        let g2 = Arc::new(TpGroup::new(2, Arc::new(ReferenceEngine)));
        let l1 = ShardedLinear::new(g1, &w);
        let l2 = ShardedLinear::new(g2, &w);
        assert_eq!(l1, l2);
        let g3 = Arc::new(TpGroup::new(3, Arc::new(ReferenceEngine)));
        let l3 = ShardedLinear::new(g3, &w);
        assert_ne!(l1, l3);
    }
}
