//! Pluggable GEMM execution backends with optionally fused ABFT checksums.
//!
//! Every quality/energy number in the ReaLM reproduction is produced by re-running quantized
//! GEMMs under a protection scheme, so the INT8×INT8→INT32 GEMM plus its checksum pass is the
//! hot path of the whole workspace. This module makes that path pluggable:
//!
//! * [`ReferenceEngine`] — the original scalar triple loop ([`crate::gemm::gemm_i8`]), kept
//!   as the bit-exact oracle every other backend is tested against;
//! * [`BlockedEngine`] — a cache-tiled microkernel: `B` is walked in `kc × nc` panels that
//!   stay resident in L1/L2, with the inner loop written over slices so the compiler can
//!   vectorise the i8→i32 widening multiply-accumulate;
//! * [`ParallelEngine`] — the blocked kernel sharded over contiguous row chunks, one thread
//!   per available core (scoped threads; small GEMMs fall through to the blocked kernel);
//! * [`crate::simd::SimdEngine`] / [`crate::simd::SimdParallelEngine`] — the AVX2
//!   microkernel (runtime-detected, portable fallback) and its work-stealing sharded
//!   composition, the default on hosts that support it (see [`EngineKind::auto`]).
//!
//! All backends produce **bit-identical** accumulators: INT32/i64 additions are associative and
//! commutative, so re-tiling and re-sharding the reduction cannot change a single bit (the
//! operand domain keeps every accumulator far from `i32` overflow, see
//! `gemm_i8_handles_saturating_range_without_overflow`).
//!
//! # Fused checksums
//!
//! ABFT compares the observed output column checksum `eᵀ·Y` with the expected checksum
//! `(eᵀ·W)·X` derived from the operands. Computed naively (as `realm-abft`'s
//! `checksum` free functions do) that is three extra full passes over `W`, `X` and `Y` after
//! the GEMM. [`GemmEngine::gemm_i8_checksummed`] instead accumulates `eᵀ·W` and `eᵀ·Y` while
//! the GEMM pass already has the data in registers/L1, and folds the `(eᵀ·W)·X` reduction
//! into the cache-hot `B` panels — mirroring the checksum row/column the paper adds to the
//! systolic array (Fig. 3), which also computes checksums *during* the array pass rather
//! than in a separate sweep. The result is a [`ChecksummedGemm`], which downstream ABFT
//! detectors consume directly instead of re-reading the matrices.

use crate::packed::PackedMatI8;
use crate::{gemm, MatI32, MatI8, Result, TensorError};
use std::str::FromStr;
use std::sync::Arc;

/// A GEMM result bundled with the ABFT column checksums of the pass that produced it.
///
/// The *expected* side `(eᵀ·W)·X` depends only on the operands, which live in ECC-protected
/// memory in the paper's fault model, so it stays valid whatever happens to the accumulator.
/// The *observed* side `eᵀ·Y` is a property of the accumulator contents: mutating the
/// accumulator (via [`ChecksummedGemm::acc_mut`], e.g. by the error injector) marks it stale,
/// and [`ChecksummedGemm::column_deviations`] transparently recomputes it from the current
/// contents — exactly one `m × n` pass, the minimum any detector needs after an injection.
#[derive(Debug, Clone, PartialEq)]
pub struct ChecksummedGemm {
    acc: MatI32,
    expected: Vec<i64>,
    observed: Vec<i64>,
    observed_fresh: bool,
}

impl ChecksummedGemm {
    /// Bundles an accumulator with checksums computed by an engine's fused pass.
    ///
    /// # Panics
    ///
    /// Panics if either checksum length differs from the accumulator's column count.
    pub fn from_parts(acc: MatI32, expected: Vec<i64>, observed: Vec<i64>) -> Self {
        assert_eq!(
            expected.len(),
            acc.cols(),
            "expected checksum length mismatch"
        );
        assert_eq!(
            observed.len(),
            acc.cols(),
            "observed checksum length mismatch"
        );
        Self {
            acc,
            expected,
            observed,
            observed_fresh: true,
        }
    }

    /// The INT32 accumulator.
    pub fn acc(&self) -> &MatI32 {
        &self.acc
    }

    /// Mutable access to the accumulator (error injection, recovery). Marks the observed
    /// checksum stale so later deviation queries recompute it from the mutated contents.
    pub fn acc_mut(&mut self) -> &mut MatI32 {
        self.observed_fresh = false;
        &mut self.acc
    }

    /// Re-asserts that the fused observed checksum still matches the accumulator.
    ///
    /// For callers that took [`ChecksummedGemm::acc_mut`] speculatively but ended up not
    /// modifying anything (e.g. an error injector whose model drew zero faults), this
    /// restores the zero-cost deviation path. Calling it after an actual mutation makes
    /// later deviation queries silently wrong — only assert what is true.
    pub fn assume_observed_fresh(&mut self) {
        self.observed_fresh = true;
    }

    /// An empty bundle whose buffers are filled in by
    /// [`GemmEngine::gemm_i8_checksummed_into`]; the reusable-destination counterpart of
    /// [`ChecksummedGemm::from_parts`].
    pub fn empty() -> Self {
        Self {
            acc: MatI32::zeros(0, 0),
            expected: Vec::new(),
            observed: Vec::new(),
            observed_fresh: true,
        }
    }

    /// Consumes the bundle, returning the accumulator.
    pub fn into_acc(self) -> MatI32 {
        self.acc
    }

    /// Consumes the bundle, returning `(accumulator, expected, observed)` so callers can
    /// recycle the checksum buffers into a [`crate::Workspace`] after the accumulator moves
    /// on through the conversion path.
    pub fn into_parts(self) -> (MatI32, Vec<i64>, Vec<i64>) {
        (self.acc, self.expected, self.observed)
    }

    /// The operand-side checksum `(eᵀ·W)·X`, one entry per output column.
    pub fn expected(&self) -> &[i64] {
        &self.expected
    }

    /// The output-side checksum `eᵀ·Y` of the *current* accumulator contents.
    pub fn observed(&self) -> Vec<i64> {
        if self.observed_fresh {
            self.observed.clone()
        } else {
            observed_col_sums(&self.acc)
        }
    }

    /// Per-column deviations `eᵀ·Y − (eᵀ·W)·X` of the current accumulator contents.
    ///
    /// Zero everywhere for a fault-free, unmutated GEMM.
    pub fn column_deviations(&self) -> Vec<i64> {
        let mut dev = Vec::new();
        self.column_deviations_into(&mut dev);
        dev
    }

    /// [`ChecksummedGemm::column_deviations`] into a caller-provided buffer.
    ///
    /// This is the per-inspection hot path of every protected run: with a detector-owned
    /// scratch buffer the fault-free fast case (fresh observed checksum) is a copy plus a
    /// subtraction and never touches the allocator.
    pub fn column_deviations_into(&self, out: &mut Vec<i64>) {
        if self.observed_fresh {
            out.clear();
            out.extend_from_slice(&self.observed);
        } else {
            observed_col_sums_into(&self.acc, out);
        }
        for (d, e) in out.iter_mut().zip(&self.expected) {
            *d -= e;
        }
    }

    /// Matrix-sum deviation (the sum of all column deviations).
    pub fn msd(&self) -> i64 {
        self.column_deviations().iter().sum()
    }

    /// Reshapes the bundle for an `m × n` fused pass into reused storage: accumulator
    /// zeroed in place, both checksum vectors zeroed to `cols`, observed marked fresh.
    ///
    /// Every fused `gemm_i8_checksummed_into` kernel goes through here so the
    /// four-field consistency invariant lives in exactly one place.
    pub(crate) fn prepare(&mut self, rows: usize, cols: usize) {
        self.acc.resize_reset(rows, cols);
        self.expected.clear();
        self.expected.resize(cols, 0);
        self.observed.clear();
        self.observed.resize(cols, 0);
        self.observed_fresh = true;
    }

    /// Mutable views of the accumulator and checksum buffers for a fused kernel pass.
    /// Unlike [`ChecksummedGemm::acc_mut`] this does **not** mark the observed checksum
    /// stale: the fused pass establishes it together with the accumulator.
    pub(crate) fn fused_parts_mut(&mut self) -> (&mut MatI32, &mut [i64], &mut [i64]) {
        (&mut self.acc, &mut self.expected, &mut self.observed)
    }
}

/// Column sums of an INT32 matrix in `i64` (the observed checksum `eᵀ·Y`).
///
/// Shared with `realm-abft`'s two-pass `checksum` functions so the checksum definition
/// lives in exactly one place.
pub fn observed_col_sums(acc: &MatI32) -> Vec<i64> {
    let mut sums = Vec::new();
    observed_col_sums_into(acc, &mut sums);
    sums
}

/// [`observed_col_sums`] into a caller-provided buffer (cleared and resized in place).
pub fn observed_col_sums_into(acc: &MatI32, sums: &mut Vec<i64>) {
    sums.clear();
    sums.resize(acc.cols(), 0);
    for r in 0..acc.rows() {
        for (s, &v) in sums.iter_mut().zip(acc.row(r)) {
            *s += v as i64;
        }
    }
}

/// Column sums of an INT8 matrix in `i64` (the operand checksum `eᵀ·W`).
///
/// Shared with `realm-abft`'s two-pass `checksum` functions so the checksum definition
/// lives in exactly one place.
pub fn operand_col_sums(a: &MatI8) -> Vec<i64> {
    let mut sums = Vec::new();
    operand_col_sums_into(a, &mut sums);
    sums
}

/// [`operand_col_sums`] into a caller-provided buffer (cleared and resized in place).
pub fn operand_col_sums_into(a: &MatI8, sums: &mut Vec<i64>) {
    sums.clear();
    sums.resize(a.cols(), 0);
    for r in 0..a.rows() {
        for (s, &v) in sums.iter_mut().zip(a.row(r)) {
            *s += v as i64;
        }
    }
}

/// Weighted row combination `expected += Σ_p etw[p] · b[p, :]`, i.e. `(eᵀ·W)·X`.
///
/// Shared with `realm-abft`'s two-pass `checksum` functions so the checksum definition
/// lives in exactly one place.
pub fn accumulate_expected(etw: &[i64], b: &MatI8, expected: &mut [i64]) {
    accumulate_expected_panel(b, etw, expected, (0, etw.len()), (0, b.cols()));
}

/// Checksum accumulators threaded through a fused [`BlockedEngine::run_rows`] pass.
///
/// `etw` is the complete operand checksum `eᵀ·W` (all rows, computed upfront); `expected`
/// receives the `(eᵀ·W)·X` reduction fused into the cache-hot widened `B` panels — software's
/// version of the extra checksum row the paper's systolic array appends to `W` — and
/// `observed` receives `eᵀ·Y` folded in as each output panel is finalised. In a row-sharded
/// run only one shard carries `expected` (the reduction is row-independent and must run
/// exactly once), while every shard accumulates its rows' share of `observed`.
pub(crate) struct FusedChecksums<'a> {
    pub(crate) etw: &'a [i64],
    pub(crate) expected: Option<&'a mut [i64]>,
    pub(crate) observed: &'a mut [i64],
}

/// A GEMM kernel expressed as a pass over a contiguous band of output rows with
/// optionally fused checksums — the unit the shared single-thread and work-stealing
/// orchestration ([`checksummed_into_single`], [`sharded_gemm_i8_into`],
/// [`sharded_checksummed_into`]) composes over, so the subtle dispatch and
/// sharded-checksum-merge logic exists once no matter how many kernels plug in.
pub(crate) trait RowKernel: Sync {
    /// Accumulates `a[row_start..row_end] × b` into `out_band` — the matching rows of the
    /// output, band-local and contiguous (`(row_end - row_start) × b.cols()`) — folding
    /// the checksum reductions into the pass when `fused` is present.
    fn run_rows(
        &self,
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: Option<FusedChecksums<'_>>,
    );
}

/// One panel's share of the `(eᵀ·W)·X` reduction, over the cache-hot `B` panel
/// `[pc, pc_end) × [jc, jc_end)`.
///
/// The splat-weight multiply vectorises well even in `i64`; the function is kept
/// out-of-line so the checksum arithmetic cannot perturb register allocation in the
/// multiply kernel itself.
#[inline(never)]
pub(crate) fn accumulate_expected_panel(
    b: &MatI8,
    etw: &[i64],
    expected: &mut [i64],
    (pc, pc_end): (usize, usize),
    (jc, jc_end): (usize, usize),
) {
    for (q, &weight) in etw[pc..pc_end].iter().enumerate() {
        if weight == 0 {
            continue;
        }
        let b_seg = &b.row(pc + q)[jc..jc_end];
        for (e, &bv) in expected[jc..jc_end].iter_mut().zip(b_seg) {
            *e += weight * bv as i64;
        }
    }
}

/// An interchangeable INT8×INT8→INT32 GEMM execution backend.
///
/// All backends are bit-exact with respect to [`ReferenceEngine`] on both accumulators and
/// checksums (asserted by the differential tests in `tests/backend_parity.rs`), so any
/// engine can execute any part of the workspace — including recovery recomputation — without
/// perturbing a single experiment.
pub trait GemmEngine: std::fmt::Debug + Send + Sync {
    /// Short name used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Multiplies two INT8 matrices producing the INT32 accumulator matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
    fn gemm_i8(&self, a: &MatI8, b: &MatI8) -> Result<MatI32>;

    /// [`GemmEngine::gemm_i8`] writing into caller-provided storage.
    ///
    /// `out` is reshaped in place, reusing its backing allocation when the capacity
    /// suffices — with a [`crate::Workspace`]-pooled accumulator the steady-state decode
    /// loop never touches the allocator. The default implementation falls back to the
    /// allocating path (so exotic backends keep working unchanged); the built-in backends
    /// override it with true in-place kernels. Results are always bit-identical to
    /// [`GemmEngine::gemm_i8`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
    fn gemm_i8_into(&self, a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
        *out = self.gemm_i8(a, b)?;
        Ok(())
    }

    /// [`GemmEngine::gemm_i8_checksummed`] writing into a caller-provided
    /// [`ChecksummedGemm`] (accumulator and both checksum vectors are reshaped in place).
    ///
    /// `etw_scratch` receives the operand checksum `eᵀ·W` (length `a.cols()`); callers on
    /// the hot path hand in a workspace-pooled buffer so the whole fused pass is
    /// allocation-free. The default implementation falls back to the allocating path;
    /// built-in backends override it. Results are bit-identical to
    /// [`GemmEngine::gemm_i8_checksummed`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
    fn gemm_i8_checksummed_into(
        &self,
        a: &MatI8,
        b: &MatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        let _ = &etw_scratch;
        *dest = self.gemm_i8_checksummed(a, b)?;
        Ok(())
    }

    /// Multiplies and returns the result bundled with its ABFT column checksums.
    ///
    /// The default implementation runs the plain GEMM followed by separate checksum passes
    /// (the pre-fusion behaviour); backends with a fused pass override it.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
    fn gemm_i8_checksummed(&self, a: &MatI8, b: &MatI8) -> Result<ChecksummedGemm> {
        self.gemm_i8_checksummed_two_pass(a, b)
    }

    /// Multiplies and derives the checksums in separate passes over `a`, `b` and the output.
    ///
    /// Exposed so benchmarks can compare the fused path against the two-pass path on the
    /// *same* backend.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
    fn gemm_i8_checksummed_two_pass(&self, a: &MatI8, b: &MatI8) -> Result<ChecksummedGemm> {
        let acc = self.gemm_i8(a, b)?;
        let etw = operand_col_sums(a);
        let mut expected = vec![0i64; b.cols()];
        accumulate_expected(&etw, b, &mut expected);
        let observed = observed_col_sums(&acc);
        Ok(ChecksummedGemm::from_parts(acc, expected, observed))
    }

    /// [`GemmEngine::gemm_i8_into`] with a pre-packed B operand — the decode-shape fast
    /// path: `a` is the (skinny) activation matrix, `pb` a static weight matrix packed
    /// once at load time ([`PackedMatI8`]).
    ///
    /// The default implementation multiplies against the row-major original carried by
    /// the pack ([`PackedMatI8::unpacked`]), so exotic backends keep working unchanged
    /// and stay bit-exact; the SIMD engines override it with kernels that stream the
    /// tiles directly. Results are always bit-identical to [`GemmEngine::gemm_i8_into`]
    /// on the unpacked matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols() != pb.rows()`.
    fn gemm_i8_packed_into(&self, a: &MatI8, pb: &PackedMatI8, out: &mut MatI32) -> Result<()> {
        self.gemm_i8_into(a, pb.unpacked(), out)
    }

    /// [`GemmEngine::gemm_i8_checksummed_into`] with a pre-packed B operand.
    ///
    /// The default implementation falls back to the unpacked fused pass (bit-exact by
    /// construction); the SIMD engines override it — for skinny `a` (decode shapes) the
    /// `(eᵀ·W)·X` expected-checksum reduction rides the packed tile stream in-register,
    /// eliminating the second full pass over the weights that the unpacked fused path
    /// pays. Checksums and accumulators are always bit-identical to the unpacked path.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols() != pb.rows()`.
    fn gemm_i8_packed_checksummed_into(
        &self,
        a: &MatI8,
        pb: &PackedMatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        self.gemm_i8_checksummed_into(a, pb.unpacked(), dest, etw_scratch)
    }
}

pub(crate) fn check_packed_compatible(op: &'static str, a: &MatI8, pb: &PackedMatI8) -> Result<()> {
    if a.cols() != pb.rows() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape(),
            rhs: pb.shape(),
        });
    }
    Ok(())
}

pub(crate) fn check_compatible(op: &'static str, a: &MatI8, b: &MatI8) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

/// The original scalar triple loop, kept as the bit-exact oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReferenceEngine;

impl GemmEngine for ReferenceEngine {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn gemm_i8(&self, a: &MatI8, b: &MatI8) -> Result<MatI32> {
        gemm::gemm_i8(a, b)
    }

    fn gemm_i8_into(&self, a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
        gemm::gemm_i8_into(a, b, out)
    }

    fn gemm_i8_checksummed_into(
        &self,
        a: &MatI8,
        b: &MatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        // The reference backend computes the checksums in separate (oracle) passes, all
        // into caller-provided storage: this is the backend the zero-allocation decode
        // test pins down.
        gemm::gemm_i8_into(a, b, &mut dest.acc)?;
        operand_col_sums_into(a, etw_scratch);
        dest.expected.clear();
        dest.expected.resize(b.cols(), 0);
        accumulate_expected(etw_scratch, b, &mut dest.expected);
        observed_col_sums_into(&dest.acc, &mut dest.observed);
        dest.observed_fresh = true;
        Ok(())
    }
}

/// Default depth (rows of `B`) of a cache panel: `kc × nc` i8 elements ≈ 16 KiB, resident
/// in L1 on any modern core.
pub const DEFAULT_KC: usize = 64;
/// Default width (columns of `B`) of a cache panel.
pub const DEFAULT_NC: usize = 256;

/// Cache-tiled i8→i32 microkernel.
///
/// Loop order is `jc` (column panels) → `pc` (depth panels) → `i` (rows) → `p` → `j`, so each
/// `kc × nc` panel of `B` and each `nc`-wide accumulator row segment stay cache-resident for
/// a whole panel's worth of work, and the innermost loop is a slice-to-slice widening
/// multiply-add the compiler can unroll and vectorise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedEngine {
    /// Depth of a `B` panel (rows of `B` per tile).
    pub kc: usize,
    /// Width of a `B` panel (columns of `B` per tile).
    pub nc: usize,
}

impl Default for BlockedEngine {
    fn default() -> Self {
        Self {
            kc: DEFAULT_KC,
            nc: DEFAULT_NC,
        }
    }
}

impl BlockedEngine {
    /// A blocked engine with the default tile sizes.
    pub fn new() -> Self {
        Self::default()
    }

    /// A blocked engine with explicit tile sizes (clamped to at least 1).
    pub fn with_tiles(kc: usize, nc: usize) -> Self {
        Self {
            kc: kc.max(1),
            nc: nc.max(1),
        }
    }

    /// Core tiled loop over a contiguous row range `[row_start, row_end)` of `a`, writing
    /// into `out_band` — the matching rows of the output, band-local and contiguous
    /// (`(row_end - row_start) × n`), so parallel shards can own disjoint `split_at_mut`
    /// bands of one output allocation with no copying at join.
    ///
    /// Within each `jc × pc` panel the depth dimension advances four rows of `B` at a time:
    /// the four rows are widened to `i32` once into a 4-panel scratch (`4 × nc` values,
    /// cache-resident) and every accumulator row segment folds them in with a pure-`i32`
    /// multiply-add — no per-element sign extension in the hot loop and a quarter of the
    /// accumulator load/store traffic of the scalar reference loop. Measured ~1.5× faster
    /// than [`ReferenceEngine`] at 256³ on a generic x86-64 target (more with wider SIMD).
    ///
    /// When `fused` is `Some`, the pass additionally folds the checksum reductions into the
    /// cache-hot data: `(eᵀ·W)·X` accumulates from the freshly widened `B` panels and `eᵀ·Y`
    /// from each finalised output panel, instead of separate sweeps re-reading both matrices
    /// afterwards.
    fn run_rows(
        &self,
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        mut fused: Option<FusedChecksums<'_>>,
    ) {
        let k = a.cols();
        let n = b.cols();
        debug_assert_eq!(out_band.len(), (row_end - row_start) * n);
        let mut widened = vec![0i32; 4 * self.nc.min(n.max(1))];
        let mut jc = 0;
        while jc < n {
            let jc_end = (jc + self.nc).min(n);
            let width = jc_end - jc;
            let mut pc = 0;
            while pc < k {
                let pc_end = (pc + self.kc).min(k);
                let mut p = pc;
                // Quad depth steps over widened B rows.
                while p + 4 <= pc_end {
                    {
                        let (w0, rest) = widened.split_at_mut(width);
                        let (w1, rest) = rest.split_at_mut(width);
                        let (w2, w3) = rest.split_at_mut(width);
                        for (q, wq) in [w0, w1, w2, w3].into_iter().enumerate() {
                            for (wv, &bv) in wq.iter_mut().zip(&b.row(p + q)[jc..jc_end]) {
                                *wv = bv as i32;
                            }
                        }
                    }
                    let (w0, rest) = widened.split_at(width);
                    let (w1, rest) = rest.split_at(width);
                    let (w2, rest) = rest.split_at(width);
                    let w3 = &rest[..width];
                    for i in row_start..row_end {
                        let a_row = a.row(i);
                        let a0 = a_row[p] as i32;
                        let a1 = a_row[p + 1] as i32;
                        let a2 = a_row[p + 2] as i32;
                        let a3 = a_row[p + 3] as i32;
                        if a0 | a1 | a2 | a3 == 0 {
                            continue;
                        }
                        let band_row = (i - row_start) * n;
                        let out_seg = &mut out_band[band_row + jc..band_row + jc_end];
                        for ((((o, &v0), &v1), &v2), &v3) in
                            out_seg.iter_mut().zip(w0).zip(w1).zip(w2).zip(w3)
                        {
                            *o += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
                        }
                    }
                    p += 4;
                }
                // Depth remainder (panel depth not a multiple of 4).
                while p < pc_end {
                    let b_seg = &b.row(p)[jc..jc_end];
                    for i in row_start..row_end {
                        let a_ip = a.row(i)[p] as i32;
                        if a_ip == 0 {
                            continue;
                        }
                        let band_row = (i - row_start) * n;
                        let out_seg = &mut out_band[band_row + jc..band_row + jc_end];
                        for (o, &bv) in out_seg.iter_mut().zip(b_seg) {
                            *o += a_ip * bv as i32;
                        }
                    }
                    p += 1;
                }
                // The checksum row of the augmented GEMM: fold this panel's share of
                // `(eᵀ·W)·X` in while the `B` panel is still cache-hot from the multiply,
                // instead of re-streaming the whole matrix afterwards.
                if let Some(FusedChecksums {
                    etw,
                    expected: Some(expected),
                    ..
                }) = fused.as_mut()
                {
                    accumulate_expected_panel(b, etw, expected, (pc, pc_end), (jc, jc_end));
                }
                pc = pc_end;
            }
            // All depth panels done: the output segment [row_start..row_end) × [jc..jc_end)
            // is final, so fold it into eᵀ·Y while it is still warm.
            if let Some(FusedChecksums { observed, .. }) = fused.as_mut() {
                for i in row_start..row_end {
                    let band_row = (i - row_start) * n;
                    let out_seg = &out_band[band_row + jc..band_row + jc_end];
                    for (s, &v) in observed[jc..jc_end].iter_mut().zip(out_seg) {
                        *s += v as i64;
                    }
                }
            }
            jc = jc_end;
        }
    }
}

impl GemmEngine for BlockedEngine {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm_i8(&self, a: &MatI8, b: &MatI8) -> Result<MatI32> {
        check_compatible("BlockedEngine::gemm_i8", a, b)?;
        let mut out = MatI32::zeros(a.rows(), b.cols());
        self.run_rows(a, b, out.as_mut_slice(), 0, a.rows(), None);
        Ok(out)
    }

    fn gemm_i8_into(&self, a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
        check_compatible("BlockedEngine::gemm_i8", a, b)?;
        out.resize_reset(a.rows(), b.cols());
        self.run_rows(a, b, out.as_mut_slice(), 0, a.rows(), None);
        Ok(())
    }

    fn gemm_i8_checksummed(&self, a: &MatI8, b: &MatI8) -> Result<ChecksummedGemm> {
        let mut dest = ChecksummedGemm::empty();
        let mut etw = Vec::new();
        self.gemm_i8_checksummed_into(a, b, &mut dest, &mut etw)?;
        Ok(dest)
    }

    fn gemm_i8_checksummed_into(
        &self,
        a: &MatI8,
        b: &MatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        checksummed_into_single(
            self,
            "BlockedEngine::gemm_i8_checksummed",
            a,
            b,
            dest,
            etw_scratch,
        )
    }
}

impl RowKernel for BlockedEngine {
    fn run_rows(
        &self,
        a: &MatI8,
        b: &MatI8,
        out_band: &mut [i32],
        row_start: usize,
        row_end: usize,
        fused: Option<FusedChecksums<'_>>,
    ) {
        BlockedEngine::run_rows(self, a, b, out_band, row_start, row_end, fused)
    }
}

/// MAC count below which [`ParallelEngine`] runs the blocked kernel inline: thread spawn and
/// join overhead would dominate the decode-stage GEMV-like shapes.
pub const PARALLEL_MIN_MACS: usize = 1 << 18;

/// Stealable chunks carved per worker: finer than one-chunk-per-worker so a worker that
/// lands on cheap rows (zero-skip makes row cost data-dependent) claims more chunks instead
/// of idling while a statically assigned contiguous band finishes elsewhere.
pub const CHUNKS_PER_WORKER: usize = 4;

/// The blocked kernel sharded over work-stealing row chunks on scoped threads.
///
/// The output rows are carved into [`CHUNKS_PER_WORKER`]× more contiguous chunks than there
/// are workers, and workers claim chunks off a shared atomic counter until none remain. On
/// uniform operands this costs nothing over static contiguous bands; on skewed operands
/// (e.g. activation matrices whose top rows are dense and bottom rows mostly zero, where the
/// kernels' zero-skip makes row cost wildly uneven) it keeps every core busy to the end.
///
/// Rows of the output are independent, and the checksum reductions are exact integer sums,
/// so re-sharding changes nothing: accumulators and checksums are bit-identical to
/// [`ReferenceEngine`] regardless of which worker claims which chunk. Each worker runs the
/// fused blocked pass over its claimed rows (partial `eᵀ·Y`); the partials are summed at
/// join and the shared `(eᵀ·W)·X` reduction is fused into whichever chunk starts at row 0 —
/// it is row-independent and must run exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelEngine {
    inner: BlockedEngine,
    /// Explicit worker count; `None` means one per available core.
    pub threads: Option<usize>,
}

/// One claimable unit of a sharded GEMM: a contiguous row range plus the matching band of
/// the output allocation (a disjoint `split_at_mut` view, so workers write in place).
type RowChunk<'a> = (usize, usize, &'a mut [i32]);

/// Splits `out` into contiguous chunks of at most `chunk_rows` rows, each behind a `Mutex`
/// slot so that whichever worker claims a chunk's index can take ownership of its band.
/// Every slot is locked exactly once (uncontended) by the claiming worker.
fn carve_chunks(
    out: &mut MatI32,
    chunk_rows: usize,
) -> Vec<std::sync::Mutex<Option<RowChunk<'_>>>> {
    let rows = out.rows();
    let n = out.cols();
    let mut chunks = Vec::with_capacity(rows.div_ceil(chunk_rows.max(1)));
    let mut rest = out.as_mut_slice();
    let mut start = 0;
    while start < rows {
        let end = (start + chunk_rows).min(rows);
        let (band, tail) = rest.split_at_mut((end - start) * n);
        chunks.push(std::sync::Mutex::new(Some((start, end, band))));
        rest = tail;
        start = end;
    }
    chunks
}

/// Effective worker count for a row-sharded GEMM: `threads` if pinned, else the
/// `REALM_NUM_THREADS` environment override if set, else one per available core —
/// always clamped to the row count. Shared by [`ParallelEngine`] and
/// [`crate::simd::SimdParallelEngine`].
///
/// The environment override exists so TP and parallel-engine benchmarks are reproducible
/// on shared CI runners whose effective core budget varies run to run; like the hardware
/// probe it is resolved once per process.
pub(crate) fn worker_count(threads: Option<usize>, rows: usize) -> usize {
    // `available_parallelism` re-reads cgroup limits from the filesystem on every call on
    // Linux — tens of microseconds, i.e. longer than an entire decode-shape GEMM. The
    // process's CPU budget does not change mid-run, so resolve it once.
    static AVAILABLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let hw = threads.unwrap_or_else(|| {
        *AVAILABLE.get_or_init(|| {
            std::env::var("REALM_NUM_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        })
    });
    hw.max(1).min(rows.max(1))
}

/// Work-stealing dispatch: carves `out` into fine-grained row chunks and spawns `workers`
/// scoped threads that repeatedly claim the next unclaimed chunk via an atomic counter and
/// run `shard` on it. Each worker's `T` accumulates across all the chunks it claimed
/// (built by `init`, folded by `shard`); the per-worker values are returned at join for
/// the caller to merge. The scheduling layer is kernel-agnostic — [`ParallelEngine`] runs
/// the blocked kernel inside the chunks, [`crate::simd::SimdParallelEngine`] the SIMD
/// microkernel.
pub(crate) fn steal_row_chunks<T: Send>(
    out: &mut MatI32,
    workers: usize,
    init: impl Fn() -> T + Sync,
    shard: impl Fn(&mut T, usize, usize, &mut [i32]) + Sync,
) -> Vec<T> {
    let rows = out.rows();
    let chunk_rows = rows.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let chunks = carve_chunks(out, chunk_rows);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (chunks, next, init, shard) = (&chunks, &next, &init, &shard);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut carry = init();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(slot) = chunks.get(i) else { break };
                        let (s, e, band) = slot
                            .lock()
                            .expect("chunk slot poisoned")
                            .take()
                            .expect("each chunk index is claimed exactly once");
                        shard(&mut carry, s, e, band);
                    }
                    carry
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("GEMM shard panicked"))
            .collect()
    })
}

impl ParallelEngine {
    /// A parallel engine over the default blocked kernel, one worker per core.
    pub fn new() -> Self {
        Self::default()
    }

    /// A parallel engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            inner: BlockedEngine::default(),
            threads: Some(threads.max(1)),
        }
    }
}

/// Single-thread fused-checksum GEMM into caller storage: the shared body of every
/// non-sharded `gemm_i8_checksummed_into` (`eᵀ·W` first in one streaming pass over the
/// small operand, then the `(eᵀ·W)·X` and `eᵀ·Y` reductions ride the kernel pass itself).
pub(crate) fn checksummed_into_single<K: RowKernel>(
    kernel: &K,
    op: &'static str,
    a: &MatI8,
    b: &MatI8,
    dest: &mut ChecksummedGemm,
    etw_scratch: &mut Vec<i64>,
) -> Result<()> {
    check_compatible(op, a, b)?;
    operand_col_sums_into(a, etw_scratch);
    dest.prepare(a.rows(), b.cols());
    let (acc, expected, observed) = dest.fused_parts_mut();
    kernel.run_rows(
        a,
        b,
        acc.as_mut_slice(),
        0,
        a.rows(),
        Some(FusedChecksums {
            etw: etw_scratch,
            expected: Some(expected),
            observed,
        }),
    );
    Ok(())
}

/// Work-stealing sharded GEMM over any [`RowKernel`]: the shared orchestration of
/// [`ParallelEngine`] and [`crate::simd::SimdParallelEngine`]. GEMMs below
/// [`PARALLEL_MIN_MACS`] run the kernel inline without touching thread metadata —
/// decode-shape GEMMs never pay dispatch cost.
pub(crate) fn sharded_gemm_i8_into<K: RowKernel>(
    kernel: &K,
    threads: Option<usize>,
    op: &'static str,
    a: &MatI8,
    b: &MatI8,
    out: &mut MatI32,
) -> Result<()> {
    check_compatible(op, a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    out.resize_reset(m, n);
    if m * k * n < PARALLEL_MIN_MACS {
        kernel.run_rows(a, b, out.as_mut_slice(), 0, m, None);
        return Ok(());
    }
    let workers = worker_count(threads, m);
    if workers <= 1 {
        kernel.run_rows(a, b, out.as_mut_slice(), 0, m, None);
        return Ok(());
    }
    // Workers steal disjoint row chunks of the output and write them in place.
    steal_row_chunks(
        out,
        workers,
        || (),
        |(), s, e, band| {
            kernel.run_rows(a, b, band, s, e, None);
        },
    );
    Ok(())
}

/// Work-stealing sharded fused-checksum GEMM over any [`RowKernel`].
///
/// The operand checksum needs every row, so it runs (cheaply) before the shards; the
/// `(eᵀ·W)·X` reduction is row-independent and is fused into whichever claimed chunk
/// starts at row 0 — exactly one chunk does, whoever steals it. Every shard accumulates
/// its rows' share of `eᵀ·Y`; the partials are summed at join. Per-worker partials still
/// allocate inside the scoped threads — caller-provided scratch cannot cross the spawn —
/// but this path only runs for GEMMs big enough to shard, never the GEMV-like decode
/// shapes the allocation-free loop cares about.
pub(crate) fn sharded_checksummed_into<K: RowKernel>(
    kernel: &K,
    threads: Option<usize>,
    op: &'static str,
    a: &MatI8,
    b: &MatI8,
    dest: &mut ChecksummedGemm,
    etw_scratch: &mut Vec<i64>,
) -> Result<()> {
    check_compatible(op, a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    if m * k * n < PARALLEL_MIN_MACS {
        return checksummed_into_single(kernel, op, a, b, dest, etw_scratch);
    }
    let workers = worker_count(threads, m);
    if workers <= 1 {
        return checksummed_into_single(kernel, op, a, b, dest, etw_scratch);
    }
    operand_col_sums_into(a, etw_scratch);
    let etw: &[i64] = etw_scratch;
    dest.prepare(m, n);
    let (acc, expected, observed) = dest.fused_parts_mut();
    let shards = steal_row_chunks(
        acc,
        workers,
        || (None::<Vec<i64>>, vec![0i64; n]),
        |(shard_expected, shard_observed), s, e, band| {
            let expected_here = if s == 0 {
                *shard_expected = Some(vec![0i64; n]);
                shard_expected.as_deref_mut()
            } else {
                None
            };
            kernel.run_rows(
                a,
                b,
                band,
                s,
                e,
                Some(FusedChecksums {
                    etw,
                    expected: expected_here,
                    observed: shard_observed,
                }),
            );
        },
    );
    for (shard_expected, shard_observed) in shards {
        if let Some(shard_expected) = shard_expected {
            expected.copy_from_slice(&shard_expected);
        }
        for (acc, v) in observed.iter_mut().zip(shard_observed) {
            *acc += v;
        }
    }
    Ok(())
}

impl GemmEngine for ParallelEngine {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn gemm_i8(&self, a: &MatI8, b: &MatI8) -> Result<MatI32> {
        let mut out = MatI32::zeros(0, 0);
        self.gemm_i8_into(a, b, &mut out)?;
        Ok(out)
    }

    fn gemm_i8_into(&self, a: &MatI8, b: &MatI8, out: &mut MatI32) -> Result<()> {
        sharded_gemm_i8_into(
            &self.inner,
            self.threads,
            "ParallelEngine::gemm_i8",
            a,
            b,
            out,
        )
    }

    fn gemm_i8_checksummed(&self, a: &MatI8, b: &MatI8) -> Result<ChecksummedGemm> {
        let mut dest = ChecksummedGemm::empty();
        let mut etw = Vec::new();
        self.gemm_i8_checksummed_into(a, b, &mut dest, &mut etw)?;
        Ok(dest)
    }

    fn gemm_i8_checksummed_into(
        &self,
        a: &MatI8,
        b: &MatI8,
        dest: &mut ChecksummedGemm,
        etw_scratch: &mut Vec<i64>,
    ) -> Result<()> {
        sharded_checksummed_into(
            &self.inner,
            self.threads,
            "ParallelEngine::gemm_i8_checksummed",
            a,
            b,
            dest,
            etw_scratch,
        )
    }
}

/// Selector for a GEMM backend, carried by model and pipeline configurations.
///
/// `Default` resolves to [`EngineKind::auto`]: the SIMD microkernel sharded over
/// work-stealing chunks when the host CPU supports it, the blocked parallel kernel
/// otherwise — so configurations that never mention an engine automatically ride the
/// fastest bit-exact backend available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EngineKind {
    /// The scalar oracle loop.
    Reference,
    /// The cache-tiled single-thread kernel.
    Blocked,
    /// The blocked kernel sharded over work-stealing row chunks.
    Parallel,
    /// The SIMD microkernel (AVX2 with runtime detection, portable fallback otherwise).
    Simd,
    /// The SIMD microkernel sharded over work-stealing row chunks (the workspace default
    /// on hosts with AVX2, see [`EngineKind::auto`]).
    SimdParallel,
}

impl EngineKind {
    /// All selectable backends, in oracle → fastest order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Reference,
        EngineKind::Blocked,
        EngineKind::Parallel,
        EngineKind::Simd,
        EngineKind::SimdParallel,
    ];

    /// Accepted names for [`EngineKind::from_str`], quoted in its error message.
    pub const NAMES: &'static str = "reference (alias: ref), blocked, parallel, simd, \
                                     simd_parallel (alias: simd-parallel)";

    /// The best backend the host supports: [`EngineKind::SimdParallel`] when the AVX2
    /// microkernel will be dispatched (see [`crate::simd::simd_accelerated`]), otherwise
    /// [`EngineKind::Parallel`]. This is what every default configuration resolves to.
    pub fn auto() -> EngineKind {
        if crate::simd::simd_accelerated() {
            EngineKind::SimdParallel
        } else {
            EngineKind::Parallel
        }
    }

    /// Instantiates the backend with its default parameters.
    pub fn build(self) -> Arc<dyn GemmEngine> {
        match self {
            EngineKind::Reference => Arc::new(ReferenceEngine),
            EngineKind::Blocked => Arc::new(BlockedEngine::new()),
            EngineKind::Parallel => Arc::new(ParallelEngine::new()),
            EngineKind::Simd => Arc::new(crate::simd::SimdEngine::new()),
            EngineKind::SimdParallel => Arc::new(crate::simd::SimdParallelEngine::new()),
        }
    }

    /// Short label matching [`GemmEngine::name`].
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Reference => "reference",
            EngineKind::Blocked => "blocked",
            EngineKind::Parallel => "parallel",
            EngineKind::Simd => "simd",
            EngineKind::SimdParallel => "simd_parallel",
        }
    }
}

impl Default for EngineKind {
    fn default() -> Self {
        Self::auto()
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for EngineKind {
    type Err = TensorError;

    fn from_str(s: &str) -> Result<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" | "ref" => Ok(EngineKind::Reference),
            "blocked" => Ok(EngineKind::Blocked),
            "parallel" => Ok(EngineKind::Parallel),
            "simd" => Ok(EngineKind::Simd),
            "simd_parallel" | "simd-parallel" => Ok(EngineKind::SimdParallel),
            other => Err(TensorError::InvalidDimension {
                op: "EngineKind::from_str",
                detail: format!(
                    "unknown GEMM backend '{other}' (expected one of: {})",
                    EngineKind::NAMES
                ),
            }),
        }
    }
}

/// The process-wide default engine — [`EngineKind::auto`], i.e. the SIMD parallel backend
/// on AVX2 hosts — shared so that hot paths do not rebuild thread metadata per call.
pub fn default_engine() -> Arc<dyn GemmEngine> {
    static DEFAULT: std::sync::OnceLock<Arc<dyn GemmEngine>> = std::sync::OnceLock::new();
    DEFAULT.get_or_init(|| EngineKind::auto().build()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use rand::Rng;

    fn random_pair(seed: u64, m: usize, k: usize, n: usize) -> (MatI8, MatI8) {
        let mut r = rng::seeded(seed);
        let a = MatI8::from_fn(m, k, |_, _| r.gen_range(-128i16..=127) as i8);
        let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
        (a, b)
    }

    fn engines() -> Vec<Arc<dyn GemmEngine>> {
        vec![
            Arc::new(ReferenceEngine),
            Arc::new(BlockedEngine::new()),
            Arc::new(BlockedEngine::with_tiles(3, 5)),
            Arc::new(ParallelEngine::new()),
            Arc::new(ParallelEngine::with_threads(3)),
            Arc::new(crate::simd::SimdEngine::new()),
            Arc::new(crate::simd::SimdEngine::portable()),
            Arc::new(crate::simd::SimdParallelEngine::new()),
            Arc::new(crate::simd::SimdParallelEngine::with_threads(3)),
        ]
    }

    #[test]
    fn all_backends_match_reference_accumulators() {
        for (seed, (m, k, n)) in
            [(1, (7, 9, 11)), (2, (16, 64, 32)), (3, (70, 65, 130))].into_iter()
        {
            let (a, b) = random_pair(seed, m, k, n);
            let oracle = ReferenceEngine.gemm_i8(&a, &b).unwrap();
            for engine in engines() {
                assert_eq!(
                    engine.gemm_i8(&a, &b).unwrap(),
                    oracle,
                    "backend {} diverged on {m}x{k}x{n}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn fused_checksums_match_two_pass_checksums() {
        let (a, b) = random_pair(11, 33, 47, 29);
        for engine in engines() {
            let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
            let two_pass = engine.gemm_i8_checksummed_two_pass(&a, &b).unwrap();
            assert_eq!(fused.acc(), two_pass.acc(), "{}", engine.name());
            assert_eq!(fused.expected(), two_pass.expected(), "{}", engine.name());
            assert_eq!(fused.observed(), two_pass.observed(), "{}", engine.name());
            assert!(fused.column_deviations().iter().all(|&d| d == 0));
            assert_eq!(fused.msd(), 0);
        }
    }

    #[test]
    fn mutation_marks_observed_stale_and_deviations_track_it() {
        let (a, b) = random_pair(5, 8, 8, 8);
        let mut result = BlockedEngine::new().gemm_i8_checksummed(&a, &b).unwrap();
        assert!(result.column_deviations().iter().all(|&d| d == 0));
        result.acc_mut()[(2, 3)] = result.acc()[(2, 3)].wrapping_add(1 << 20);
        let dev = result.column_deviations();
        assert_eq!(dev[3], 1 << 20);
        assert!(dev.iter().enumerate().all(|(j, &d)| j == 3 || d == 0));
        assert_eq!(result.msd(), 1 << 20);
    }

    #[test]
    fn shape_mismatch_is_rejected_by_every_backend() {
        let a = MatI8::zeros(2, 3);
        let b = MatI8::zeros(4, 2);
        for engine in engines() {
            assert!(engine.gemm_i8(&a, &b).is_err(), "{}", engine.name());
            assert!(
                engine.gemm_i8_checksummed(&a, &b).is_err(),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn ragged_and_degenerate_shapes_are_bit_exact() {
        for (m, k, n) in [(1, 1, 1), (1, 17, 1), (5, 1, 7), (1, 300, 513), (257, 3, 1)] {
            let (a, b) = random_pair((m * 1000 + k * 10 + n) as u64, m, k, n);
            let oracle = ReferenceEngine
                .gemm_i8_checksummed_two_pass(&a, &b)
                .unwrap();
            for engine in engines() {
                let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
                assert_eq!(fused.acc(), oracle.acc(), "{} {m}x{k}x{n}", engine.name());
                assert_eq!(
                    fused.expected(),
                    oracle.expected(),
                    "{} {m}x{k}x{n}",
                    engine.name()
                );
                assert_eq!(
                    fused.observed(),
                    oracle.observed(),
                    "{} {m}x{k}x{n}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn work_stealing_is_bit_exact_on_skewed_operands() {
        // Top rows dense, bottom rows almost entirely zero: with zero-skip the per-row cost
        // is wildly uneven, which is exactly the shape static contiguous bands idle on. The
        // stolen chunks must still reproduce the oracle bit-for-bit, checksums included.
        let mut r = rng::seeded(99);
        let m = 192;
        let k = 96;
        let n = 64;
        let a = MatI8::from_fn(m, k, |row, _| {
            if row < m / 4 || r.gen_range(0..100) == 0 {
                r.gen_range(-128i16..=127) as i8
            } else {
                0
            }
        });
        let b = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
        let oracle = ReferenceEngine
            .gemm_i8_checksummed_two_pass(&a, &b)
            .unwrap();
        for threads in [1, 2, 3, 7, 64] {
            let engine = ParallelEngine::with_threads(threads);
            assert_eq!(
                engine.gemm_i8(&a, &b).unwrap(),
                *oracle.acc(),
                "{threads} threads"
            );
            let fused = engine.gemm_i8_checksummed(&a, &b).unwrap();
            assert_eq!(fused.acc(), oracle.acc(), "{threads} threads");
            assert_eq!(fused.expected(), oracle.expected(), "{threads} threads");
            assert_eq!(fused.observed(), oracle.observed(), "{threads} threads");
        }
    }

    #[test]
    fn engine_kind_round_trips_and_builds() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.label().parse::<EngineKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.label());
        }
        assert_eq!("ref".parse::<EngineKind>().unwrap(), EngineKind::Reference);
        assert_eq!("simd".parse::<EngineKind>().unwrap(), EngineKind::Simd);
        assert_eq!(
            "simd-parallel".parse::<EngineKind>().unwrap(),
            EngineKind::SimdParallel
        );
        let err = "systolic".parse::<EngineKind>().unwrap_err().to_string();
        for name in ["reference", "blocked", "parallel", "simd", "simd_parallel"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
        // The default is host-dependent: the SIMD parallel backend when the AVX2
        // microkernel dispatches, the blocked parallel backend otherwise.
        assert_eq!(EngineKind::default(), EngineKind::auto());
        let expected = if crate::simd::simd_accelerated() {
            EngineKind::SimdParallel
        } else {
            EngineKind::Parallel
        };
        assert_eq!(EngineKind::auto(), expected);
        assert_eq!(default_engine().name(), EngineKind::auto().label());
    }
}
