//! Pre-packed B-operand (weight) tiles for the decode-shape GEMM fast path.
//!
//! Every decode-step GEMM multiplies a skinny activation matrix against the same static
//! weight matrix, token after token. The unpacked SIMD microkernel re-derives its
//! interleaved register layout from the row-major weights on **every** call: two
//! `vpmovsxbw` widenings plus two `vpunpck` interleaves per 16-column depth pair, and a
//! cross-lane permute per tile retirement. [`PackedMatI8`] performs that data
//! rearrangement exactly once, at model load, storing the weight tiles in the byte order
//! the microkernel consumes:
//!
//! ```text
//! block 0 (output columns 0..16)                 block 1 (columns 16..32)   ...
//! ┌────────────────────────────────────────────┐
//! │ pair 0:  b[0][0] b[1][0] b[0][1] b[1][1] … │  32 bytes: depth pair (0,1),
//! │          b[0][15] b[1][15]                 │  columns interleaved in order
//! │ pair 1:  b[2][0] b[3][0] …                 │  32 bytes: depth pair (2,3)
//! │ ⋮                                          │
//! │ pair K/2−1                                 │
//! └────────────────────────────────────────────┘
//! ```
//!
//! One 32-byte load of a pair row plus two `vpmovsxbw` widenings yields the two
//! `(b[p][j], b[p+1][j])` i16-pair registers with the columns already in **linear** order
//! — the per-GEMM unpacks *and* the retirement permute disappear, at the same memory
//! bandwidth as the unpacked walk (the tiles stay i8; widening to i16 at pack time would
//! double the bytes streamed per GEMM, a loss for memory-bound GEMV shapes).
//!
//! The depth is zero-padded to an even count and the columns to a multiple of
//! [`PACK_BLOCK_COLS`], so kernels run whole blocks unconditionally; the padding lanes
//! multiply against zeros and the partial final block is retired through a stack tile.
//!
//! # Pack-time checksums
//!
//! Packing also precomputes the column sums `eᵀ·W` of the matrix ([`PackedMatI8::col_sums`]).
//! They serve as a pack-time integrity reference for the packed replica itself:
//! `realm-abft`'s `packed_weight_deviations` re-reduces the tiles
//! ([`PackedMatI8::tile_col_sums_into`]) and compares against the stored sums, detecting
//! corruption of the packed buffer — the stored-weight fault class — without touching the
//! row-major original.
//!
//! # Lifetime and ownership
//!
//! A `PackedMatI8` owns both representations: the row-major [`MatI8`]
//! ([`PackedMatI8::unpacked`], used by default-engine fallbacks, hook callbacks and the
//! large-M expected-checksum stream) and the tile buffer. Both are **load-time**
//! allocations owned by the layer that packs its weights — never
//! [`crate::Workspace`] scratch — so the steady-state decode loop stays allocation-free
//! exactly as before (proven by `tests/zero_alloc.rs`).

use crate::MatI8;

/// Output columns per packed block — matches the SIMD register tile width
/// ([`crate::simd::SIMD_TILE_COLS`]).
pub const PACK_BLOCK_COLS: usize = 16;

/// Bytes per depth pair within one packed block: two interleaved i8 rows of
/// [`PACK_BLOCK_COLS`] columns.
pub const PACK_PAIR_BYTES: usize = 2 * PACK_BLOCK_COLS;

/// An INT8 matrix pre-packed as the B operand of the SIMD GEMM microkernels, with its
/// pack-time column checksums. See the module docs for the layout.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PackedMatI8 {
    unpacked: MatI8,
    tiles: Vec<i8>,
    padded_k: usize,
    col_sums: Vec<i64>,
}

impl PackedMatI8 {
    /// Packs a matrix, taking ownership of the row-major original (kept alongside the
    /// tiles for fallback paths and hook callbacks).
    pub fn from_mat(unpacked: MatI8) -> Self {
        let (k, n) = unpacked.shape();
        let padded_k = k + (k & 1);
        let blocks = n.div_ceil(PACK_BLOCK_COLS);
        let pairs = padded_k / 2;
        let mut tiles = vec![0i8; blocks * pairs * PACK_PAIR_BYTES];
        for blk in 0..blocks {
            let base = blk * pairs * PACK_PAIR_BYTES;
            for pair in 0..pairs {
                let p = 2 * pair;
                let row0 = unpacked.row(p);
                let row1 = (p + 1 < k).then(|| unpacked.row(p + 1));
                let chunk =
                    &mut tiles[base + pair * PACK_PAIR_BYTES..base + (pair + 1) * PACK_PAIR_BYTES];
                for lane in 0..PACK_BLOCK_COLS {
                    let j = blk * PACK_BLOCK_COLS + lane;
                    if j >= n {
                        break;
                    }
                    chunk[2 * lane] = row0[j];
                    chunk[2 * lane + 1] = row1.map_or(0, |r| r[j]);
                }
            }
        }
        let col_sums = crate::engine::operand_col_sums(&unpacked);
        Self {
            unpacked,
            tiles,
            padded_k,
            col_sums,
        }
    }

    /// Packs a copy of `b` (the borrowing counterpart of [`PackedMatI8::from_mat`]).
    pub fn pack(b: &MatI8) -> Self {
        Self::from_mat(b.clone())
    }

    /// The row-major original the tiles were derived from.
    pub fn unpacked(&self) -> &MatI8 {
        &self.unpacked
    }

    /// Rows of the logical matrix (the GEMM inner dimension `k`).
    pub fn rows(&self) -> usize {
        self.unpacked.rows()
    }

    /// Columns of the logical matrix (the GEMM output width `n`).
    pub fn cols(&self) -> usize {
        self.unpacked.cols()
    }

    /// Logical `(rows, cols)` shape.
    pub fn shape(&self) -> (usize, usize) {
        self.unpacked.shape()
    }

    /// The depth rounded up to an even pair count (odd `k` is padded with a zero row).
    pub fn padded_k(&self) -> usize {
        self.padded_k
    }

    /// Number of 16-column packed blocks (the last one may be column-padded).
    pub fn blocks(&self) -> usize {
        self.cols().div_ceil(PACK_BLOCK_COLS)
    }

    /// Bytes from the start of one block to the start of the next.
    pub fn block_stride(&self) -> usize {
        (self.padded_k / 2) * PACK_PAIR_BYTES
    }

    /// The interleaved tile buffer (see the module docs for the layout).
    pub fn tiles(&self) -> &[i8] {
        &self.tiles
    }

    /// Mutable access to the tile buffer, for fault-injection studies that corrupt the
    /// packed replica. Mutating tiles desynchronizes them from [`PackedMatI8::unpacked`]
    /// and from the pack-time [`PackedMatI8::col_sums`] — which is exactly what
    /// `realm-abft`'s packed-weight audit detects.
    pub fn tiles_mut(&mut self) -> &mut [i8] {
        &mut self.tiles
    }

    /// Pack-time column checksums `eᵀ·W` of the logical matrix, one entry per column.
    pub fn col_sums(&self) -> &[i64] {
        &self.col_sums
    }

    /// Size of the packed replica in bytes (load-time memory accounting).
    pub fn packed_bytes(&self) -> usize {
        self.tiles.len()
    }

    /// Recomputes the column sums `eᵀ·W` from the **tiles** (not the row-major original)
    /// into `out`. For an uncorrupted pack this equals [`PackedMatI8::col_sums`] exactly;
    /// any byte flipped in the packed buffer shows up as a deviation in its column.
    pub fn tile_col_sums_into(&self, out: &mut Vec<i64>) {
        let n = self.cols();
        out.clear();
        out.resize(n, 0);
        let stride = self.block_stride();
        let pairs = self.padded_k / 2;
        for blk in 0..self.blocks() {
            let jc = blk * PACK_BLOCK_COLS;
            let width = PACK_BLOCK_COLS.min(n - jc);
            let sums = &mut out[jc..jc + width];
            for pair in 0..pairs {
                let base = blk * stride + pair * PACK_PAIR_BYTES;
                let chunk = &self.tiles[base..base + PACK_PAIR_BYTES];
                for (s, lane) in sums.iter_mut().zip(chunk.chunks_exact(2)) {
                    *s += lane[0] as i64 + lane[1] as i64;
                }
            }
        }
    }
}

impl From<MatI8> for PackedMatI8 {
    fn from(m: MatI8) -> Self {
        Self::from_mat(m)
    }
}

impl From<&MatI8> for PackedMatI8 {
    fn from(m: &MatI8) -> Self {
        Self::pack(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use rand::Rng;

    fn random_mat(seed: u64, k: usize, n: usize) -> MatI8 {
        let mut r = rng::seeded(seed);
        MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8)
    }

    #[test]
    fn layout_interleaves_depth_pairs_in_linear_column_order() {
        let b = random_mat(7, 6, 37);
        let pb = PackedMatI8::pack(&b);
        assert_eq!(pb.padded_k(), 6);
        assert_eq!(pb.blocks(), 3);
        assert_eq!(pb.block_stride(), 3 * PACK_PAIR_BYTES);
        for blk in 0..pb.blocks() {
            for pair in 0..pb.padded_k() / 2 {
                let base = blk * pb.block_stride() + pair * PACK_PAIR_BYTES;
                for lane in 0..PACK_BLOCK_COLS {
                    let j = blk * PACK_BLOCK_COLS + lane;
                    let (want0, want1) = if j < b.cols() {
                        (b[(2 * pair, j)], b[(2 * pair + 1, j)])
                    } else {
                        (0, 0)
                    };
                    assert_eq!(pb.tiles()[base + 2 * lane], want0, "blk {blk} pair {pair}");
                    assert_eq!(pb.tiles()[base + 2 * lane + 1], want1);
                }
            }
        }
    }

    #[test]
    fn odd_depth_pads_the_final_pair_with_zeros() {
        let b = random_mat(8, 5, 16);
        let pb = PackedMatI8::pack(&b);
        assert_eq!(pb.padded_k(), 6);
        let last_pair = &pb.tiles()[2 * PACK_PAIR_BYTES..3 * PACK_PAIR_BYTES];
        for lane in 0..PACK_BLOCK_COLS {
            assert_eq!(last_pair[2 * lane], b[(4, lane)]);
            assert_eq!(last_pair[2 * lane + 1], 0, "padded depth row must be zero");
        }
    }

    #[test]
    fn pack_time_col_sums_match_the_engine_definition() {
        let b = random_mat(9, 23, 31);
        let pb = PackedMatI8::pack(&b);
        assert_eq!(
            pb.col_sums(),
            crate::engine::operand_col_sums(&b).as_slice()
        );
        let mut from_tiles = Vec::new();
        pb.tile_col_sums_into(&mut from_tiles);
        assert_eq!(from_tiles.as_slice(), pb.col_sums());
    }

    #[test]
    fn tile_col_sums_expose_packed_buffer_corruption() {
        let b = random_mat(10, 8, 20);
        let mut pb = PackedMatI8::pack(&b);
        // Flip one byte in the second block (columns 16..20): exactly one column deviates.
        let victim = pb.block_stride() + 2; // block 1, pair 0, lane 1, depth row 0 => column 17
        pb.tiles_mut()[victim] = pb.tiles()[victim].wrapping_add(3);
        let mut from_tiles = Vec::new();
        pb.tile_col_sums_into(&mut from_tiles);
        for (j, (&t, &s)) in from_tiles.iter().zip(pb.col_sums()).enumerate() {
            if j == 17 {
                assert_eq!(t - s, 3);
            } else {
                assert_eq!(t, s, "column {j} must be untouched");
            }
        }
    }

    #[test]
    fn degenerate_shapes_pack_without_panicking() {
        for (k, n) in [(0, 0), (0, 5), (5, 0), (1, 1), (1, 16), (2, 17)] {
            let b = random_mat((k * 100 + n) as u64, k, n);
            let pb = PackedMatI8::pack(&b);
            assert_eq!(pb.shape(), (k, n));
            assert_eq!(pb.tiles().len(), pb.blocks() * pb.block_stride());
            assert_eq!(pb.col_sums().len(), n);
        }
    }
}
