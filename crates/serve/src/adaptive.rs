//! Runtime-adaptive protection: escalation, hysteresis and protection-first load shedding.
//!
//! A static deployment picks one protection scheme per request and lives with it: pay
//! classical ABFT's throughput cost everywhere, or accept statistical ABFT's residual risk
//! everywhere. The [`AdaptiveController`] moves protection at runtime instead, using the
//! per-slot detection attribution the shared [`realm_core::SchemeProtector`] already
//! maintains as a *fault-rate sensor*:
//!
//! ```text
//!                 window detections ≥ elevate          window detections ≥ escalate
//!        ┌──────┐ ───────────────────────────▶ ┌──────────┐ ────────────────────────▶ ┌───────────┐
//!        │ Calm │                              │ Elevated │                           │ Escalated │
//!        └──────┘ ◀─────────────────────────── └──────────┘ ◀──────────────────────── └───────────┘
//!                   clean_window_steps clean     clean_window_steps clean
//!        (every transition additionally gated by hysteresis_steps since the last one)
//! ```
//!
//! * **Calm** — the request's own policy stands; nothing is overridden.
//! * **Elevated** — the *sensitive* components (`O`, `FC2`, `Down` under default regions —
//!   see [`RegionAssignment::sensitive_components`]) are overlaid with the escalation
//!   scheme for the whole batch. Spatial escalation first: the components whose critical
//!   regions tolerate no sporadic error get the stricter detector before anything else.
//! * **Escalated** — additionally, the slot's own *sequence* scheme is raised to the
//!   escalation scheme, so its per-sequence attention GEMMs and its share of the
//!   batch-stacked strictest-scheme escalation run fully classical.
//!
//! De-escalation retraces the same ladder one stage per clean window — resilient coverage
//! is given up first, the sensitive overlay last — and the hysteresis gate bounds the
//! transition rate of every slot to at most one per `hysteresis_steps`, so an alternating
//! fault pattern can never make the policy flap.
//!
//! **Protection-first load shedding.** When the queue's token-age approaches the 429 SLO,
//! the controller sheds *protection* before traffic: the resilient components are overlaid
//! down to [`AdaptiveConfig::shed_floor`], buying back the checksum bandwidth, and the
//! overlay is lifted the moment pressure clears. The sensitive set and the resilient set
//! are disjoint, so an escalation overlay and a shed overlay compose without conflict —
//! under simultaneous burst and overload the engine still runs classical detection exactly
//! where the paper's sensitivity analysis says faults become visible.

use realm_core::protection::RegionAssignment;
use realm_llm::Component;
use realm_systolic::ProtectionScheme;
use std::collections::VecDeque;

/// Configuration of the [`AdaptiveController`].
///
/// The default is **disabled**: an engine built from `AdaptiveConfig::default()` behaves
/// bit-identically to one without a controller. [`AdaptiveConfig::enabled`] turns the
/// policy machine on with thresholds sized for the small serving batches of this codebase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Master switch; `false` makes the controller a transparent no-op.
    pub enabled: bool,
    /// Sliding detection-window length in engine steps.
    pub window_steps: u64,
    /// Window detections at which a Calm slot becomes Elevated.
    pub elevate_detections: u64,
    /// Window detections at which an Elevated slot becomes Escalated.
    pub escalate_detections: u64,
    /// Consecutive clean (zero-detection) steps before a slot steps down one stage.
    pub clean_window_steps: u64,
    /// Minimum steps between two transitions of the same slot (the first is free).
    pub hysteresis_steps: u64,
    /// The scheme escalation raises protection to (sequence scheme and sensitive-component
    /// overlay alike). Classical ABFT by default: full checksum comparison, recovery on
    /// any mismatch.
    pub escalation_scheme: ProtectionScheme,
    /// Queue token-age at which protection shedding arms; `0` disables shedding.
    ///
    /// A front end sheds *traffic* (429) at its own SLO; setting this below that SLO
    /// sheds resilient-component *protection* first, so checksum bandwidth is given back
    /// before any request is refused.
    pub shed_pressure_tokens: u64,
    /// The scheme resilient components are overlaid down to while shedding is active.
    pub shed_floor: ProtectionScheme,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            window_steps: 16,
            elevate_detections: 3,
            escalate_detections: 8,
            clean_window_steps: 16,
            hysteresis_steps: 8,
            escalation_scheme: ProtectionScheme::ClassicalAbft,
            shed_pressure_tokens: 0,
            shed_floor: ProtectionScheme::None,
        }
    }
}

impl AdaptiveConfig {
    /// The default thresholds with the controller switched on.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Arms protection-first load shedding: once the queue's token-age reaches
    /// `pressure_tokens`, resilient components drop to `floor` until pressure clears.
    pub fn with_shed(mut self, pressure_tokens: u64, floor: ProtectionScheme) -> Self {
        self.shed_pressure_tokens = pressure_tokens;
        self.shed_floor = floor;
        self
    }
}

/// Where a slot sits on the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtectionStage {
    /// No recent detection burst: the request's own policy stands.
    Calm,
    /// Detection burst observed: sensitive components run the escalation scheme.
    Elevated,
    /// Sustained burst: the slot's sequence scheme is raised to the escalation scheme too.
    Escalated,
}

/// Per-slot detection history and ladder position.
#[derive(Debug, Clone)]
struct SlotState {
    stage: ProtectionStage,
    /// Per-step detection counts over the last `window_steps` steps.
    window: VecDeque<u64>,
    /// Running sum of `window`.
    window_sum: u64,
    /// Consecutive zero-detection steps.
    clean_streak: u64,
    /// Step of the slot's last stage transition (hysteresis gate).
    last_transition: Option<u64>,
    /// Escalations charged to the slot's current occupant (reported in its summary).
    occupant_escalations: u64,
}

impl SlotState {
    fn new() -> Self {
        Self {
            stage: ProtectionStage::Calm,
            window: VecDeque::new(),
            window_sum: 0,
            clean_streak: 0,
            last_transition: None,
            occupant_escalations: 0,
        }
    }
}

/// The runtime policy machine: one escalation ladder per batch slot plus a global
/// protection-shedding flag, driven once per engine step by
/// [`AdaptiveController::observe_step`]. See the [module documentation](self) for the
/// state machine and its semantics.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    slots: Vec<SlotState>,
    /// Components the escalation overlay strengthens (θ_freq < 1 under their regions).
    sensitive: Vec<Component>,
    /// The complement: components the shed overlay weakens first.
    resilient: Vec<Component>,
    shed_active: bool,
    escalations: u64,
    deescalations: u64,
    shed_steps: u64,
}

impl AdaptiveController {
    /// A controller for `slots` batch slots whose spatial split (sensitive vs. resilient
    /// components) is derived from `regions`.
    pub fn new(slots: usize, config: AdaptiveConfig, regions: &RegionAssignment) -> Self {
        let sensitive = regions.sensitive_components();
        let resilient = Component::ALL
            .iter()
            .copied()
            .filter(|c| !sensitive.contains(c))
            .collect();
        Self {
            config,
            slots: (0..slots).map(|_| SlotState::new()).collect(),
            sensitive,
            resilient,
            shed_active: false,
            escalations: 0,
            deescalations: 0,
            shed_steps: 0,
        }
    }

    /// Whether the policy machine is live (`false` makes every hook a no-op).
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration the controller runs.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Feeds one engine step's observations and advances the policy machine. Returns
    /// `true` when the protection assignment changed and the engine must re-announce
    /// schemes to the protector.
    ///
    /// `detections[slot]` is the number of detections the protector charged to the slot
    /// *this step* (the attribution delta), `occupied[slot]` whether a sequence currently
    /// holds it, and `queue_pressure_tokens` the token-age of the oldest queued request
    /// (`None` when the queue is empty).
    pub fn observe_step(
        &mut self,
        step: u64,
        detections: &[u64],
        occupied: &[bool],
        queue_pressure_tokens: Option<u64>,
    ) -> bool {
        if !self.config.enabled {
            return false;
        }
        let mut changed = false;
        for slot in 0..self.slots.len() {
            let charged = detections.get(slot).copied().unwrap_or(0);
            if !occupied.get(slot).copied().unwrap_or(false) {
                continue;
            }
            changed |= self.advance_slot(slot, step, charged);
        }
        let want_shed = self.config.shed_pressure_tokens > 0
            && queue_pressure_tokens.unwrap_or(0) >= self.config.shed_pressure_tokens;
        if want_shed != self.shed_active {
            self.shed_active = want_shed;
            changed = true;
        }
        if self.shed_active {
            self.shed_steps += 1;
        }
        changed
    }

    /// Advances one occupied slot's ladder for a step charged with `charged` detections.
    fn advance_slot(&mut self, slot: usize, step: u64, charged: u64) -> bool {
        let window_len = self.config.window_steps.max(1) as usize;
        let state = &mut self.slots[slot];
        state.window.push_back(charged);
        state.window_sum += charged;
        while state.window.len() > window_len {
            state.window_sum -= state.window.pop_front().expect("window is non-empty");
        }
        if charged == 0 {
            state.clean_streak += 1;
        } else {
            state.clean_streak = 0;
        }
        let gate_open = state
            .last_transition
            .is_none_or(|last| step.saturating_sub(last) >= self.config.hysteresis_steps);
        if !gate_open {
            return false;
        }
        let up = match state.stage {
            ProtectionStage::Calm => state.window_sum >= self.config.elevate_detections,
            ProtectionStage::Elevated => state.window_sum >= self.config.escalate_detections,
            ProtectionStage::Escalated => false,
        };
        if up {
            state.stage = match state.stage {
                ProtectionStage::Calm => ProtectionStage::Elevated,
                _ => ProtectionStage::Escalated,
            };
            state.last_transition = Some(step);
            state.clean_streak = 0;
            state.occupant_escalations += 1;
            self.escalations += 1;
            return true;
        }
        if state.stage != ProtectionStage::Calm
            && state.clean_streak >= self.config.clean_window_steps
        {
            state.stage = match state.stage {
                ProtectionStage::Escalated => ProtectionStage::Elevated,
                _ => ProtectionStage::Calm,
            };
            state.last_transition = Some(step);
            state.clean_streak = 0;
            // Forget the burst that drove the slot up: a de-escalation earned by a full
            // clean window must stick until *new* detections arrive, not be undone by
            // stale window entries the moment the hysteresis gate reopens.
            state.window.clear();
            state.window_sum = 0;
            self.deescalations += 1;
            return true;
        }
        false
    }

    /// The sequence scheme `slot` should announce to the protector, given the scheme its
    /// occupant `requested`. Escalated slots run the stricter of the request's scheme and
    /// the escalation scheme; adaptation strengthens sequence protection, never weakens it.
    pub fn slot_scheme(&self, slot: usize, requested: ProtectionScheme) -> ProtectionScheme {
        if !self.config.enabled {
            return requested;
        }
        match self.slots.get(slot).map(|s| s.stage) {
            Some(ProtectionStage::Escalated) => {
                if self.config.escalation_scheme.strictness() > requested.strictness() {
                    self.config.escalation_scheme
                } else {
                    requested
                }
            }
            _ => requested,
        }
    }

    /// The per-component overlay the engine should install on the shared protector:
    /// the escalation overlay on the sensitive components while any slot is at least
    /// Elevated, plus the shed overlay on the resilient components while shedding is
    /// active. The two sets are disjoint, so the overlays never conflict.
    pub fn component_overlay(&self) -> Vec<(Component, ProtectionScheme)> {
        let mut overlay = Vec::new();
        if !self.config.enabled {
            return overlay;
        }
        if self
            .slots
            .iter()
            .any(|s| s.stage >= ProtectionStage::Elevated)
        {
            overlay.extend(
                self.sensitive
                    .iter()
                    .map(|&c| (c, self.config.escalation_scheme)),
            );
        }
        if self.shed_active {
            overlay.extend(self.resilient.iter().map(|&c| (c, self.config.shed_floor)));
        }
        overlay
    }

    /// Retires `slot`'s occupant: returns the escalations charged to it (for its
    /// [`RequestSummary`](crate::RequestSummary)) and resets the slot's ladder to Calm
    /// without counting a de-escalation — the sequence that earned the stage is gone.
    pub fn retire_slot(&mut self, slot: usize) -> u64 {
        let Some(state) = self.slots.get_mut(slot) else {
            return 0;
        };
        let charged = state.occupant_escalations;
        *state = SlotState::new();
        charged
    }

    /// The ladder position of `slot` (Calm for out-of-range slots).
    pub fn stage(&self, slot: usize) -> ProtectionStage {
        self.slots
            .get(slot)
            .map_or(ProtectionStage::Calm, |s| s.stage)
    }

    /// `true` while resilient-component protection is shed under queue pressure.
    pub fn shed_active(&self) -> bool {
        self.shed_active
    }

    /// Stage-up transitions across all slots since construction.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Stage-down transitions across all slots since construction.
    pub fn deescalations(&self) -> u64 {
        self.deescalations
    }

    /// Steps spent with the shed overlay active.
    pub fn shed_steps(&self) -> u64 {
        self.shed_steps
    }

    /// The components the escalation overlay strengthens (most-sensitive split).
    pub fn sensitive_components(&self) -> &[Component] {
        &self.sensitive
    }

    /// The components the shed overlay weakens first.
    pub fn resilient_components(&self) -> &[Component] {
        &self.resilient
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(config: AdaptiveConfig) -> AdaptiveController {
        AdaptiveController::new(2, config, &RegionAssignment::new())
    }

    fn fast_config() -> AdaptiveConfig {
        AdaptiveConfig {
            enabled: true,
            window_steps: 4,
            elevate_detections: 2,
            escalate_detections: 4,
            clean_window_steps: 3,
            hysteresis_steps: 2,
            ..AdaptiveConfig::default()
        }
    }

    /// Drives slot 0 of `c` for one step with `charged` detections.
    fn feed(c: &mut AdaptiveController, step: u64, charged: u64) -> bool {
        c.observe_step(step, &[charged, 0], &[true, false], None)
    }

    #[test]
    fn disabled_controller_is_transparent() {
        let mut c = controller(AdaptiveConfig::default());
        assert!(!c.is_enabled());
        for step in 1..=20 {
            assert!(!feed(&mut c, step, 5), "disabled controller never reacts");
        }
        assert_eq!(c.stage(0), ProtectionStage::Calm);
        assert!(c.component_overlay().is_empty());
        assert_eq!(
            c.slot_scheme(0, ProtectionScheme::None),
            ProtectionScheme::None
        );
        assert_eq!(c.escalations(), 0);
    }

    #[test]
    fn detection_burst_climbs_the_ladder_stage_by_stage() {
        let mut c = controller(fast_config());
        // Step 1: two detections cross the elevate threshold — first transition is free.
        assert!(feed(&mut c, 1, 2));
        assert_eq!(c.stage(0), ProtectionStage::Elevated);
        // Step 2: window holds 4 detections (escalate threshold) but hysteresis gates.
        assert!(!feed(&mut c, 2, 2));
        assert_eq!(c.stage(0), ProtectionStage::Elevated);
        // Step 3: gate reopens (2 steps since step 1); the hot window escalates.
        assert!(feed(&mut c, 3, 1));
        assert_eq!(c.stage(0), ProtectionStage::Escalated);
        assert_eq!(c.escalations(), 2);
        assert_eq!(c.deescalations(), 0);
        // Escalated slots force the stricter sequence scheme, Calm slots never do.
        assert_eq!(
            c.slot_scheme(0, ProtectionScheme::StatisticalAbft),
            ProtectionScheme::ClassicalAbft
        );
        assert_eq!(
            c.slot_scheme(1, ProtectionScheme::StatisticalAbft),
            ProtectionScheme::StatisticalAbft
        );
        // A request already stricter than the escalation scheme keeps its own scheme.
        assert_eq!(
            c.slot_scheme(0, ProtectionScheme::ClassicalAbft),
            ProtectionScheme::ClassicalAbft
        );
    }

    #[test]
    fn clean_window_steps_back_down_one_stage_at_a_time() {
        let mut c = controller(fast_config());
        feed(&mut c, 1, 2);
        feed(&mut c, 2, 2);
        feed(&mut c, 3, 1);
        assert_eq!(c.stage(0), ProtectionStage::Escalated);
        // Three clean steps (the clean window) with the hysteresis gate open: down one.
        let mut transitions = Vec::new();
        for step in 4..=20 {
            if feed(&mut c, step, 0) {
                transitions.push((step, c.stage(0)));
            }
        }
        assert_eq!(
            transitions,
            vec![(6, ProtectionStage::Elevated), (9, ProtectionStage::Calm)],
            "one stage per clean window, never two at once"
        );
        assert_eq!(c.deescalations(), 2);
        assert_eq!(c.stage(0), ProtectionStage::Calm);
    }

    #[test]
    fn hysteresis_bounds_transitions_under_an_alternating_pattern() {
        let config = AdaptiveConfig {
            enabled: true,
            window_steps: 2,
            elevate_detections: 1,
            escalate_detections: u64::MAX,
            clean_window_steps: 1,
            hysteresis_steps: 4,
            ..AdaptiveConfig::default()
        };
        let mut c = controller(config);
        // Alternate hot/clean every step for 40 steps: without hysteresis this pattern
        // would flap every step; the gate bounds it to one transition per 4 steps.
        for step in 1..=40 {
            feed(&mut c, step, step % 2);
        }
        let transitions = c.escalations() + c.deescalations();
        assert!(
            transitions <= 1 + 40 / 4,
            "at most one transition per hysteresis window (got {transitions})"
        );
        assert!(
            c.escalations() >= 1 && c.deescalations() >= 1,
            "the controller still adapts in both directions"
        );
    }

    #[test]
    fn overlay_strengthens_sensitive_components_while_any_slot_is_elevated() {
        let mut c = controller(fast_config());
        assert!(
            c.component_overlay().is_empty(),
            "calm batch has no overlay"
        );
        feed(&mut c, 1, 2);
        let overlay = c.component_overlay();
        assert_eq!(overlay.len(), c.sensitive_components().len());
        assert!(overlay.iter().all(|&(c, s)| {
            Component::ALL.contains(&c) && s == ProtectionScheme::ClassicalAbft
        }));
        let components: Vec<Component> = overlay.iter().map(|&(c, _)| c).collect();
        assert!(components.contains(&Component::O));
        assert!(components.contains(&Component::Fc2));
        assert!(!components.contains(&Component::Fc1), "resilient stays put");
        // Retiring the only elevated occupant clears the overlay without a de-escalation.
        assert_eq!(c.retire_slot(0), 1);
        assert!(c.component_overlay().is_empty());
        assert_eq!(c.deescalations(), 0);
        assert_eq!(c.retire_slot(0), 0, "charges are per occupant");
    }

    #[test]
    fn shed_overlay_drops_resilient_components_under_queue_pressure() {
        let config = AdaptiveConfig::enabled().with_shed(100, ProtectionScheme::None);
        let mut c = controller(config);
        assert!(!c.observe_step(1, &[0, 0], &[true, true], Some(99)));
        assert!(!c.shed_active(), "below the pressure threshold");
        assert!(c.observe_step(2, &[0, 0], &[true, true], Some(100)));
        assert!(c.shed_active());
        let overlay = c.component_overlay();
        assert_eq!(overlay.len(), c.resilient_components().len());
        assert!(overlay
            .iter()
            .all(|&(comp, s)| !comp.is_sensitive() && s == ProtectionScheme::None));
        assert!(
            !c.observe_step(3, &[0, 0], &[true, true], Some(240)),
            "staying shed is not a policy change"
        );
        assert!(!c.observe_step(4, &[0, 0], &[true, true], Some(240)));
        assert_eq!(c.shed_steps(), 3, "steps 2–4 ran with protection shed");
        // Pressure clears (queue drained): the overlay lifts immediately.
        assert!(c.observe_step(5, &[0, 0], &[true, true], None));
        assert!(!c.shed_active());
        assert!(c.component_overlay().is_empty());
        assert_eq!(c.shed_steps(), 3);
    }

    #[test]
    fn escalation_and_shed_overlays_compose_disjointly() {
        let config = AdaptiveConfig {
            shed_pressure_tokens: 10,
            ..fast_config()
        };
        let mut c = controller(config);
        c.observe_step(1, &[2, 0], &[true, true], Some(50));
        assert_eq!(c.stage(0), ProtectionStage::Elevated);
        assert!(c.shed_active());
        let overlay = c.component_overlay();
        assert_eq!(
            overlay.len(),
            Component::ALL.len(),
            "every component is covered exactly once"
        );
        for &(comp, scheme) in &overlay {
            if comp.is_sensitive() {
                assert_eq!(scheme, ProtectionScheme::ClassicalAbft);
            } else {
                assert_eq!(scheme, ProtectionScheme::None);
            }
        }
    }

    #[test]
    fn empty_slots_never_advance() {
        let mut c = controller(fast_config());
        for step in 1..=10 {
            c.observe_step(step, &[9, 9], &[false, false], None);
        }
        assert_eq!(c.stage(0), ProtectionStage::Calm);
        assert_eq!(c.stage(1), ProtectionStage::Calm);
        assert_eq!(c.escalations(), 0);
    }
}
