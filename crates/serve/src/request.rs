//! Serving requests, streamed token events and the serving error type.
//!
//! A [`ServeRequest`] is what a client hands to the engine: a prompt, a generation budget,
//! a scheduling priority and a per-request [`ProtectionPolicy`]. The engine answers over an
//! [`std::sync::mpsc`] channel with a stream of [`TokenEvent`]s: one
//! [`TokenEvent::Token`] per generated token as soon as it is committed, then one
//! [`TokenEvent::Done`] carrying the [`RequestSummary`] — the full output plus the
//! detection/recovery attribution the ABFT protector charged to this request.

use realm_core::protection::{ProtectionPolicy, SequenceAttribution};
use realm_llm::LlmError;

/// Identifier the engine assigns to every submitted request.
pub type RequestId = u64;

/// One generation request submitted to the serving engine.
///
/// # Example
///
/// ```
/// use realm_core::protection::ProtectionPolicy;
/// use realm_serve::ServeRequest;
///
/// let request = ServeRequest::new(vec![1, 5, 9], 8)
///     .with_priority(3)
///     .with_policy(ProtectionPolicy::classical());
/// assert_eq!(request.max_new_tokens, 8);
/// assert_eq!(request.priority, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Prompt tokens (must be non-empty and within the model's vocabulary).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate.
    pub max_new_tokens: usize,
    /// Scheduling priority: higher values are admitted first. Requests of equal effective
    /// priority are served in arrival order, and queue aging (see
    /// [`ServeConfig::aging_steps`](crate::ServeConfig::aging_steps)) lifts long-waiting
    /// requests so low priorities cannot starve.
    pub priority: u8,
    /// The ABFT protection scheme this request's GEMMs run under.
    pub policy: ProtectionPolicy,
}

impl ServeRequest {
    /// Creates a request with priority 0 and the default (statistical-ABFT) policy.
    pub fn new(prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        Self {
            prompt,
            max_new_tokens,
            priority: 0,
            policy: ProtectionPolicy::default(),
        }
    }

    /// Sets the scheduling priority (higher is served first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-request protection policy.
    pub fn with_policy(mut self, policy: ProtectionPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Final accounting of one served request, delivered with [`TokenEvent::Done`].
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSummary {
    /// The engine-assigned request id.
    pub id: RequestId,
    /// Every generated token, in order (identical to the streamed [`TokenEvent::Token`]s).
    pub tokens: Vec<u32>,
    /// Greedy-decode logit margin (top1 − top2) at each step.
    pub margins: Vec<f32>,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Engine steps the request waited in the queue before admission.
    pub queued_steps: u64,
    /// Engine steps between admission and completion.
    pub service_steps: u64,
    /// ABFT detections and recoveries charged to this request — prefill and decode
    /// combined — via the per-row-group checksum re-reduction
    /// ([`realm_core::SchemeProtector::sequence_attribution`]).
    pub attribution: SequenceAttribution,
    /// Adaptive-controller stage-up transitions this request's detection history caused
    /// while it held its slot (0 when adaptation is disabled — see [`crate::adaptive`]).
    pub escalations: u64,
    /// The protection policy the request ran under.
    pub policy: ProtectionPolicy,
}

/// One event on a request's response stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenEvent {
    /// A token was committed for this request.
    Token {
        /// The request this token belongs to.
        id: RequestId,
        /// Zero-based position of the token in the generated output.
        index: usize,
        /// The committed token.
        token: u32,
        /// Greedy-decode logit margin (top1 − top2) at this step.
        margin: f32,
    },
    /// The request completed; no further events follow on this channel.
    Done(RequestSummary),
}

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A request failed validation at submission (empty prompt, out-of-vocabulary token,
    /// context overflow).
    InvalidRequest {
        /// Explanation of the rejection.
        detail: String,
    },
    /// An underlying model-inference error surfaced while the engine was stepping.
    Llm(LlmError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            ServeError::Llm(e) => write!(f, "serving engine inference failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Llm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LlmError> for ServeError {
    fn from(e: LlmError) -> Self {
        ServeError::Llm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_priority_and_policy() {
        let r = ServeRequest::new(vec![1, 2], 4);
        assert_eq!(r.priority, 0);
        assert_eq!(r.policy, ProtectionPolicy::statistical());
        let r = r
            .with_priority(9)
            .with_policy(ProtectionPolicy::unprotected());
        assert_eq!(r.priority, 9);
        assert_eq!(r.policy, ProtectionPolicy::unprotected());
    }

    #[test]
    fn errors_display_their_cause() {
        let e = ServeError::InvalidRequest {
            detail: "empty prompt".into(),
        };
        assert!(e.to_string().contains("empty prompt"));
        let wrapped: ServeError = LlmError::InvalidSequence { detail: "x".into() }.into();
        assert!(wrapped.to_string().contains("inference failed"));
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
