//! The admission queue: priority scheduling with aging so nothing starves.
//!
//! Admission order is decided by an *effective priority*: the request's static priority
//! plus one bump for every [`aging_steps`](crate::ServeConfig::aging_steps) engine steps it
//! has waited. Under a sustained stream of high-priority arrivals a low-priority request's
//! effective priority keeps climbing until it wins a slot — the property the saturation
//! test in `tests/serve_continuous.rs` pins down. Ties are broken by arrival order (FIFO).

use crate::request::{RequestId, ServeRequest, TokenEvent};
use realm_core::protection::ProtectionPolicy;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;

/// A submitted request waiting for a batch slot.
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    /// Engine-assigned id.
    pub id: RequestId,
    /// Prompt tokens (validated at submission).
    pub prompt: Vec<u32>,
    /// Generation budget.
    pub max_new_tokens: usize,
    /// Static scheduling priority.
    pub priority: u8,
    /// Per-request protection policy.
    pub policy: ProtectionPolicy,
    /// Response channel.
    pub sender: Sender<TokenEvent>,
    /// Engine step at which the request was submitted.
    pub enqueue_step: u64,
    /// Engine token-clock reading at submission (cumulative tokens the engine had
    /// processed — decode rows plus prefill-chunk rows). Shed-age SLOs compare against
    /// this clock instead of the step counter: a step's cost now varies with the token
    /// budget, so "steps waited" no longer measures how much work the backlog was passed
    /// over for, but "tokens processed since enqueue" does.
    pub enqueue_tokens: u64,
}

impl QueuedRequest {
    pub(crate) fn new(
        id: RequestId,
        request: ServeRequest,
        sender: Sender<TokenEvent>,
        enqueue_step: u64,
        enqueue_tokens: u64,
    ) -> Self {
        Self {
            id,
            prompt: request.prompt,
            max_new_tokens: request.max_new_tokens,
            priority: request.priority,
            policy: request.policy,
            sender,
            enqueue_step,
            enqueue_tokens,
        }
    }
}

/// Priority queue with aging. Pops are O(queue depth) — the scan re-evaluates every
/// entry's age-adjusted priority at the current step, which a heap keyed on a static
/// priority could not do.
#[derive(Debug, Default)]
pub(crate) struct RequestQueue {
    entries: VecDeque<QueuedRequest>,
    /// Steps of waiting per priority bump; 0 disables aging.
    aging_steps: u64,
}

impl RequestQueue {
    pub(crate) fn new(aging_steps: u64) -> Self {
        Self {
            entries: VecDeque::new(),
            aging_steps,
        }
    }

    pub(crate) fn push(&mut self, request: QueuedRequest) {
        self.entries.push_back(request);
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Effective priority of an entry at `step`: static priority plus earned age bumps.
    fn effective(&self, entry: &QueuedRequest, step: u64) -> u64 {
        let waited = step.saturating_sub(entry.enqueue_step);
        // aging_steps == 0 disables aging (checked_div yields None).
        let bumps = waited.checked_div(self.aging_steps).unwrap_or(0);
        u64::from(entry.priority) + bumps
    }

    /// Steps the longest-waiting entry has spent in the queue at `step`, or `None` when
    /// the queue is empty.
    ///
    /// This is the queue's own age bookkeeping exposed for load shedding: a network front
    /// end that sheds when the oldest queued request exceeds an age SLO reads this instead
    /// of duplicating enqueue-step tracking outside the queue. The age is measured in
    /// engine steps (the same clock aging uses), so it is deterministic for a given
    /// schedule.
    pub(crate) fn oldest_age(&self, step: u64) -> Option<u64> {
        self.entries
            .iter()
            .map(|e| step.saturating_sub(e.enqueue_step))
            .max()
    }

    /// Budgeted tokens the longest-waiting entry has been passed over for: the engine's
    /// token clock at `now_tokens` minus the oldest entry's clock reading at enqueue, or
    /// `None` when the queue is empty.
    ///
    /// This is the shed-age measure: under chunked prefill an engine step processes a
    /// variable number of tokens (decode rows plus at most one prefill chunk), so token
    /// age — unlike step age — stays proportional to actual work done while the request
    /// waited, keeping a shedding SLO meaningful across budget settings.
    pub(crate) fn oldest_token_age(&self, now_tokens: u64) -> Option<u64> {
        self.entries
            .iter()
            .map(|e| now_tokens.saturating_sub(e.enqueue_tokens))
            .max()
    }

    /// Removes and returns the request with the highest effective priority at `step`
    /// (arrival order breaks ties — ids are assigned in submission order), or `None` if
    /// the queue is empty.
    pub(crate) fn pop(&mut self, step: u64) -> Option<QueuedRequest> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (self.effective(e, step), std::cmp::Reverse(e.id)))?
            .0;
        self.entries.remove(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn queued(id: RequestId, priority: u8, enqueue_step: u64) -> QueuedRequest {
        let (tx, _rx) = channel();
        QueuedRequest::new(
            id,
            ServeRequest::new(vec![1], 1).with_priority(priority),
            tx,
            enqueue_step,
            // Tests drive the step-based paths; a fixed token clock keeps them simple.
            enqueue_step * 10,
        )
    }

    #[test]
    fn pop_prefers_priority_then_fifo() {
        let mut q = RequestQueue::new(0);
        q.push(queued(1, 0, 0));
        q.push(queued(2, 5, 0));
        q.push(queued(3, 5, 0));
        assert_eq!(q.pop(0).unwrap().id, 2, "highest priority wins");
        assert_eq!(q.pop(0).unwrap().id, 3, "FIFO within a priority");
        assert_eq!(q.pop(0).unwrap().id, 1);
        assert!(q.pop(0).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn oldest_age_tracks_the_longest_waiting_entry() {
        let mut q = RequestQueue::new(0);
        assert_eq!(q.oldest_age(5), None, "empty queue has no age");
        q.push(queued(1, 0, 4));
        q.push(queued(2, 9, 10)); // higher priority but fresher
        assert_eq!(q.oldest_age(10), Some(6), "age follows the oldest entry");
        // Popping removes the high-priority entry first; the old one still sets the age.
        assert_eq!(q.pop(10).unwrap().id, 2);
        assert_eq!(q.oldest_age(12), Some(8));
        assert_eq!(q.pop(12).unwrap().id, 1);
        assert_eq!(q.oldest_age(12), None);
        // A step earlier than the enqueue step saturates to zero rather than wrapping.
        let mut q = RequestQueue::new(0);
        q.push(queued(1, 0, 20));
        assert_eq!(q.oldest_age(3), Some(0));
    }

    #[test]
    fn oldest_token_age_follows_the_token_clock() {
        let mut q = RequestQueue::new(0);
        assert_eq!(q.oldest_token_age(100), None, "empty queue has no age");
        q.push(queued(1, 0, 4)); // enqueue_tokens = 40
        q.push(queued(2, 9, 10)); // enqueue_tokens = 100, higher priority but fresher
        assert_eq!(q.oldest_token_age(130), Some(90));
        assert_eq!(q.pop(10).unwrap().id, 2, "priority still decides pops");
        assert_eq!(
            q.oldest_token_age(130),
            Some(90),
            "oldest entry sets the age"
        );
        // A clock reading before enqueue saturates to zero rather than wrapping.
        assert_eq!(q.oldest_token_age(7), Some(0));
    }

    #[test]
    fn aging_lifts_long_waiting_requests() {
        let mut q = RequestQueue::new(4);
        q.push(queued(1, 0, 0)); // low priority, enqueued at step 0
        q.push(queued(2, 2, 10)); // higher priority, fresh arrival
                                  // At step 10 the old request earned 10/4 = 2 bumps: effective 2 vs 2, FIFO wins.
        assert_eq!(q.pop(10).unwrap().id, 1);
        assert_eq!(q.len(), 1);
        // With aging disabled the fresh high-priority request would have won.
        let mut q = RequestQueue::new(0);
        q.push(queued(1, 0, 0));
        q.push(queued(2, 2, 10));
        assert_eq!(q.pop(10).unwrap().id, 2);
    }
}
