//! # realm-serve
//!
//! A continuous-batching serving layer over the protected batch API: the path from "a
//! batched forward exists" to "a server keeps its batch full under sustained load".
//!
//! # What continuous batching buys
//!
//! The lockstep scheduler ([`realm_llm::BatchScheduler::run`]) prefills a fixed batch and
//! decodes until *every* sequence reaches its budget: a slot whose sequence finished early
//! sits empty while the longest request drains. Under serving load that is exactly
//! backwards — short and long requests mix freely, so most of the batch is idle most of
//! the time. This crate's [`ServeEngine`] instead treats the batch as `slots` reusable
//! positions in one shared [`realm_llm::BatchedKvCache`]:
//!
//! 1. requests wait in a priority queue (aging prevents starvation — see
//!    [`ServeConfig::aging_steps`]);
//! 2. between decode steps, completed sequences release their KV rows
//!    ([`realm_llm::BatchedKvCache::release_slot`]) and queued requests are assigned the
//!    freed slots — assignment is bookkeeping only; the prompt prefills chunk by chunk
//!    ([`realm_llm::Model::prefill_chunk_slot_ws`]) under the per-step token budget
//!    ([`ServeConfig::step_token_budget`]), so a long prompt never stalls concurrent
//!    decode streams for more than one budget-bounded chunk;
//! 3. tokens stream back to each client over an [`std::sync::mpsc`] channel as
//!    [`TokenEvent`]s, ending with a [`RequestSummary`] that carries the ABFT
//!    detection/recovery attribution charged to that request.
//!
//! The batch therefore stays full as long as the queue is non-empty, and the fused-checksum
//! detection cost keeps amortising across a full batch instead of a draining one.
//!
//! # Reliability is per-request
//!
//! Every [`ServeRequest`] carries a [`ProtectionPolicy`]. Prefill chunks and decode steps
//! alike run under one shared protector that is refreshed with the slot → scheme map on
//! every admission and retirement
//! ([`realm_core::SchemeProtector::set_sequence_schemes`]), so per-sequence attention GEMMs
//! keep their request's scheme while batch-stacked GEMMs escalate to the strictest active
//! policy. Detections are traced back to the owning request by re-reducing the fused
//! checksums over its row group ([`realm_core::SchemeProtector::sequence_attribution`]) —
//! a chunk announces a row partition whose only non-empty group is its slot, so even a
//! fault striking a mid-prompt chunk is charged to the right request — and reported in the
//! request's [`RequestSummary`], giving operators per-request reliability telemetry at the
//! serving boundary.
//!
//! # Bit-exactness
//!
//! Serving never changes output: per-row quantization and visible-prefix attention make
//! the forward pass chunk-invariant, so a prompt prefilled in budgeted chunks into a
//! recycled slot produces exactly the tokens (and margin bits, and fused checksums) a solo
//! [`realm_llm::Model::generate`] call would — the contract `tests/serve_continuous.rs`
//! and `tests/chunked_parity.rs` enforce on every GEMM backend.
//!
//! # Example
//!
//! ```
//! use realm_llm::{config::ModelConfig, model::Model};
//! use realm_serve::{ServeConfig, ServeEngine, ServeRequest, TokenEvent};
//!
//! # fn main() -> Result<(), realm_serve::ServeError> {
//! let model = Model::new(&ModelConfig::tiny_opt(), 42).unwrap();
//! let mut engine = ServeEngine::new(&model, ServeConfig::with_slots(2));
//!
//! // Three requests compete for two slots; the third is admitted as soon as a slot frees.
//! let (_, rx_a) = engine.submit(ServeRequest::new(vec![1, 5, 9], 6))?;
//! let (_, rx_b) = engine.submit(ServeRequest::new(vec![2, 7], 2))?;
//! let (_, rx_c) = engine.submit(ServeRequest::new(vec![3], 4).with_priority(1))?;
//! engine.run_until_idle()?;
//!
//! for rx in [rx_a, rx_b, rx_c] {
//!     let events: Vec<TokenEvent> = rx.try_iter().collect();
//!     let Some(TokenEvent::Done(summary)) = events.last() else {
//!         panic!("every request completes");
//!     };
//!     assert_eq!(summary.tokens.len(), events.len() - 1);
//! }
//! let stats = engine.stats();
//! assert_eq!(stats.requests_completed, 3);
//! assert_eq!(stats.tokens_generated, 12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod engine;
mod queue;
pub mod request;

pub use adaptive::{AdaptiveConfig, AdaptiveController, ProtectionStage};
pub use engine::{EngineStats, ServeConfig, ServeEngine};
pub use realm_core::protection::ProtectionPolicy;
pub use request::{RequestId, RequestSummary, ServeError, ServeRequest, TokenEvent};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
