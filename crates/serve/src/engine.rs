//! The continuous-batching engine loop.
//!
//! [`ServeEngine`] owns a [`BatchedKvCache`] with a fixed number of *slots* and drives
//! lockstep decode over whatever sequences currently occupy them. Between decode steps —
//! never in the middle of one — completed sequences release their slot
//! ([`BatchedKvCache::release_slot`]) and queued requests are admitted into the freed rows
//! ([`BatchedKvCache::admit`]), so the batch stays full under sustained load instead of
//! draining in lockstep. Admissions are prefilled solo under the request's own
//! [`ProtectionPolicy`] and their KV rows copied into the slot; decode runs under one
//! shared [`SchemeProtector`] whose per-slot schemes are refreshed on every admission and
//! retirement, so each request keeps the protection it asked for (batch-stacked GEMMs
//! escalate to the strictest active policy).
//!
//! Everything is bit-exact with solo inference: a request admitted mid-flight produces
//! exactly the tokens [`Model::generate`] would have produced for it alone — continuous
//! batching changes throughput and detection amortisation, never output.

use crate::queue::{QueuedRequest, RequestQueue};
use crate::request::{RequestId, RequestSummary, ServeError, ServeRequest, TokenEvent};
use realm_core::protection::{
    ProtectionPolicy, SchemeProtector, SequenceAttribution, ShardAttribution,
};
use realm_llm::batch::BatchedKvCache;
use realm_llm::hooks::HookChain;
use realm_llm::model::argmax_with_margin;
use realm_llm::{GemmHook, Model};
use realm_systolic::{Dataflow, ProtectionScheme, SystolicArray};
use realm_tensor::Workspace;
use std::sync::mpsc::{channel, Receiver};
use std::time::Instant;

/// Decode-latency samples retained for the percentile stats; the buffer is halved once it
/// reaches twice this size, so a long-running engine keeps a bounded, recent window.
const LATENCY_WINDOW: usize = 4096;

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of concurrent batch slots (the maximum decode batch width).
    pub slots: usize,
    /// Systolic array used to account detection/recovery cost in the protector's stats.
    pub array: SystolicArray,
    /// Fallback protection scheme for anything not covered by a per-request policy.
    pub base_scheme: ProtectionScheme,
    /// Queue-aging interval: a waiting request gains one priority level per this many
    /// engine steps, so low-priority requests cannot starve behind a sustained
    /// high-priority stream. `0` disables aging (strict priority).
    pub aging_steps: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            slots: 4,
            array: SystolicArray::small(Dataflow::WeightStationary),
            base_scheme: ProtectionScheme::StatisticalAbft,
            aging_steps: 32,
        }
    }
}

impl ServeConfig {
    /// A config with `slots` concurrent slots and defaults for everything else.
    pub fn with_slots(slots: usize) -> Self {
        Self {
            slots,
            ..Self::default()
        }
    }
}

/// Operator-facing snapshot of the engine's state, returned by [`ServeEngine::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Requests waiting for a slot.
    pub queue_depth: usize,
    /// Slots currently decoding a sequence.
    pub active_slots: usize,
    /// Total batch slots.
    pub total_slots: usize,
    /// Lockstep decode steps executed so far.
    pub steps: u64,
    /// Tokens committed across all requests.
    pub tokens_generated: u64,
    /// Requests accepted by [`ServeEngine::submit`].
    pub requests_submitted: u64,
    /// Requests admitted into a slot (prefilled).
    pub requests_admitted: u64,
    /// Requests that ran to completion and delivered their summary.
    pub requests_completed: u64,
    /// Requests abandoned because their receiver was dropped mid-stream.
    pub requests_cancelled: u64,
    /// Requests refused by load shedding before they ever entered the queue (counted via
    /// [`ServeEngine::note_shed`]; a network front end answers these with `429`).
    pub requests_shed: u64,
    /// Engine steps the longest-waiting queued request has spent in the queue (0 when the
    /// queue is empty). This is the age a shedding SLO is compared against — see
    /// [`ServeEngine::oldest_queue_age`].
    pub queue_oldest_age_steps: u64,
    /// ABFT detections charged to requests (completed and in-flight).
    pub detections: u64,
    /// ABFT recoveries charged to requests (completed and in-flight).
    pub recoveries: u64,
    /// Wall-clock seconds since the engine was created.
    pub elapsed_seconds: f64,
    /// Committed tokens per wall-clock second since engine creation.
    pub tokens_per_second: f64,
    /// Median per-step decode latency in microseconds over the recent window
    /// (0.0 before the first decode step).
    pub decode_p50_us: f64,
    /// 99th-percentile per-step decode latency in microseconds over the recent window
    /// (0.0 before the first decode step).
    pub decode_p99_us: f64,
    /// High-water mark of the engine's long-lived scratch workspace in bytes — the
    /// steady-state memory footprint of the allocation-free decode loop. Stabilises after
    /// warmup; growth here indicates a scratch leak.
    pub workspace_high_water_bytes: usize,
    /// Tensor-parallel degree of the served model (1 when unsharded).
    pub tp_degree: usize,
    /// Whole-shard kill events survived by the sharded datapath (the owning rank was
    /// unresponsive and its output stripe was recomputed inline). 0 when unsharded.
    pub shard_kills: u64,
    /// Corrupted shard outputs caught by the per-shard fused checksums, below the hook
    /// interface. 0 when unsharded.
    pub shard_detections: u64,
    /// Shard output stripes recomputed after a kill or a per-shard checksum detection —
    /// every failover kept the engine serving bit-exact output. 0 when unsharded.
    pub shard_failovers: u64,
}

impl EngineStats {
    /// Fraction of slots currently occupied (0.0 when the engine has no slots).
    pub fn slot_occupancy(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.active_slots as f64 / self.total_slots as f64
        }
    }

    /// Mean detections charged per admitted request (0.0 before the first admission).
    ///
    /// In-flight requests count in both the numerator and the denominator, matching the
    /// [`EngineStats::detections`] field this divides.
    pub fn detections_per_request(&self) -> f64 {
        if self.requests_admitted == 0 {
            0.0
        } else {
            self.detections as f64 / self.requests_admitted as f64
        }
    }

    /// `true` when the served model is tensor-parallel sharded.
    pub fn is_sharded(&self) -> bool {
        self.tp_degree > 1
    }
}

/// A sequence currently occupying a batch slot.
#[derive(Debug)]
struct ActiveSeq {
    id: RequestId,
    sender: std::sync::mpsc::Sender<TokenEvent>,
    /// Last committed token — the input of the next decode step.
    last: u32,
    tokens: Vec<u32>,
    margins: Vec<f32>,
    target: usize,
    policy: ProtectionPolicy,
    prompt_len: usize,
    enqueue_step: u64,
    admit_step: u64,
    /// Attribution charged by the request's private prefill protector.
    prefill_attr: SequenceAttribution,
    /// The shared decode protector's attribution for this slot at admission time; the
    /// request is charged the delta (slots are reused across requests).
    baseline: SequenceAttribution,
}

/// The continuous-batching serving engine.
///
/// See the [crate-level documentation](crate) for a worked end-to-end example. The engine
/// is synchronous and deterministic: [`ServeEngine::submit`] enqueues, [`ServeEngine::step`]
/// advances one admission + lockstep-decode round, and [`ServeEngine::run_until_idle`]
/// pumps until queue and slots are empty. Token streams are delivered through the
/// [`std::sync::mpsc::Receiver`] returned at submission, so a driving thread can hand
/// receivers to per-client consumers. The engine itself is `Send` — it can be moved into a
/// dedicated serving thread and fed between steps.
pub struct ServeEngine<'m> {
    model: &'m Model,
    config: ServeConfig,
    queue: RequestQueue,
    slots: Vec<Option<ActiveSeq>>,
    cache: BatchedKvCache,
    protector: SchemeProtector,
    fault_hook: Option<Box<dyn GemmHook + Send>>,
    /// Long-lived scratch arena shared by every admission prefill and decode step: after
    /// the first few steps warm its pools, the steady-state loop stops allocating.
    ws: Workspace,
    /// Reused per-step buffer of pending tokens (one slot per batch slot).
    step_tokens: Vec<Option<u32>>,
    /// Recent per-step decode latencies in microseconds (bounded window).
    decode_us: Vec<u64>,
    started: Instant,
    steps: u64,
    tokens_generated: u64,
    submitted: u64,
    admitted: u64,
    completed: u64,
    cancelled: u64,
    shed: u64,
    completed_detections: u64,
    completed_recoveries: u64,
}

impl<'m> ServeEngine<'m> {
    /// Creates an engine with `config.slots` batch slots over `model` (slot count is
    /// clamped to at least 1).
    pub fn new(model: &'m Model, config: ServeConfig) -> Self {
        let slots = config.slots.max(1);
        let mut protector = SchemeProtector::with_default_regions(config.base_scheme, config.array);
        // On a sharded model the shared decode protector also localises fused-checksum
        // deviations to shard column stripes, so operator telemetry can name the suspect
        // fault domain even for corruption injected above the sharded layer.
        protector.set_shard_attribution(model.tp_group().map(|g| g.degree()));
        Self {
            model,
            config,
            queue: RequestQueue::new(config.aging_steps),
            slots: (0..slots).map(|_| None).collect(),
            cache: model.new_batched_cache(slots),
            protector,
            fault_hook: None,
            ws: Workspace::new(),
            step_tokens: Vec::new(),
            decode_us: Vec::new(),
            started: Instant::now(),
            steps: 0,
            tokens_generated: 0,
            submitted: 0,
            admitted: 0,
            completed: 0,
            cancelled: 0,
            shed: 0,
            completed_detections: 0,
            completed_recoveries: 0,
        }
    }

    /// Installs a fault hook (typically a `realm-inject` `ErrorInjector`) that runs ahead
    /// of the protector on every GEMM — the serving equivalent of operating the array at a
    /// scaled voltage.
    pub fn with_fault_hook(mut self, hook: Box<dyn GemmHook + Send>) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// The model this engine serves.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// Validates `request` and enqueues it, returning the assigned id and the channel the
    /// request's [`TokenEvent`]s will stream over.
    ///
    /// Dropping the receiver cancels the request: the engine notices the closed channel at
    /// the next commit and frees the slot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for an empty prompt, an out-of-vocabulary
    /// token, or a prompt plus budget exceeding the model's context window.
    pub fn submit(
        &mut self,
        request: ServeRequest,
    ) -> Result<(RequestId, Receiver<TokenEvent>), ServeError> {
        if request.prompt.is_empty() {
            return Err(ServeError::InvalidRequest {
                detail: "prompt must not be empty".into(),
            });
        }
        let vocab = self.model.config().vocab_size;
        if let Some(&bad) = request.prompt.iter().find(|&&t| t as usize >= vocab) {
            return Err(ServeError::InvalidRequest {
                detail: format!("prompt token {bad} is outside the vocabulary ({vocab})"),
            });
        }
        let max_seq_len = self.model.config().max_seq_len;
        if request.prompt.len() + request.max_new_tokens > max_seq_len {
            return Err(ServeError::InvalidRequest {
                detail: format!(
                    "prompt ({}) plus generation budget ({}) exceeds max_seq_len {max_seq_len}",
                    request.prompt.len(),
                    request.max_new_tokens
                ),
            });
        }
        let (sender, receiver) = channel();
        self.submitted += 1;
        let id = self.submitted;
        self.queue
            .push(QueuedRequest::new(id, request, sender, self.steps));
        Ok((id, receiver))
    }

    /// Advances the engine by one round: admits queued requests into free slots, then runs
    /// one lockstep decode step across the occupied slots, committing one token per active
    /// sequence. Returns `true` while work remains (occupied slots or queued requests).
    ///
    /// # Errors
    ///
    /// Propagates model-inference errors; validation at [`ServeEngine::submit`] makes
    /// these unreachable for accepted requests in normal operation.
    pub fn step(&mut self) -> Result<bool, ServeError> {
        // Admission: fill every free slot from the queue. When two or more slots free up
        // in the same decode gap the queued heads are prefilled together in ONE
        // `prefill_batch` call (batched admission prefill); a freshly admitted request
        // with a budget of 0 or 1 completes at admission and releases the slot again, so
        // keep draining until slots are genuinely busy or the queue is empty.
        loop {
            let mut admits: Vec<(usize, QueuedRequest)> = Vec::new();
            for slot in 0..self.slots.len() {
                if self.slots[slot].is_none() {
                    let Some(queued) = self.queue.pop(self.steps) else {
                        break;
                    };
                    admits.push((slot, queued));
                }
            }
            match admits.len() {
                0 => break,
                1 => {
                    let (slot, queued) = admits.pop().expect("one admission");
                    self.admit(slot, queued)?;
                }
                _ => self.admit_batch(admits)?,
            }
        }

        let Self {
            slots, step_tokens, ..
        } = self;
        step_tokens.clear();
        step_tokens.extend(slots.iter().map(|s| s.as_ref().map(|a| a.last)));
        if step_tokens.iter().all(Option::is_none) {
            return Ok(!self.queue.is_empty());
        }

        let decode_started = Instant::now();
        let step_logits = {
            let Self {
                model,
                cache,
                protector,
                fault_hook,
                ws,
                step_tokens,
                ..
            } = self;
            let mut chain = HookChain::new();
            if let Some(hook) = fault_hook {
                chain.push(hook.as_mut());
            }
            chain.push(protector);
            model.decode_step_batch_ws(step_tokens, cache, &mut chain, ws)?
        };
        self.note_decode_latency(decode_started);
        self.steps += 1;
        for (slot, logits) in step_logits.into_iter().enumerate() {
            let Some(logits) = logits else { continue };
            let (next, margin) = argmax_with_margin(&logits);
            self.ws.recycle_vec_f32(logits);
            let active = self.slots[slot]
                .as_mut()
                .expect("decode produced logits for an occupied slot");
            active.last = next;
            let finished = Self::commit(active, next, margin);
            self.tokens_generated += 1;
            if finished {
                self.finalize(slot);
            }
        }
        self.ws.reset();
        Ok(self.has_work())
    }

    /// Records one decode step's wall-clock latency in the bounded sample window.
    fn note_decode_latency(&mut self, started: Instant) {
        if self.decode_us.len() >= 2 * LATENCY_WINDOW {
            self.decode_us.drain(..LATENCY_WINDOW);
        }
        self.decode_us.push(started.elapsed().as_micros() as u64);
    }

    /// Pumps [`ServeEngine::step`] until no queued or active request remains.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeEngine::step`] error.
    pub fn run_until_idle(&mut self) -> Result<(), ServeError> {
        while self.step()? {}
        Ok(())
    }

    /// Returns `true` while any request is queued or occupying a slot.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || self.slots.iter().any(Option::is_some)
    }

    /// Engine steps the longest-waiting queued request has spent in the queue, or `None`
    /// when nothing is queued.
    ///
    /// This is the queue's own age bookkeeping, exposed so an admission-control layer (the
    /// network front end's load shedder) can compare the backlog against an age SLO
    /// without duplicating enqueue-step tracking. Measured in engine steps — the same
    /// deterministic clock queue aging uses — not wall-clock time.
    pub fn oldest_queue_age(&self) -> Option<u64> {
        self.queue.oldest_age(self.steps)
    }

    /// Records one load-shed decision: a request that was refused *before* submission
    /// because the queue backlog exceeded the operator's age SLO.
    ///
    /// The engine never sheds on its own — [`ServeEngine::submit`] accepts everything
    /// valid — so the admission layer that refused the request charges the event here,
    /// keeping all serving counters in one [`EngineStats`] snapshot.
    pub fn note_shed(&mut self) {
        self.shed += 1;
    }

    /// A snapshot of queue depth, slot occupancy, throughput and reliability counters.
    pub fn stats(&self) -> EngineStats {
        let mut detections = self.completed_detections;
        let mut recoveries = self.completed_recoveries;
        for (slot, active) in self.slots.iter().enumerate() {
            let Some(active) = active else { continue };
            let attr = self.slot_attribution(slot, active);
            detections += attr.detections;
            recoveries += attr.recoveries;
        }
        let elapsed_seconds = self.started.elapsed().as_secs_f64();
        let mut sorted_us = self.decode_us.clone();
        sorted_us.sort_unstable();
        let shard_totals = self
            .model
            .tp_group()
            .map(|g| g.totals())
            .unwrap_or_default();
        EngineStats {
            queue_depth: self.queue.len(),
            active_slots: self.slots.iter().filter(|s| s.is_some()).count(),
            total_slots: self.slots.len(),
            steps: self.steps,
            tokens_generated: self.tokens_generated,
            requests_submitted: self.submitted,
            requests_admitted: self.admitted,
            requests_completed: self.completed,
            requests_cancelled: self.cancelled,
            requests_shed: self.shed,
            queue_oldest_age_steps: self.oldest_queue_age().unwrap_or(0),
            detections,
            recoveries,
            elapsed_seconds,
            tokens_per_second: if elapsed_seconds > 0.0 {
                self.tokens_generated as f64 / elapsed_seconds
            } else {
                0.0
            },
            decode_p50_us: percentile_us(&sorted_us, 0.50),
            decode_p99_us: percentile_us(&sorted_us, 0.99),
            workspace_high_water_bytes: self.ws.high_water_mark_bytes(),
            tp_degree: self.model.tp_group().map_or(1, |g| g.degree()),
            shard_kills: shard_totals.kills,
            shard_detections: shard_totals.detections,
            shard_failovers: shard_totals.failovers,
        }
    }

    /// Per-shard reliability counters of the served model's tensor-parallel group, one
    /// entry per shard in shard order (empty when the model is unsharded).
    ///
    /// These count events handled *below* the hook interface by the sharded datapath
    /// itself — rank kills survived, per-shard checksum detections, stripe recomputes —
    /// and are cumulative over the `TpGroup`'s lifetime. The aggregate is surfaced in
    /// [`EngineStats::shard_kills`] and friends.
    pub fn shard_stats(&self) -> Vec<realm_tensor::TpShardStats> {
        self.model.shard_stats()
    }

    /// Shard attribution charged by the shared decode protector: fused-checksum
    /// detections whose column deviations localise to a shard's output stripe, keyed by
    /// shard index. Empty when the model is unsharded.
    ///
    /// This is the *above*-hook complement of [`ServeEngine::shard_stats`]: corruption
    /// the sharded layer already repaired never reaches the protector, so entries here
    /// point at faults injected into the merged accumulator (or real upstream faults).
    pub fn shard_attribution(&self) -> &std::collections::BTreeMap<usize, ShardAttribution> {
        self.protector.shard_attribution()
    }

    /// Prefills `queued` solo under its own policy, copies its KV rows into `slot`, and
    /// commits its first token. Budget-0/1 requests complete (and free the slot) here.
    fn admit(&mut self, slot: usize, queued: QueuedRequest) -> Result<(), ServeError> {
        let mut prefill_protector =
            SchemeProtector::with_default_regions(queued.policy.scheme, self.config.array);
        prefill_protector.set_shard_attribution(self.model.tp_group().map(|g| g.degree()));
        // The solo cache only exists to be copied into the batch slot and dropped, so it
        // is deliberately unreserved (`prefill_ws_into`): no full-context-window
        // allocation per admission.
        let mut solo_cache = realm_llm::kv_cache::KvCache::new(self.model.config().num_layers);
        let logits = {
            let Self {
                model,
                fault_hook,
                ws,
                ..
            } = self;
            let mut chain = HookChain::new();
            if let Some(hook) = fault_hook {
                chain.push(hook.as_mut());
            }
            chain.push(&mut prefill_protector);
            model.prefill_ws_into(&queued.prompt, &mut chain, ws, &mut solo_cache)?
        };
        let admitted = self.cache.admit(slot, &solo_cache);
        let (first, margin) = argmax_with_margin(logits.row(logits.rows() - 1));
        self.ws.recycle_mat_f32(logits);
        admitted?;
        self.admitted += 1;
        // Solo forwards attribute everything to sequence index 0.
        let prefill_attr = prefill_protector
            .sequence_attribution()
            .get(&0)
            .copied()
            .unwrap_or_default();
        self.install(slot, queued, first, margin, prefill_attr);
        Ok(())
    }

    /// Prefills several queued requests together in **one** shared `prefill_batch` call
    /// and admits each into its destination slot.
    ///
    /// The shared prefill runs under one protector whose per-sequence schemes are the
    /// admitted requests' own policies: each request's private attention GEMMs are
    /// inspected under its own scheme, while the batch-stacked projections escalate to the
    /// strictest admitted policy (the same escalation decode applies). Detections are
    /// attributed back per sequence, so every request is charged exactly what its rows
    /// caused. Tokens and KV rows are bit-identical to solo admission — `prefill_batch`'s
    /// parity contract — this only removes the per-request prefill overhead that made the
    /// engine trail the raw continuous scheduler.
    fn admit_batch(&mut self, admits: Vec<(usize, QueuedRequest)>) -> Result<(), ServeError> {
        let prompts: Vec<Vec<u32>> = admits.iter().map(|(_, q)| q.prompt.clone()).collect();
        let schemes: Vec<ProtectionScheme> = admits.iter().map(|(_, q)| q.policy.scheme).collect();
        let mut prefill_protector =
            SchemeProtector::with_default_regions(self.config.base_scheme, self.config.array);
        prefill_protector.set_sequence_schemes(&schemes);
        prefill_protector.set_shard_attribution(self.model.tp_group().map(|g| g.degree()));
        let (per_seq_logits, prefill_cache) = {
            let Self {
                model,
                fault_hook,
                ws,
                ..
            } = self;
            let mut chain = HookChain::new();
            if let Some(hook) = fault_hook {
                chain.push(hook.as_mut());
            }
            chain.push(&mut prefill_protector);
            model.prefill_batch_ws(&prompts, &mut chain, ws)?
        };
        let attribution = prefill_protector.sequence_attribution();
        for (g, ((slot, queued), logits)) in admits.into_iter().zip(&per_seq_logits).enumerate() {
            self.cache.admit_from(slot, &prefill_cache, g)?;
            self.admitted += 1;
            let prefill_attr = attribution.get(&g).copied().unwrap_or_default();
            let (first, margin) = argmax_with_margin(logits.row(logits.rows() - 1));
            self.install(slot, queued, first, margin, prefill_attr);
        }
        Ok(())
    }

    /// Installs an admitted request into `slot` and commits its first token. Budget-0/1
    /// requests complete (and free the slot) here.
    fn install(
        &mut self,
        slot: usize,
        queued: QueuedRequest,
        first: u32,
        margin: f32,
        prefill_attr: SequenceAttribution,
    ) {
        let baseline = self
            .protector
            .sequence_attribution()
            .get(&slot)
            .copied()
            .unwrap_or_default();
        self.slots[slot] = Some(ActiveSeq {
            id: queued.id,
            sender: queued.sender,
            last: first,
            tokens: Vec::with_capacity(queued.max_new_tokens),
            margins: Vec::with_capacity(queued.max_new_tokens),
            target: queued.max_new_tokens,
            policy: queued.policy,
            prompt_len: queued.prompt.len(),
            enqueue_step: queued.enqueue_step,
            admit_step: self.steps,
            prefill_attr,
            baseline,
        });
        self.refresh_schemes();
        if queued.max_new_tokens == 0 {
            self.finalize(slot);
            return;
        }
        let active = self.slots[slot].as_mut().expect("just installed");
        let finished = Self::commit(active, first, margin);
        self.tokens_generated += 1;
        if finished {
            self.finalize(slot);
        }
    }

    /// Records a committed token and streams it; returns `true` if the request finished
    /// (budget reached) or was cancelled (receiver dropped).
    fn commit(active: &mut ActiveSeq, token: u32, margin: f32) -> bool {
        active.tokens.push(token);
        active.margins.push(margin);
        let delivered = active
            .sender
            .send(TokenEvent::Token {
                id: active.id,
                index: active.tokens.len() - 1,
                token,
                margin,
            })
            .is_ok();
        !delivered || active.tokens.len() >= active.target
    }

    /// Total attribution charged to the request in `slot`: its private prefill plus the
    /// shared decode protector's delta since admission.
    fn slot_attribution(&self, slot: usize, active: &ActiveSeq) -> SequenceAttribution {
        let current = self
            .protector
            .sequence_attribution()
            .get(&slot)
            .copied()
            .unwrap_or_default();
        SequenceAttribution {
            detections: active.prefill_attr.detections
                + current
                    .detections
                    .saturating_sub(active.baseline.detections),
            recoveries: active.prefill_attr.recoveries
                + current
                    .recoveries
                    .saturating_sub(active.baseline.recoveries),
        }
    }

    /// Retires the request in `slot`: releases the KV rows, delivers the summary and
    /// refreshes the per-slot protection schemes.
    fn finalize(&mut self, slot: usize) {
        let active = self.slots[slot]
            .take()
            .expect("finalizing an occupied slot");
        self.cache.release_slot(slot);
        let attribution = self.slot_attribution(slot, &active);
        self.completed_detections += attribution.detections;
        self.completed_recoveries += attribution.recoveries;
        let summary = RequestSummary {
            id: active.id,
            prompt_len: active.prompt_len,
            queued_steps: active.admit_step.saturating_sub(active.enqueue_step),
            service_steps: self.steps.saturating_sub(active.admit_step),
            attribution,
            policy: active.policy,
            tokens: active.tokens,
            margins: active.margins,
        };
        if active.sender.send(TokenEvent::Done(summary)).is_ok() {
            self.completed += 1;
        } else {
            self.cancelled += 1;
        }
        self.refresh_schemes();
    }

    /// Re-announces the slot → scheme map to the shared decode protector (free slots count
    /// as unprotected and never weaken an occupied slot's scheme).
    fn refresh_schemes(&mut self) {
        let schemes: Vec<ProtectionScheme> = self
            .slots
            .iter()
            .map(|s| {
                s.as_ref()
                    .map_or(ProtectionScheme::None, |a| a.policy.scheme)
            })
            .collect();
        self.protector.set_sequence_schemes(&schemes);
    }
}

/// Nearest-rank percentile of an ascending-sorted microsecond sample (0.0 when empty).
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

impl std::fmt::Debug for ServeEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("model", &self.model.config().name)
            .field("slots", &self.slots.len())
            .field("queue_depth", &self.queue.len())
            .field("steps", &self.steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_llm::config::ModelConfig;

    fn engine(model: &Model, slots: usize) -> ServeEngine<'_> {
        ServeEngine::new(model, ServeConfig::with_slots(slots))
    }

    fn collect_done(rx: &Receiver<TokenEvent>) -> Option<RequestSummary> {
        let mut done = None;
        while let Ok(event) = rx.try_recv() {
            if let TokenEvent::Done(summary) = event {
                done = Some(summary);
            }
        }
        done
    }

    #[test]
    fn submit_validates_requests() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 2);
        assert!(engine.submit(ServeRequest::new(vec![], 4)).is_err());
        assert!(engine.submit(ServeRequest::new(vec![100_000], 4)).is_err());
        let max = model.config().max_seq_len;
        assert!(engine.submit(ServeRequest::new(vec![1; max], 1)).is_err());
        assert!(engine.submit(ServeRequest::new(vec![1, 2], 4)).is_ok());
        assert_eq!(engine.stats().queue_depth, 1);
    }

    #[test]
    fn engine_streams_tokens_and_summary() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 2);
        let (id, rx) = engine.submit(ServeRequest::new(vec![1, 5, 9], 4)).unwrap();
        engine.run_until_idle().unwrap();
        let mut streamed = Vec::new();
        let mut summary = None;
        while let Ok(event) = rx.try_recv() {
            match event {
                TokenEvent::Token { token, .. } => streamed.push(token),
                TokenEvent::Done(s) => summary = Some(s),
            }
        }
        let summary = summary.expect("request completes");
        assert_eq!(summary.id, id);
        assert_eq!(summary.tokens, streamed);
        assert_eq!(summary.tokens.len(), 4);
        assert_eq!(summary.prompt_len, 3);
        let solo = model
            .generate(&[1, 5, 9], 4, &mut realm_llm::NoopHook)
            .unwrap();
        assert_eq!(summary.tokens, solo.tokens);
        assert_eq!(summary.margins, solo.margins);
        let stats = engine.stats();
        assert_eq!(stats.requests_completed, 1);
        assert_eq!(stats.tokens_generated, 4);
        assert_eq!(stats.active_slots, 0);
    }

    #[test]
    fn zero_and_one_token_budgets_complete_at_admission() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 1);
        let (_, rx0) = engine.submit(ServeRequest::new(vec![1, 2], 0)).unwrap();
        let (_, rx1) = engine.submit(ServeRequest::new(vec![3, 4], 1)).unwrap();
        let (_, rx2) = engine.submit(ServeRequest::new(vec![5], 2)).unwrap();
        engine.run_until_idle().unwrap();
        assert!(collect_done(&rx0).unwrap().tokens.is_empty());
        assert_eq!(collect_done(&rx1).unwrap().tokens.len(), 1);
        assert_eq!(collect_done(&rx2).unwrap().tokens.len(), 2);
        assert_eq!(engine.stats().requests_completed, 3);
    }

    #[test]
    fn dropped_receiver_cancels_the_request() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 1);
        let (_, rx) = engine.submit(ServeRequest::new(vec![1, 2], 8)).unwrap();
        drop(rx);
        let (_, rx2) = engine.submit(ServeRequest::new(vec![3], 2)).unwrap();
        engine.run_until_idle().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.requests_cancelled, 1);
        assert_eq!(stats.requests_completed, 1);
        assert_eq!(collect_done(&rx2).unwrap().tokens.len(), 2);
    }

    #[test]
    fn stats_report_occupancy_and_throughput() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 2);
        let mut receivers = Vec::new();
        for i in 0..4 {
            let (_, rx) = engine.submit(ServeRequest::new(vec![1 + i, 2], 6)).unwrap();
            receivers.push(rx); // keep the channels open until idle
        }
        engine.step().unwrap();
        let mid = engine.stats();
        assert_eq!(mid.total_slots, 2);
        assert_eq!(mid.active_slots, 2);
        assert_eq!(mid.queue_depth, 2);
        assert!(mid.slot_occupancy() > 0.99);
        engine.run_until_idle().unwrap();
        let done = engine.stats();
        assert_eq!(done.requests_completed, 4);
        assert_eq!(done.tokens_generated, 24);
        assert!(done.tokens_per_second > 0.0);
        assert_eq!(done.detections, 0, "fault-free serving detects nothing");
        assert_eq!(done.detections_per_request(), 0.0);
    }

    #[test]
    fn queue_age_and_shed_counters_surface_in_stats() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 1);
        assert_eq!(
            engine.oldest_queue_age(),
            None,
            "idle engine has no backlog"
        );
        assert_eq!(engine.stats().queue_oldest_age_steps, 0);

        // Occupy the only slot and queue two more; stepping ages the backlog.
        let mut receivers = Vec::new();
        for i in 0..3 {
            let (_, rx) = engine.submit(ServeRequest::new(vec![1 + i, 2], 8)).unwrap();
            receivers.push(rx);
        }
        engine.step().unwrap(); // admits the first, queues the rest at step 0
        engine.step().unwrap();
        engine.step().unwrap();
        let age = engine
            .oldest_queue_age()
            .expect("two requests still queued");
        assert!(
            age >= 2,
            "backlog age advances with engine steps (got {age})"
        );
        assert_eq!(engine.stats().queue_oldest_age_steps, age);

        // Shed decisions made by the admission layer land in the same snapshot.
        engine.note_shed();
        engine.note_shed();
        assert_eq!(engine.stats().requests_shed, 2);
        engine.run_until_idle().unwrap();
        assert_eq!(engine.oldest_queue_age(), None);
        assert_eq!(engine.stats().queue_oldest_age_steps, 0);
        assert_eq!(engine.stats().requests_shed, 2, "sheds are cumulative");
    }

    /// Serves the same four requests and returns their token streams plus final stats.
    fn serve_four(model: &Model) -> (Vec<Vec<u32>>, EngineStats) {
        let mut engine = engine(model, 2);
        let mut receivers = Vec::new();
        for i in 0..4u32 {
            let (_, rx) = engine
                .submit(ServeRequest::new(vec![1 + i, 2, 7], 6))
                .unwrap();
            receivers.push(rx);
        }
        engine.run_until_idle().unwrap();
        let stats = engine.stats();
        let tokens = receivers
            .iter()
            .map(|rx| collect_done(rx).unwrap().tokens)
            .collect();
        (tokens, stats)
    }

    #[test]
    fn sharded_engine_is_bit_exact_and_surfaces_shard_telemetry() {
        let config = ModelConfig::tiny_opt();
        let baseline = Model::new(&config, 11).unwrap();
        let mut sharded = Model::new(&config, 11).unwrap();
        sharded.set_tensor_parallel(3);

        // The shard axis is inert on an unsharded model.
        let plain = engine(&baseline, 2);
        let s = plain.stats();
        assert_eq!(s.tp_degree, 1);
        assert!(!s.is_sharded());
        assert_eq!(
            (s.shard_kills, s.shard_detections, s.shard_failovers),
            (0, 0, 0)
        );
        assert!(plain.shard_stats().is_empty());
        assert!(plain.shard_attribution().is_empty());
        drop(plain);

        let (expected, _) = serve_four(&baseline);
        let (got, stats) = serve_four(&sharded);
        assert_eq!(got, expected, "sharding never changes served tokens");
        assert_eq!(stats.tp_degree, 3);
        assert!(stats.is_sharded());
        assert_eq!(stats.shard_kills, 0, "no faults were armed");
        assert_eq!(stats.shard_failovers, 0);
    }

    #[test]
    fn killed_shard_keeps_the_engine_serving_bit_exact() {
        let config = ModelConfig::tiny_opt();
        let baseline = Model::new(&config, 23).unwrap();
        let mut sharded = Model::new(&config, 23).unwrap();
        sharded.set_tensor_parallel(2);
        let (expected, _) = serve_four(&baseline);

        // Kill shard 1 for its next 3 sharded GEMM dispatches mid-service: the rank is
        // unresponsive, so the engine recomputes its column stripe inline and keeps going.
        sharded
            .tp_group()
            .unwrap()
            .inject_shard_fault(1, realm_tensor::ShardFault::Kill, 3);
        let mut engine = engine(&sharded, 2);
        let mut receivers = Vec::new();
        for i in 0..4u32 {
            let (_, rx) = engine
                .submit(ServeRequest::new(vec![1 + i, 2, 7], 6))
                .unwrap();
            receivers.push(rx);
        }
        engine.run_until_idle().unwrap();
        let got: Vec<Vec<u32>> = receivers
            .iter()
            .map(|rx| collect_done(rx).unwrap().tokens)
            .collect();
        assert_eq!(got, expected, "failover preserves bit-exact output");

        let stats = engine.stats();
        assert_eq!(stats.shard_kills, 3);
        assert_eq!(stats.shard_failovers, 3, "every kill was recovered");
        let per_shard = engine.shard_stats();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(per_shard[1].kills, 3, "kills are charged to the dead shard");
        assert_eq!(per_shard[0].kills, 0);
        let totals: u64 = per_shard.iter().map(|s| s.kills).sum();
        assert_eq!(totals, stats.shard_kills, "aggregate matches per-shard sum");
        // Kills are survived below the hook interface, so the decode protector never saw
        // a deviation to attribute.
        assert!(engine
            .shard_attribution()
            .values()
            .all(|a| a.detections == 0 && a.recoveries == 0));
    }
}
