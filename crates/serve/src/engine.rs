//! The continuous-batching engine loop.
//!
//! [`ServeEngine`] owns a [`BatchedKvCache`] with a fixed number of *slots* and drives
//! lockstep decode over whatever sequences currently occupy them. Between decode steps —
//! never in the middle of one — completed sequences release their slot
//! ([`BatchedKvCache::release_slot`]) and queued requests are admitted into the freed
//! slots, so the batch stays full under sustained load instead of draining in lockstep.
//!
//! Admission assigns a slot but runs **no model work**: the prompt is prefilled chunk by
//! chunk by the budgeted step scheduler. Every step reserves one budget token per slot in
//! the decoding phase — decode always has priority — and spends
//! the rest of [`ServeConfig::step_token_budget`] advancing in-progress prefills, oldest
//! admission first, with every chunk stacked into one batched forward
//! ([`Model::prefill_chunks_batch_ws`]); the decode pass then runs, joined by any prompt
//! that completed within the budget. A long prompt therefore never stalls concurrent
//! decode streams for more than one budget-bounded chunk round — the head-of-line
//! blocking a monolithic admission prefill causes is gone — while a wave of short
//! admissions still costs a single forward and starts decoding the same step, exactly
//! like the old batched admission prefill.
//!
//! Both chunk and decode GEMMs run under the one shared [`SchemeProtector`] whose per-slot
//! schemes are refreshed on every admission and retirement, so each request keeps the
//! protection it asked for (batch-stacked GEMMs escalate to the strictest active policy)
//! and detections during a mid-prompt chunk are attributed to the owning slot through the
//! chunk's row window.
//!
//! Everything is bit-exact with solo inference: chunked prefill produces the same KV rows,
//! logits and fused checksums as the monolithic one (per-row quantization and
//! visible-prefix attention make the forward pass chunk-invariant), so a request admitted
//! mid-flight produces exactly the tokens [`Model::generate`] would have produced for it
//! alone — chunking changes latency distribution and detection amortisation, never output.

use crate::adaptive::{AdaptiveConfig, AdaptiveController};
use crate::queue::{QueuedRequest, RequestQueue};
use crate::request::{RequestId, RequestSummary, ServeError, ServeRequest, TokenEvent};
use realm_core::protection::{
    ProtectionPolicy, RegionAssignment, SchemeProtector, SequenceAttribution, ShardAttribution,
};
use realm_llm::batch::BatchedKvCache;
use realm_llm::hooks::HookChain;
use realm_llm::model::{argmax_with_margin, PrefillChunk};
use realm_llm::{GemmHook, Model};
use realm_systolic::{Dataflow, ProtectionScheme, SystolicArray};
use realm_tensor::Workspace;
use std::sync::mpsc::{channel, Receiver};
use std::time::Instant;

/// Decode-latency samples retained for the percentile stats; the buffer is halved once it
/// reaches twice this size, so a long-running engine keeps a bounded, recent window.
const LATENCY_WINDOW: usize = 4096;

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of concurrent batch slots (the maximum decode batch width).
    pub slots: usize,
    /// Systolic array used to account detection/recovery cost in the protector's stats.
    pub array: SystolicArray,
    /// Fallback protection scheme for anything not covered by a per-request policy.
    pub base_scheme: ProtectionScheme,
    /// Queue-aging interval: a waiting request gains one priority level per this many
    /// engine steps, so low-priority requests cannot starve behind a sustained
    /// high-priority stream. `0` disables aging (strict priority).
    pub aging_steps: u64,
    /// Per-step token budget for the chunked-prefill scheduler; `0` means unlimited.
    ///
    /// Each step first decodes one token per occupied decoding slot (decode is never
    /// budgeted away), then advances at most one in-progress prefill by a chunk of at most
    /// `step_token_budget − decode_rows` tokens. A budget at or below the decode width
    /// stalls prefill for that step only — decoding sequences retire and free budget, so
    /// prefill always makes progress eventually, and when no slot is decoding the whole
    /// budget (at least one token) goes to the prefill chunk.
    pub step_token_budget: usize,
    /// Runtime-adaptive protection (escalation, hysteresis, protection-first shedding).
    /// Disabled by default: the engine then behaves bit-identically to a build without
    /// the controller. See [`crate::adaptive`].
    pub adaptive: AdaptiveConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            slots: 4,
            array: SystolicArray::small(Dataflow::WeightStationary),
            base_scheme: ProtectionScheme::StatisticalAbft,
            aging_steps: 32,
            step_token_budget: 0,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

impl ServeConfig {
    /// A config with `slots` concurrent slots and defaults for everything else.
    pub fn with_slots(slots: usize) -> Self {
        Self {
            slots,
            ..Self::default()
        }
    }

    /// Sets the per-step token budget (see [`ServeConfig::step_token_budget`]).
    pub fn with_step_token_budget(mut self, budget: usize) -> Self {
        self.step_token_budget = budget;
        self
    }

    /// Sets the adaptive-protection configuration (see [`crate::adaptive`]).
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }
}

/// Operator-facing snapshot of the engine's state, returned by [`ServeEngine::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Requests waiting for a slot.
    pub queue_depth: usize,
    /// Slots currently decoding a sequence.
    pub active_slots: usize,
    /// Total batch slots.
    pub total_slots: usize,
    /// Lockstep decode steps executed so far.
    pub steps: u64,
    /// Tokens committed across all requests.
    pub tokens_generated: u64,
    /// Requests accepted by [`ServeEngine::submit`].
    pub requests_submitted: u64,
    /// Requests assigned a batch slot (their prompts prefill chunk by chunk from there).
    pub requests_admitted: u64,
    /// Requests that ran to completion and delivered their summary.
    pub requests_completed: u64,
    /// Requests abandoned because their receiver was dropped mid-stream.
    pub requests_cancelled: u64,
    /// Requests refused by load shedding before they ever entered the queue (counted via
    /// [`ServeEngine::note_shed`]; a network front end answers these with `429`).
    pub requests_shed: u64,
    /// Engine steps the longest-waiting queued request has spent in the queue (0 when the
    /// queue is empty). Queue aging still runs on this clock; shedding SLOs compare
    /// against [`EngineStats::queue_oldest_age_tokens`] instead.
    pub queue_oldest_age_steps: u64,
    /// Budgeted tokens processed since the longest-waiting queued request was enqueued
    /// (0 when the queue is empty). This is the age a shedding SLO is compared against —
    /// see [`ServeEngine::oldest_token_age`]: under chunked prefill a step's cost varies
    /// with the budget, so token age measures backlog in units of actual work.
    pub queue_oldest_age_tokens: u64,
    /// Cumulative tokens the engine has processed: decode rows plus prefill-chunk rows.
    /// The deterministic clock token-age shedding runs on.
    pub token_clock: u64,
    /// Prefill chunks executed by the budgeted scheduler (a monolithic prefill under an
    /// unlimited budget counts as one chunk).
    pub prefill_chunks: u64,
    /// 99th-percentile gap between consecutive decode commits on the same slot, in
    /// microseconds, over the recent window (0.0 until a slot has decoded twice). This is
    /// the head-of-line-blocking metric: a monolithic admission prefill stalls every
    /// in-flight decode for a full prompt, which lands here as a giant gap; budgeted
    /// chunking bounds it.
    pub decode_stall_p99_us: f64,
    /// Fraction of the cumulative per-step token budget actually spent (decode rows plus
    /// chunk rows over budget × steps). 0.0 when the budget is unlimited; may slightly
    /// exceed 1.0 when the decode width alone exceeds the budget, since decode is never
    /// budgeted away.
    pub step_budget_utilization: f64,
    /// ABFT detections charged to requests (completed and in-flight).
    pub detections: u64,
    /// ABFT recoveries charged to requests (completed and in-flight).
    pub recoveries: u64,
    /// Wall-clock seconds since the engine was created.
    pub elapsed_seconds: f64,
    /// Committed tokens per wall-clock second since engine creation.
    pub tokens_per_second: f64,
    /// Median per-step decode latency in microseconds over the recent window
    /// (0.0 before the first decode step).
    pub decode_p50_us: f64,
    /// 99th-percentile per-step decode latency in microseconds over the recent window
    /// (0.0 before the first decode step).
    pub decode_p99_us: f64,
    /// High-water mark of the engine's long-lived scratch workspace in bytes — the
    /// steady-state memory footprint of the allocation-free decode loop. Stabilises after
    /// warmup; growth here indicates a scratch leak.
    pub workspace_high_water_bytes: usize,
    /// Tensor-parallel degree of the served model (1 when unsharded).
    pub tp_degree: usize,
    /// Whole-shard kill events survived by the sharded datapath (the owning rank was
    /// unresponsive and its output stripe was recomputed inline). 0 when unsharded.
    pub shard_kills: u64,
    /// Corrupted shard outputs caught by the per-shard fused checksums, below the hook
    /// interface. 0 when unsharded.
    pub shard_detections: u64,
    /// Shard output stripes recomputed after a kill or a per-shard checksum detection —
    /// every failover kept the engine serving bit-exact output. 0 when unsharded.
    pub shard_failovers: u64,
    /// Adaptive-controller stage-up transitions (Calm → Elevated, Elevated → Escalated)
    /// across all slots. 0 while adaptation is disabled.
    pub policy_escalations: u64,
    /// Adaptive-controller stage-down transitions earned by clean windows. 0 while
    /// adaptation is disabled.
    pub policy_deescalations: u64,
    /// Steps spent with resilient-component protection shed under queue pressure — the
    /// protection-first alternative to a 429. 0 while adaptation (or shedding) is off.
    pub protection_shed_steps: u64,
    /// Steps spent under each protection scheme, indexed by
    /// [`ProtectionScheme::strictness`]. A step is charged to the strictest sequence
    /// scheme any occupied slot announced that step (after adaptive escalation), i.e.
    /// the scheme the batch-stacked GEMMs ran under. Counted whether or not adaptation
    /// is enabled, so static and adaptive runs are directly comparable.
    pub steps_at_scheme: [u64; 7],
}

impl EngineStats {
    /// Fraction of slots currently occupied (0.0 when the engine has no slots).
    pub fn slot_occupancy(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.active_slots as f64 / self.total_slots as f64
        }
    }

    /// Mean detections charged per admitted request (0.0 before the first admission).
    ///
    /// In-flight requests count in both the numerator and the denominator, matching the
    /// [`EngineStats::detections`] field this divides.
    pub fn detections_per_request(&self) -> f64 {
        if self.requests_admitted == 0 {
            0.0
        } else {
            self.detections as f64 / self.requests_admitted as f64
        }
    }

    /// `true` when the served model is tensor-parallel sharded.
    pub fn is_sharded(&self) -> bool {
        self.tp_degree > 1
    }
}

/// Where a slot's sequence is in its lifecycle: the admission state machine.
///
/// ```text
///   admit (slot assignment, no model work)
///     │
///     ▼
///   Prefilling { done: 0 } ──chunk──▶ Prefilling { done } ──chunk──▶ ⋯
///     │                                                        │
///     └────────── final chunk: commit first token ─────────────┘
///                              │
///                              ▼
///                          Decoding ──budget reached / cancelled──▶ finalize
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotPhase {
    /// The prompt's first `done` tokens are resident in the slot's KV rows; the rest wait
    /// for budget. The sequence takes no part in lockstep decode yet.
    Prefilling {
        /// Prompt tokens already processed into the slot.
        done: usize,
    },
    /// Prefill is complete and the first token is committed; the slot decodes in lockstep.
    Decoding,
}

/// A sequence currently occupying a batch slot.
#[derive(Debug)]
struct ActiveSeq {
    id: RequestId,
    sender: std::sync::mpsc::Sender<TokenEvent>,
    /// Prompt tokens, retained until prefill completes (chunks index into it).
    prompt: Vec<u32>,
    /// Prefill progress / decode membership.
    phase: SlotPhase,
    /// Last committed token — the input of the next decode step (meaningful once
    /// `phase` is [`SlotPhase::Decoding`]).
    last: u32,
    tokens: Vec<u32>,
    margins: Vec<f32>,
    target: usize,
    policy: ProtectionPolicy,
    enqueue_step: u64,
    admit_step: u64,
    /// Instant of this slot's most recent token commit, once the first token exists;
    /// consecutive-commit gaps feed [`EngineStats::decode_stall_p99_us`].
    last_decode_at: Option<Instant>,
    /// The shared protector's attribution for this slot at admission time; the request is
    /// charged the delta (slots are reused across requests).
    baseline: SequenceAttribution,
}

/// The continuous-batching serving engine.
///
/// See the [crate-level documentation](crate) for a worked end-to-end example. The engine
/// is synchronous and deterministic: [`ServeEngine::submit`] enqueues, [`ServeEngine::step`]
/// advances one admission + lockstep-decode round, and [`ServeEngine::run_until_idle`]
/// pumps until queue and slots are empty. Token streams are delivered through the
/// [`std::sync::mpsc::Receiver`] returned at submission, so a driving thread can hand
/// receivers to per-client consumers. The engine itself is `Send` — it can be moved into a
/// dedicated serving thread and fed between steps.
pub struct ServeEngine<'m> {
    model: &'m Model,
    config: ServeConfig,
    queue: RequestQueue,
    slots: Vec<Option<ActiveSeq>>,
    cache: BatchedKvCache,
    protector: SchemeProtector,
    /// The runtime policy machine driving escalation/de-escalation and protection
    /// shedding; a transparent no-op unless [`ServeConfig::adaptive`] enables it.
    adaptive: AdaptiveController,
    /// Absolute per-slot detection counts last seen by the adaptive controller, so each
    /// step feeds it the attribution delta (slots are reused across requests).
    adaptive_seen: Vec<u64>,
    /// Reused per-step buffers for the controller's observations.
    adaptive_deltas: Vec<u64>,
    adaptive_occupied: Vec<bool>,
    /// Steps charged per scheme strictness rank (see [`EngineStats::steps_at_scheme`]).
    steps_at_scheme: [u64; 7],
    fault_hook: Option<Box<dyn GemmHook + Send>>,
    /// Long-lived scratch arena shared by every admission prefill and decode step: after
    /// the first few steps warm its pools, the steady-state loop stops allocating.
    ws: Workspace,
    /// Reused per-step buffer of pending tokens (one slot per batch slot).
    step_tokens: Vec<Option<u32>>,
    /// Recent per-step decode latencies in microseconds (bounded window).
    decode_us: Vec<u64>,
    /// Recent decode-to-decode commit gaps per slot in microseconds (bounded window).
    stall_us: Vec<u64>,
    started: Instant,
    steps: u64,
    /// Cumulative tokens processed: decode rows plus prefill-chunk rows.
    token_clock: u64,
    /// Prefill chunks executed by the budgeted scheduler.
    prefill_chunks: u64,
    /// Cumulative tokens spent in budgeted steps (decode rows + chunk rows).
    budget_used: u64,
    /// Cumulative budget offered across budgeted steps (`step_token_budget × steps`);
    /// 0 while the budget is unlimited.
    budget_available: u64,
    tokens_generated: u64,
    submitted: u64,
    admitted: u64,
    completed: u64,
    cancelled: u64,
    shed: u64,
    completed_detections: u64,
    completed_recoveries: u64,
}

impl<'m> ServeEngine<'m> {
    /// Creates an engine with `config.slots` batch slots over `model` (slot count is
    /// clamped to at least 1).
    pub fn new(model: &'m Model, config: ServeConfig) -> Self {
        let slots = config.slots.max(1);
        let mut protector = SchemeProtector::with_default_regions(config.base_scheme, config.array);
        // On a sharded model the shared decode protector also localises fused-checksum
        // deviations to shard column stripes, so operator telemetry can name the suspect
        // fault domain even for corruption injected above the sharded layer.
        protector.set_shard_attribution(model.tp_group().map(|g| g.degree()));
        Self {
            model,
            config,
            queue: RequestQueue::new(config.aging_steps),
            slots: (0..slots).map(|_| None).collect(),
            cache: model.new_batched_cache(slots),
            protector,
            adaptive: AdaptiveController::new(slots, config.adaptive, &RegionAssignment::new()),
            adaptive_seen: vec![0; slots],
            adaptive_deltas: vec![0; slots],
            adaptive_occupied: vec![false; slots],
            steps_at_scheme: [0; 7],
            fault_hook: None,
            ws: Workspace::new(),
            step_tokens: Vec::new(),
            decode_us: Vec::new(),
            stall_us: Vec::new(),
            started: Instant::now(),
            steps: 0,
            token_clock: 0,
            prefill_chunks: 0,
            budget_used: 0,
            budget_available: 0,
            tokens_generated: 0,
            submitted: 0,
            admitted: 0,
            completed: 0,
            cancelled: 0,
            shed: 0,
            completed_detections: 0,
            completed_recoveries: 0,
        }
    }

    /// Installs a fault hook (typically a `realm-inject` `ErrorInjector`) that runs ahead
    /// of the protector on every GEMM — the serving equivalent of operating the array at a
    /// scaled voltage.
    pub fn with_fault_hook(mut self, hook: Box<dyn GemmHook + Send>) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// The model this engine serves.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// Validates `request` and enqueues it, returning the assigned id and the channel the
    /// request's [`TokenEvent`]s will stream over.
    ///
    /// Dropping the receiver cancels the request: the engine notices the closed channel at
    /// the next commit and frees the slot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for an empty prompt, an out-of-vocabulary
    /// token, or a prompt plus budget exceeding the model's context window.
    pub fn submit(
        &mut self,
        request: ServeRequest,
    ) -> Result<(RequestId, Receiver<TokenEvent>), ServeError> {
        if request.prompt.is_empty() {
            return Err(ServeError::InvalidRequest {
                detail: "prompt must not be empty".into(),
            });
        }
        let vocab = self.model.config().vocab_size;
        if let Some(&bad) = request.prompt.iter().find(|&&t| t as usize >= vocab) {
            return Err(ServeError::InvalidRequest {
                detail: format!("prompt token {bad} is outside the vocabulary ({vocab})"),
            });
        }
        let max_seq_len = self.model.config().max_seq_len;
        if request.prompt.len() + request.max_new_tokens > max_seq_len {
            return Err(ServeError::InvalidRequest {
                detail: format!(
                    "prompt ({}) plus generation budget ({}) exceeds max_seq_len {max_seq_len}",
                    request.prompt.len(),
                    request.max_new_tokens
                ),
            });
        }
        let (sender, receiver) = channel();
        self.submitted += 1;
        let id = self.submitted;
        self.queue.push(QueuedRequest::new(
            id,
            request,
            sender,
            self.steps,
            self.token_clock,
        ));
        Ok((id, receiver))
    }

    /// Advances the engine by one round: assigns queued requests to free slots, spends
    /// the token budget left after reserving the decoding slots' width advancing
    /// in-progress prefills by one batched chunk forward, then runs one lockstep decode
    /// step across the decoding slots — including prompts that just completed, while the
    /// budget admits their rows. Returns `true` while work remains (occupied slots or
    /// queued requests).
    ///
    /// Decode has strict priority through the reservation: a newly admitted long prompt
    /// cannot stall in-flight streams for more than the chunk rows the budget leaves
    /// after their own. Among prefilling slots the budget is split
    /// oldest-admission-first (FIFO), so chunked admissions complete in order.
    ///
    /// # Errors
    ///
    /// Propagates model-inference errors; validation at [`ServeEngine::submit`] makes
    /// these unreachable for accepted requests in normal operation.
    pub fn step(&mut self) -> Result<bool, ServeError> {
        // Admission: assign every free slot a queued request. Assignment is pure
        // bookkeeping — the prompt is prefilled chunk by chunk below, under the shared
        // protector, so admission itself never blocks a decode.
        while let Some(slot) = self.slots.iter().position(Option::is_none) {
            let Some(queued) = self.queue.pop(self.steps) else {
                break;
            };
            self.install(slot, queued);
        }
        if self.slots.iter().all(Option::is_none) {
            return Ok(!self.queue.is_empty());
        }
        self.steps += 1;
        // Tick the step clock on the fault hook before any of the step's GEMMs run, so a
        // time-correlated injector (burst mode) sees exactly one tick per scheduler step —
        // `on_batch_begin` fires once per *forward* and a step may run two (chunk + decode).
        if let Some(hook) = self.fault_hook.as_mut() {
            hook.on_step_begin(self.steps);
        }
        // Charge the step to the strictest sequence scheme any occupied slot announces —
        // the scheme this step's batch-stacked GEMMs run under.
        let step_scheme = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, s)| {
                s.as_ref()
                    .map(|a| self.adaptive.slot_scheme(slot, a.policy.scheme))
            })
            .max_by_key(|s| s.strictness())
            .unwrap_or(ProtectionScheme::None);
        self.steps_at_scheme[step_scheme.strictness() as usize] += 1;

        // Prefill pass first: the token budget minus the width reserved for the decoding
        // slots advances in-progress prefills, oldest admission first, in one batched
        // forward. Running prefill *before* decode lets a prompt that completes within
        // the budget join the same step's decode pass — admission costs no pipeline
        // bubble — while the reservation keeps decode's strict budget priority: in-flight
        // streams never wait on more chunk rows than the budget leaves after their own.
        let decoding_now = self
            .slots
            .iter()
            .flatten()
            .filter(|a| matches!(a.phase, SlotPhase::Decoding))
            .count();
        let budget = self.config.step_token_budget;
        let chunk_allow = if budget == 0 {
            usize::MAX
        } else {
            budget.saturating_sub(decoding_now)
        };
        let (chunk_rows, fresh) = if chunk_allow > 0 {
            self.advance_prefills(chunk_allow)?
        } else {
            (0, Vec::new())
        };

        // Decode pass: one token for every pre-step decoding slot, plus as many freshly
        // prefilled slots as the budget still admits (their chunk rows are spent above;
        // the rest join next step). With no decoding slots the whole budget was available
        // to chunks, so a chunk of at least one token always fits and prefill can never
        // livelock.
        let blocked = &fresh[if budget == 0 {
            fresh.len()
        } else {
            budget.saturating_sub(decoding_now + chunk_rows)
        }
        .min(fresh.len())..];
        let Self {
            slots, step_tokens, ..
        } = self;
        step_tokens.clear();
        step_tokens.extend(slots.iter().enumerate().map(|(slot, s)| {
            s.as_ref().and_then(|a| match a.phase {
                SlotPhase::Decoding if !blocked.contains(&slot) => Some(a.last),
                _ => None,
            })
        }));
        let decode_rows = step_tokens.iter().filter(|t| t.is_some()).count();
        if decode_rows > 0 {
            let decode_started = Instant::now();
            let step_logits = {
                let Self {
                    model,
                    cache,
                    protector,
                    fault_hook,
                    ws,
                    step_tokens,
                    ..
                } = self;
                let mut chain = HookChain::new();
                if let Some(hook) = fault_hook {
                    chain.push(hook.as_mut());
                }
                chain.push(protector);
                model.decode_step_batch_ws(step_tokens, cache, &mut chain, ws)?
            };
            self.note_decode_latency(decode_started);
            for (slot, logits) in step_logits.into_iter().enumerate() {
                let Some(logits) = logits else { continue };
                let (next, margin) = argmax_with_margin(&logits);
                self.ws.recycle_vec_f32(logits);
                let active = self.slots[slot]
                    .as_mut()
                    .expect("decode produced logits for an occupied slot");
                active.last = next;
                let stall = active
                    .last_decode_at
                    .replace(Instant::now())
                    .map(|prev| prev.elapsed());
                let finished = Self::commit(active, next, margin);
                self.tokens_generated += 1;
                if let Some(stall) = stall {
                    self.note_decode_stall(stall);
                }
                if finished {
                    self.finalize(slot);
                }
            }
        }

        self.token_clock += (decode_rows + chunk_rows) as u64;
        if budget > 0 {
            self.budget_available += budget as u64;
            self.budget_used += (decode_rows + chunk_rows) as u64;
        }
        if self.adaptive.is_enabled() {
            self.update_adaptive();
        }
        self.ws.reset();
        Ok(self.has_work())
    }

    /// Feeds this step's per-slot detection deltas and queue pressure to the adaptive
    /// controller and re-announces schemes when the policy machine moved. Runs at the end
    /// of every step, after the step's GEMMs charged their attribution, so a transition
    /// takes effect from the *next* step's first GEMM — the controller never changes
    /// protection mid-forward.
    fn update_adaptive(&mut self) {
        for slot in 0..self.slots.len() {
            let current = self
                .protector
                .sequence_attribution()
                .get(&slot)
                .map_or(0, |a| a.detections);
            self.adaptive_deltas[slot] = current.saturating_sub(self.adaptive_seen[slot]);
            self.adaptive_seen[slot] = current;
            self.adaptive_occupied[slot] = self.slots[slot].is_some();
        }
        let pressure = self.queue.oldest_token_age(self.token_clock);
        let changed = self.adaptive.observe_step(
            self.steps,
            &self.adaptive_deltas,
            &self.adaptive_occupied,
            pressure,
        );
        if changed {
            self.refresh_schemes();
        }
    }

    /// Spends up to `budget_tokens` prompt tokens advancing every in-progress prefill,
    /// oldest admission first, in **one** batched forward under the shared protector
    /// ([`Model::prefill_chunks_batch_ws`]); returns the number of tokens processed plus
    /// the slots that completed their prompt this step and are still active (FIFO order)
    /// — candidates for joining the same step's decode pass. The budget is split FIFO by
    /// admission order — the oldest prefill takes as much as it needs, the next takes
    /// what is left — so chunked admissions complete in order while a wave of admissions
    /// still costs one forward, not one per request. A slot's final chunk commits the
    /// request's first token (budget-0 requests finalize with empty output); earlier
    /// chunks only extend the slot's resident KV rows.
    fn advance_prefills(
        &mut self,
        budget_tokens: usize,
    ) -> Result<(usize, Vec<usize>), ServeError> {
        let mut order: Vec<(u64, RequestId, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, s)| s.as_ref().map(|a| (a, slot)))
            .filter(|(a, _)| matches!(a.phase, SlotPhase::Prefilling { .. }))
            .map(|(a, slot)| (a.admit_step, a.id, slot))
            .collect();
        if order.is_empty() {
            return Ok((0, Vec::new()));
        }
        order.sort_unstable();
        let mut left = budget_tokens;
        let mut plan: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for (_, _, slot) in order {
            if left == 0 {
                break;
            }
            let active = self.slots[slot].as_ref().expect("slot is occupied");
            let SlotPhase::Prefilling { done } = active.phase else {
                unreachable!("the plan only holds prefilling slots")
            };
            let take = left.min(active.prompt.len() - done);
            plan.push((slot, done..done + take));
            left -= take;
        }
        let per_chunk = {
            let Self {
                model,
                slots,
                cache,
                protector,
                fault_hook,
                ws,
                ..
            } = self;
            let chunks: Vec<PrefillChunk<'_>> = plan
                .iter()
                .map(|(slot, range)| PrefillChunk {
                    prompt: &slots[*slot].as_ref().expect("slot is occupied").prompt,
                    range: range.clone(),
                    slot: *slot,
                })
                .collect();
            let mut chain = HookChain::new();
            if let Some(hook) = fault_hook {
                chain.push(hook.as_mut());
            }
            chain.push(protector);
            model.prefill_chunks_batch_ws(&chunks, cache, &mut chain, ws)?
        };
        self.prefill_chunks += plan.len() as u64;
        let mut rows = 0;
        let mut fresh = Vec::new();
        for ((slot, range), logits) in plan.into_iter().zip(per_chunk) {
            rows += range.len();
            let active = self.slots[slot].as_mut().expect("slot stays occupied");
            if range.end < active.prompt.len() {
                active.phase = SlotPhase::Prefilling { done: range.end };
                continue;
            }
            // Final chunk: its last row is the prompt's last position, so its argmax is
            // the request's first token — bit-identical to a monolithic prefill's commit.
            let (first, margin) = argmax_with_margin(logits.row(logits.rows() - 1));
            active.phase = SlotPhase::Decoding;
            active.last = first;
            active.last_decode_at = Some(Instant::now());
            if active.target == 0 {
                self.finalize(slot);
                continue;
            }
            let finished = Self::commit(active, first, margin);
            self.tokens_generated += 1;
            if finished {
                self.finalize(slot);
            } else {
                fresh.push(slot);
            }
        }
        Ok((rows, fresh))
    }

    /// Records one decode step's wall-clock latency in the bounded sample window.
    fn note_decode_latency(&mut self, started: Instant) {
        if self.decode_us.len() >= 2 * LATENCY_WINDOW {
            self.decode_us.drain(..LATENCY_WINDOW);
        }
        self.decode_us.push(started.elapsed().as_micros() as u64);
    }

    /// Records one slot's gap between consecutive token commits in the bounded window.
    fn note_decode_stall(&mut self, gap: std::time::Duration) {
        if self.stall_us.len() >= 2 * LATENCY_WINDOW {
            self.stall_us.drain(..LATENCY_WINDOW);
        }
        self.stall_us.push(gap.as_micros() as u64);
    }

    /// Pumps [`ServeEngine::step`] until no queued or active request remains.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeEngine::step`] error.
    pub fn run_until_idle(&mut self) -> Result<(), ServeError> {
        while self.step()? {}
        Ok(())
    }

    /// Returns `true` while any request is queued or occupying a slot.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || self.slots.iter().any(Option::is_some)
    }

    /// Engine steps the longest-waiting queued request has spent in the queue, or `None`
    /// when nothing is queued.
    ///
    /// This is the queue's own age bookkeeping, exposed so an admission-control layer (the
    /// network front end's load shedder) can compare the backlog against an age SLO
    /// without duplicating enqueue-step tracking. Measured in engine steps — the same
    /// deterministic clock queue aging uses — not wall-clock time.
    pub fn oldest_queue_age(&self) -> Option<u64> {
        self.queue.oldest_age(self.steps)
    }

    /// Budgeted tokens processed since the longest-waiting queued request was enqueued,
    /// or `None` when nothing is queued.
    ///
    /// This is the age a shedding SLO should compare against: with a per-step token
    /// budget, steps are no longer uniform units of work, but the token clock — decode
    /// rows plus prefill-chunk rows — still is. A request that has watched N budgeted
    /// tokens go to other requests has waited N tokens' worth of compute, whatever the
    /// step count says. Deterministic for a given schedule, like the step clock.
    pub fn oldest_token_age(&self) -> Option<u64> {
        self.queue.oldest_token_age(self.token_clock)
    }

    /// Records one load-shed decision: a request that was refused *before* submission
    /// because the queue backlog exceeded the operator's age SLO.
    ///
    /// The engine never sheds on its own — [`ServeEngine::submit`] accepts everything
    /// valid — so the admission layer that refused the request charges the event here,
    /// keeping all serving counters in one [`EngineStats`] snapshot.
    pub fn note_shed(&mut self) {
        self.shed += 1;
    }

    /// A snapshot of queue depth, slot occupancy, throughput and reliability counters.
    pub fn stats(&self) -> EngineStats {
        let mut detections = self.completed_detections;
        let mut recoveries = self.completed_recoveries;
        for (slot, active) in self.slots.iter().enumerate() {
            let Some(active) = active else { continue };
            let attr = self.slot_attribution(slot, active);
            detections += attr.detections;
            recoveries += attr.recoveries;
        }
        let elapsed_seconds = self.started.elapsed().as_secs_f64();
        let mut sorted_us = self.decode_us.clone();
        sorted_us.sort_unstable();
        let mut sorted_stall_us = self.stall_us.clone();
        sorted_stall_us.sort_unstable();
        let shard_totals = self
            .model
            .tp_group()
            .map(|g| g.totals())
            .unwrap_or_default();
        EngineStats {
            queue_depth: self.queue.len(),
            active_slots: self.slots.iter().filter(|s| s.is_some()).count(),
            total_slots: self.slots.len(),
            steps: self.steps,
            tokens_generated: self.tokens_generated,
            requests_submitted: self.submitted,
            requests_admitted: self.admitted,
            requests_completed: self.completed,
            requests_cancelled: self.cancelled,
            requests_shed: self.shed,
            queue_oldest_age_steps: self.oldest_queue_age().unwrap_or(0),
            queue_oldest_age_tokens: self.oldest_token_age().unwrap_or(0),
            token_clock: self.token_clock,
            prefill_chunks: self.prefill_chunks,
            decode_stall_p99_us: percentile_us(&sorted_stall_us, 0.99),
            step_budget_utilization: if self.budget_available == 0 {
                0.0
            } else {
                self.budget_used as f64 / self.budget_available as f64
            },
            detections,
            recoveries,
            elapsed_seconds,
            tokens_per_second: if elapsed_seconds > 0.0 {
                self.tokens_generated as f64 / elapsed_seconds
            } else {
                0.0
            },
            decode_p50_us: percentile_us(&sorted_us, 0.50),
            decode_p99_us: percentile_us(&sorted_us, 0.99),
            workspace_high_water_bytes: self.ws.high_water_mark_bytes(),
            tp_degree: self.model.tp_group().map_or(1, |g| g.degree()),
            shard_kills: shard_totals.kills,
            shard_detections: shard_totals.detections,
            shard_failovers: shard_totals.failovers,
            policy_escalations: self.adaptive.escalations(),
            policy_deescalations: self.adaptive.deescalations(),
            protection_shed_steps: self.adaptive.shed_steps(),
            steps_at_scheme: self.steps_at_scheme,
        }
    }

    /// The runtime policy machine: per-slot escalation stages, the shed flag and the
    /// transition counters. A disabled controller reports every slot Calm forever.
    pub fn adaptive(&self) -> &AdaptiveController {
        &self.adaptive
    }

    /// Per-shard reliability counters of the served model's tensor-parallel group, one
    /// entry per shard in shard order (empty when the model is unsharded).
    ///
    /// These count events handled *below* the hook interface by the sharded datapath
    /// itself — rank kills survived, per-shard checksum detections, stripe recomputes —
    /// and are cumulative over the `TpGroup`'s lifetime. The aggregate is surfaced in
    /// [`EngineStats::shard_kills`] and friends.
    pub fn shard_stats(&self) -> Vec<realm_tensor::TpShardStats> {
        self.model.shard_stats()
    }

    /// Shard attribution charged by the shared decode protector: fused-checksum
    /// detections whose column deviations localise to a shard's output stripe, keyed by
    /// shard index. Empty when the model is unsharded.
    ///
    /// This is the *above*-hook complement of [`ServeEngine::shard_stats`]: corruption
    /// the sharded layer already repaired never reaches the protector, so entries here
    /// point at faults injected into the merged accumulator (or real upstream faults).
    pub fn shard_attribution(&self) -> &std::collections::BTreeMap<usize, ShardAttribution> {
        self.protector.shard_attribution()
    }

    /// Installs `queued` into `slot` in the [`SlotPhase::Prefilling`] phase. No model
    /// work happens here — the budgeted scheduler prefills the prompt chunk by chunk —
    /// but the slot's protection scheme is announced to the shared protector immediately
    /// so the very first chunk GEMMs already run under the request's policy.
    fn install(&mut self, slot: usize, queued: QueuedRequest) {
        let baseline = self
            .protector
            .sequence_attribution()
            .get(&slot)
            .copied()
            .unwrap_or_default();
        self.slots[slot] = Some(ActiveSeq {
            id: queued.id,
            sender: queued.sender,
            prompt: queued.prompt,
            phase: SlotPhase::Prefilling { done: 0 },
            last: 0,
            tokens: Vec::with_capacity(queued.max_new_tokens),
            margins: Vec::with_capacity(queued.max_new_tokens),
            target: queued.max_new_tokens,
            policy: queued.policy,
            enqueue_step: queued.enqueue_step,
            admit_step: self.steps,
            last_decode_at: None,
            baseline,
        });
        self.admitted += 1;
        self.refresh_schemes();
    }

    /// Records a committed token and streams it; returns `true` if the request finished
    /// (budget reached) or was cancelled (receiver dropped).
    fn commit(active: &mut ActiveSeq, token: u32, margin: f32) -> bool {
        active.tokens.push(token);
        active.margins.push(margin);
        let delivered = active
            .sender
            .send(TokenEvent::Token {
                id: active.id,
                index: active.tokens.len() - 1,
                token,
                margin,
            })
            .is_ok();
        !delivered || active.tokens.len() >= active.target
    }

    /// Total attribution charged to the request in `slot`: the shared protector's delta
    /// since admission. Prefill chunks and decode steps both run under the shared
    /// protector (chunks announce a row partition whose only non-empty group is this
    /// slot), so one delta covers the request's whole lifetime.
    fn slot_attribution(&self, slot: usize, active: &ActiveSeq) -> SequenceAttribution {
        let current = self
            .protector
            .sequence_attribution()
            .get(&slot)
            .copied()
            .unwrap_or_default();
        SequenceAttribution {
            detections: current
                .detections
                .saturating_sub(active.baseline.detections),
            recoveries: current
                .recoveries
                .saturating_sub(active.baseline.recoveries),
        }
    }

    /// Retires the request in `slot`: releases the KV rows, delivers the summary and
    /// refreshes the per-slot protection schemes.
    fn finalize(&mut self, slot: usize) {
        let active = self.slots[slot]
            .take()
            .expect("finalizing an occupied slot");
        self.cache.release_slot(slot);
        let attribution = self.slot_attribution(slot, &active);
        self.completed_detections += attribution.detections;
        self.completed_recoveries += attribution.recoveries;
        let escalations = self.adaptive.retire_slot(slot);
        let summary = RequestSummary {
            id: active.id,
            prompt_len: active.prompt.len(),
            queued_steps: active.admit_step.saturating_sub(active.enqueue_step),
            service_steps: self.steps.saturating_sub(active.admit_step),
            attribution,
            escalations,
            policy: active.policy,
            tokens: active.tokens,
            margins: active.margins,
        };
        if active.sender.send(TokenEvent::Done(summary)).is_ok() {
            self.completed += 1;
        } else {
            self.cancelled += 1;
        }
        self.refresh_schemes();
    }

    /// Re-announces the slot → scheme map to the shared decode protector (free slots count
    /// as unprotected and never weaken an occupied slot's scheme), with adaptive
    /// escalation applied per slot, and installs the controller's per-component overlay
    /// (escalated sensitive components, shed resilient components) when adaptation is on.
    fn refresh_schemes(&mut self) {
        let Self {
            slots,
            adaptive,
            protector,
            ..
        } = self;
        let schemes: Vec<ProtectionScheme> = slots
            .iter()
            .enumerate()
            .map(|(slot, s)| {
                s.as_ref().map_or(ProtectionScheme::None, |a| {
                    adaptive.slot_scheme(slot, a.policy.scheme)
                })
            })
            .collect();
        protector.set_sequence_schemes(&schemes);
        if adaptive.is_enabled() {
            let overlay = adaptive.component_overlay();
            if overlay.is_empty() {
                protector.clear_component_schemes();
            } else {
                protector.set_component_schemes(&overlay);
            }
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted microsecond sample (0.0 when empty).
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

impl std::fmt::Debug for ServeEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("model", &self.model.config().name)
            .field("slots", &self.slots.len())
            .field("queue_depth", &self.queue.len())
            .field("steps", &self.steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_llm::config::ModelConfig;

    fn engine(model: &Model, slots: usize) -> ServeEngine<'_> {
        ServeEngine::new(model, ServeConfig::with_slots(slots))
    }

    fn collect_done(rx: &Receiver<TokenEvent>) -> Option<RequestSummary> {
        let mut done = None;
        while let Ok(event) = rx.try_recv() {
            if let TokenEvent::Done(summary) = event {
                done = Some(summary);
            }
        }
        done
    }

    #[test]
    fn submit_validates_requests() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 2);
        assert!(engine.submit(ServeRequest::new(vec![], 4)).is_err());
        assert!(engine.submit(ServeRequest::new(vec![100_000], 4)).is_err());
        let max = model.config().max_seq_len;
        assert!(engine.submit(ServeRequest::new(vec![1; max], 1)).is_err());
        assert!(engine.submit(ServeRequest::new(vec![1, 2], 4)).is_ok());
        assert_eq!(engine.stats().queue_depth, 1);
    }

    #[test]
    fn engine_streams_tokens_and_summary() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 2);
        let (id, rx) = engine.submit(ServeRequest::new(vec![1, 5, 9], 4)).unwrap();
        engine.run_until_idle().unwrap();
        let mut streamed = Vec::new();
        let mut summary = None;
        while let Ok(event) = rx.try_recv() {
            match event {
                TokenEvent::Token { token, .. } => streamed.push(token),
                TokenEvent::Done(s) => summary = Some(s),
            }
        }
        let summary = summary.expect("request completes");
        assert_eq!(summary.id, id);
        assert_eq!(summary.tokens, streamed);
        assert_eq!(summary.tokens.len(), 4);
        assert_eq!(summary.prompt_len, 3);
        let solo = model
            .generate(&[1, 5, 9], 4, &mut realm_llm::NoopHook)
            .unwrap();
        assert_eq!(summary.tokens, solo.tokens);
        assert_eq!(summary.margins, solo.margins);
        let stats = engine.stats();
        assert_eq!(stats.requests_completed, 1);
        assert_eq!(stats.tokens_generated, 4);
        assert_eq!(stats.active_slots, 0);
    }

    #[test]
    fn zero_and_one_token_budgets_complete_at_admission() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 1);
        let (_, rx0) = engine.submit(ServeRequest::new(vec![1, 2], 0)).unwrap();
        let (_, rx1) = engine.submit(ServeRequest::new(vec![3, 4], 1)).unwrap();
        let (_, rx2) = engine.submit(ServeRequest::new(vec![5], 2)).unwrap();
        engine.run_until_idle().unwrap();
        assert!(collect_done(&rx0).unwrap().tokens.is_empty());
        assert_eq!(collect_done(&rx1).unwrap().tokens.len(), 1);
        assert_eq!(collect_done(&rx2).unwrap().tokens.len(), 2);
        assert_eq!(engine.stats().requests_completed, 3);
    }

    #[test]
    fn dropped_receiver_cancels_the_request() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 1);
        let (_, rx) = engine.submit(ServeRequest::new(vec![1, 2], 8)).unwrap();
        drop(rx);
        let (_, rx2) = engine.submit(ServeRequest::new(vec![3], 2)).unwrap();
        engine.run_until_idle().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.requests_cancelled, 1);
        assert_eq!(stats.requests_completed, 1);
        assert_eq!(collect_done(&rx2).unwrap().tokens.len(), 2);
    }

    #[test]
    fn stats_report_occupancy_and_throughput() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 2);
        let mut receivers = Vec::new();
        for i in 0..4 {
            let (_, rx) = engine.submit(ServeRequest::new(vec![1 + i, 2], 6)).unwrap();
            receivers.push(rx); // keep the channels open until idle
        }
        engine.step().unwrap();
        let mid = engine.stats();
        assert_eq!(mid.total_slots, 2);
        assert_eq!(mid.active_slots, 2);
        assert_eq!(mid.queue_depth, 2);
        assert!(mid.slot_occupancy() > 0.99);
        engine.run_until_idle().unwrap();
        let done = engine.stats();
        assert_eq!(done.requests_completed, 4);
        assert_eq!(done.tokens_generated, 24);
        assert!(done.tokens_per_second > 0.0);
        assert_eq!(done.detections, 0, "fault-free serving detects nothing");
        assert_eq!(done.detections_per_request(), 0.0);
    }

    #[test]
    fn queue_age_and_shed_counters_surface_in_stats() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let mut engine = engine(&model, 1);
        assert_eq!(
            engine.oldest_queue_age(),
            None,
            "idle engine has no backlog"
        );
        assert_eq!(engine.stats().queue_oldest_age_steps, 0);

        // Occupy the only slot and queue two more; stepping ages the backlog.
        let mut receivers = Vec::new();
        for i in 0..3 {
            let (_, rx) = engine.submit(ServeRequest::new(vec![1 + i, 2], 8)).unwrap();
            receivers.push(rx);
        }
        engine.step().unwrap(); // admits the first, queues the rest at step 0
        engine.step().unwrap();
        engine.step().unwrap();
        let age = engine
            .oldest_queue_age()
            .expect("two requests still queued");
        assert!(
            age >= 2,
            "backlog age advances with engine steps (got {age})"
        );
        assert_eq!(engine.stats().queue_oldest_age_steps, age);

        // Shed decisions made by the admission layer land in the same snapshot.
        engine.note_shed();
        engine.note_shed();
        assert_eq!(engine.stats().requests_shed, 2);
        engine.run_until_idle().unwrap();
        assert_eq!(engine.oldest_queue_age(), None);
        assert_eq!(engine.stats().queue_oldest_age_steps, 0);
        assert_eq!(engine.stats().requests_shed, 2, "sheds are cumulative");
    }

    #[test]
    fn budgeted_prefill_chunks_long_prompts_without_stalling_decode() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let long_prompt: Vec<u32> = (0..24).map(|i| 1 + (i % 7)).collect();

        // Unbudgeted reference: one monolithic chunk per admission.
        let mut mono = ServeEngine::new(&model, ServeConfig::with_slots(2));
        let (_, mono_short) = mono.submit(ServeRequest::new(vec![1, 5, 9], 8)).unwrap();
        let (_, mono_long) = mono
            .submit(ServeRequest::new(long_prompt.clone(), 4))
            .unwrap();
        mono.run_until_idle().unwrap();
        assert_eq!(mono.stats().prefill_chunks, 2, "one chunk per admission");
        assert_eq!(
            mono.stats().step_budget_utilization,
            0.0,
            "unlimited budget reports no utilization"
        );

        // Budget 4: the 24-token prompt needs several steps, and the short request's
        // decode proceeds every step in between.
        let config = ServeConfig::with_slots(2).with_step_token_budget(4);
        let mut engine = ServeEngine::new(&model, config);
        let (_, rx_short) = engine.submit(ServeRequest::new(vec![1, 5, 9], 8)).unwrap();
        let (_, rx_long) = engine
            .submit(ServeRequest::new(long_prompt.clone(), 4))
            .unwrap();
        // Step 1: both admitted; short prefills first (FIFO), chunk of 3 completes it.
        engine.step().unwrap();
        // Step 2: short decodes (1 row), long advances by 3 — and every later step keeps
        // decoding short while long's prefill is in flight.
        let mut short_events = Vec::new();
        for _ in 0..8 {
            short_events.extend(rx_short.try_iter());
            engine.step().unwrap();
        }
        short_events.extend(rx_short.try_iter());
        let chunked_short = short_events
            .iter()
            .find_map(|e| match e {
                TokenEvent::Done(s) => Some(s.clone()),
                TokenEvent::Token { .. } => None,
            })
            .expect("short stream finished its 8 tokens while the long prompt chunked");
        engine.run_until_idle().unwrap();
        let stats = engine.stats();
        // 24 tokens at ≤ 3 per chunk (budget 4 minus one decode row) plus the short
        // prompt's single chunk: at least 9 chunks.
        assert!(
            stats.prefill_chunks >= 9,
            "long prompt was split into budgeted chunks (got {})",
            stats.prefill_chunks
        );
        assert!(
            stats.step_budget_utilization > 0.0 && stats.step_budget_utilization <= 1.0,
            "utilization is a fraction of the offered budget (got {})",
            stats.step_budget_utilization
        );
        assert_eq!(
            stats.token_clock,
            24 + 3 + stats.tokens_generated - 2,
            "token clock counts prompt rows once plus every decode row \
             (first tokens come from prefill logits, not decode rows)"
        );

        // Chunking never changes output: both requests match the monolithic engine.
        let chunked_long = collect_done(&rx_long).unwrap();
        let mono_short = collect_done(&mono_short).unwrap();
        let mono_long = collect_done(&mono_long).unwrap();
        assert_eq!(chunked_short.tokens, mono_short.tokens);
        assert_eq!(chunked_short.margins, mono_short.margins);
        assert_eq!(chunked_long.tokens, mono_long.tokens);
        assert_eq!(chunked_long.margins, mono_long.margins);
        // And both match solo generation bit-exactly.
        let solo_long = model
            .generate(&long_prompt, 4, &mut realm_llm::NoopHook)
            .unwrap();
        assert_eq!(chunked_long.tokens, solo_long.tokens);
        assert_eq!(chunked_long.margins, solo_long.margins);
    }

    #[test]
    fn token_age_tracks_budgeted_work_for_shedding() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let config = ServeConfig::with_slots(1).with_step_token_budget(2);
        let mut engine = ServeEngine::new(&model, config);
        assert_eq!(
            engine.oldest_token_age(),
            None,
            "idle engine has no backlog"
        );

        let mut receivers = Vec::new();
        for i in 0..2 {
            let (_, rx) = engine
                .submit(ServeRequest::new(vec![1 + i, 2, 3, 4], 4))
                .unwrap();
            receivers.push(rx);
        }
        // The first request occupies the only slot; the second queues at token clock 0.
        engine.step().unwrap();
        engine.step().unwrap();
        let age = engine.oldest_token_age().expect("one request still queued");
        let stats = engine.stats();
        assert_eq!(
            age, stats.token_clock,
            "the queued request has been passed over for every budgeted token so far"
        );
        assert!(
            age >= 4,
            "two budget-2 steps processed at least 4 tokens (got {age})"
        );
        assert_eq!(stats.queue_oldest_age_tokens, age);
        engine.run_until_idle().unwrap();
        assert_eq!(engine.oldest_token_age(), None);
        assert_eq!(engine.stats().queue_oldest_age_tokens, 0);
        assert_eq!(engine.stats().requests_completed, 2);
    }

    /// Serves the same four requests and returns their token streams plus final stats.
    fn serve_four(model: &Model) -> (Vec<Vec<u32>>, EngineStats) {
        let mut engine = engine(model, 2);
        let mut receivers = Vec::new();
        for i in 0..4u32 {
            let (_, rx) = engine
                .submit(ServeRequest::new(vec![1 + i, 2, 7], 6))
                .unwrap();
            receivers.push(rx);
        }
        engine.run_until_idle().unwrap();
        let stats = engine.stats();
        let tokens = receivers
            .iter()
            .map(|rx| collect_done(rx).unwrap().tokens)
            .collect();
        (tokens, stats)
    }

    #[test]
    fn sharded_engine_is_bit_exact_and_surfaces_shard_telemetry() {
        let config = ModelConfig::tiny_opt();
        let baseline = Model::new(&config, 11).unwrap();
        let mut sharded = Model::new(&config, 11).unwrap();
        sharded.set_tensor_parallel(3);

        // The shard axis is inert on an unsharded model.
        let plain = engine(&baseline, 2);
        let s = plain.stats();
        assert_eq!(s.tp_degree, 1);
        assert!(!s.is_sharded());
        assert_eq!(
            (s.shard_kills, s.shard_detections, s.shard_failovers),
            (0, 0, 0)
        );
        assert!(plain.shard_stats().is_empty());
        assert!(plain.shard_attribution().is_empty());
        drop(plain);

        let (expected, _) = serve_four(&baseline);
        let (got, stats) = serve_four(&sharded);
        assert_eq!(got, expected, "sharding never changes served tokens");
        assert_eq!(stats.tp_degree, 3);
        assert!(stats.is_sharded());
        assert_eq!(stats.shard_kills, 0, "no faults were armed");
        assert_eq!(stats.shard_failovers, 0);
    }

    #[test]
    fn killed_shard_keeps_the_engine_serving_bit_exact() {
        let config = ModelConfig::tiny_opt();
        let baseline = Model::new(&config, 23).unwrap();
        let mut sharded = Model::new(&config, 23).unwrap();
        sharded.set_tensor_parallel(2);
        let (expected, _) = serve_four(&baseline);

        // Kill shard 1 for its next 3 sharded GEMM dispatches mid-service: the rank is
        // unresponsive, so the engine recomputes its column stripe inline and keeps going.
        sharded
            .tp_group()
            .unwrap()
            .inject_shard_fault(1, realm_tensor::ShardFault::Kill, 3);
        let mut engine = engine(&sharded, 2);
        let mut receivers = Vec::new();
        for i in 0..4u32 {
            let (_, rx) = engine
                .submit(ServeRequest::new(vec![1 + i, 2, 7], 6))
                .unwrap();
            receivers.push(rx);
        }
        engine.run_until_idle().unwrap();
        let got: Vec<Vec<u32>> = receivers
            .iter()
            .map(|rx| collect_done(rx).unwrap().tokens)
            .collect();
        assert_eq!(got, expected, "failover preserves bit-exact output");

        let stats = engine.stats();
        assert_eq!(stats.shard_kills, 3);
        assert_eq!(stats.shard_failovers, 3, "every kill was recovered");
        let per_shard = engine.shard_stats();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(per_shard[1].kills, 3, "kills are charged to the dead shard");
        assert_eq!(per_shard[0].kills, 0);
        let totals: u64 = per_shard.iter().map(|s| s.kills).sum();
        assert_eq!(totals, stats.shard_kills, "aggregate matches per-shard sum");
        // Kills are survived below the hook interface, so the decode protector never saw
        // a deviation to attribute.
        assert!(engine
            .shard_attribution()
            .values()
            .all(|a| a.detections == 0 && a.recoveries == 0));
    }
}
